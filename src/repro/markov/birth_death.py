"""Closed-form stationary analysis of finite birth-death chains.

These closed forms serve as independent oracles for the generic stationary
solvers and for M/M/1-type sanity checks in the test-suite.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["birth_death_stationary", "birth_death_generator"]


def birth_death_stationary(
    birth_rates: Sequence[float], death_rates: Sequence[float]
) -> np.ndarray:
    """Stationary distribution of a finite birth-death chain.

    Parameters
    ----------
    birth_rates:
        ``lambda_0 .. lambda_{n-1}`` -- rate from state i to i+1.
    death_rates:
        ``mu_1 .. mu_n`` -- rate from state i to i-1.

    Returns
    -------
    numpy.ndarray
        Stationary probabilities over states ``0..n``.
    """
    birth = np.asarray(birth_rates, dtype=float)
    death = np.asarray(death_rates, dtype=float)
    if birth.shape != death.shape:
        raise ValueError(
            f"need as many death as birth rates, got {birth.shape} and {death.shape}"
        )
    if np.any(birth < 0) or np.any(death <= 0):
        raise ValueError("birth rates must be >= 0 and death rates > 0")
    # pi_k proportional to prod_{i<k} birth_i / death_{i+1}; computed in log
    # space to survive long chains with extreme rate ratios.
    with np.errstate(divide="ignore"):
        log_ratios = np.log(birth) - np.log(death)
    log_pi = np.concatenate([[0.0], np.cumsum(log_ratios)])
    log_pi -= log_pi.max()
    pi = np.exp(log_pi)
    return pi / pi.sum()


def birth_death_generator(
    birth_rates: Sequence[float], death_rates: Sequence[float]
) -> np.ndarray:
    """Dense generator matrix of the finite birth-death chain."""
    birth = np.asarray(birth_rates, dtype=float)
    death = np.asarray(death_rates, dtype=float)
    if birth.shape != death.shape:
        raise ValueError(
            f"need as many death as birth rates, got {birth.shape} and {death.shape}"
        )
    n = birth.shape[0] + 1
    q = np.zeros((n, n))
    for i in range(n - 1):
        q[i, i + 1] = birth[i]
        q[i + 1, i] = death[i]
    np.fill_diagonal(q, -q.sum(axis=1))
    return q
