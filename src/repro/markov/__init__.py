"""Continuous-time Markov chain (CTMC) substrate.

Low-level numerical building blocks shared by the arrival-process package,
the QBD solver and the truncated-chain validation path:

* :mod:`~repro.markov.generator` -- generator-matrix validation and helpers.
* :mod:`~repro.markov.stationary` -- stationary solves (dense LU and the
  numerically stable GTH elimination).
* :mod:`~repro.markov.transient` -- transient distributions by uniformization.
* :mod:`~repro.markov.birth_death` -- closed forms for birth-death chains.
"""

from repro.markov.generator import (
    embedded_dtmc,
    is_generator,
    uniformization_rate,
    validate_generator,
)
from repro.markov.stationary import (
    stationary_distribution,
    stationary_distribution_dense,
    stationary_distribution_gth,
)
from repro.markov.transient import transient_distribution
from repro.markov.birth_death import birth_death_stationary
from repro.markov.deviation import (
    absorption_probabilities,
    deviation_matrix,
    fundamental_matrix,
    mean_absorption_times,
)

__all__ = [
    "embedded_dtmc",
    "is_generator",
    "uniformization_rate",
    "validate_generator",
    "stationary_distribution",
    "stationary_distribution_dense",
    "stationary_distribution_gth",
    "transient_distribution",
    "birth_death_stationary",
    "absorption_probabilities",
    "deviation_matrix",
    "fundamental_matrix",
    "mean_absorption_times",
]
