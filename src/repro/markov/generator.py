"""Validation and elementary transforms of CTMC generator matrices."""

from __future__ import annotations

import numpy as np

__all__ = [
    "validate_generator",
    "is_generator",
    "embedded_dtmc",
    "uniformization_rate",
]

#: Default absolute tolerance for row sums and sign checks.
DEFAULT_ATOL = 1e-9


def validate_generator(q: np.ndarray, atol: float = DEFAULT_ATOL) -> np.ndarray:
    """Check that ``q`` is a CTMC generator and return it as a float array.

    A generator has non-negative off-diagonal entries, non-positive diagonal
    entries and (numerically) zero row sums.

    Raises
    ------
    ValueError
        With a description of the first violated property.
    """
    q = np.asarray(q, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ValueError(f"generator must be a square matrix, got shape {q.shape}")
    off = q - np.diag(np.diag(q))
    if np.any(off < -atol):
        i, j = np.unravel_index(np.argmin(off), off.shape)
        raise ValueError(f"negative off-diagonal rate q[{i},{j}] = {q[i, j]}")
    if np.any(np.diag(q) > atol):
        i = int(np.argmax(np.diag(q)))
        raise ValueError(f"positive diagonal entry q[{i},{i}] = {q[i, i]}")
    # Row-sum tolerance scales with the magnitude of the rates involved so
    # that chains with very large rates (fast modulation) still validate.
    scale = np.maximum(np.abs(np.diag(q)), 1.0)
    row_sums = q.sum(axis=1)
    if np.any(np.abs(row_sums) > atol * scale * q.shape[0]):
        i = int(np.argmax(np.abs(row_sums) / scale))
        raise ValueError(f"row {i} of generator sums to {row_sums[i]}, expected 0")
    return q


def is_generator(q: np.ndarray, atol: float = DEFAULT_ATOL) -> bool:
    """Return True when ``q`` is a valid CTMC generator."""
    try:
        validate_generator(q, atol=atol)
    except ValueError:
        return False
    return True


def embedded_dtmc(q: np.ndarray) -> np.ndarray:
    """Jump-chain transition matrix of the CTMC with generator ``q``.

    Absorbing states (zero exit rate) become self-loops.
    """
    q = validate_generator(q)
    exit_rates = -np.diag(q)
    p = np.zeros_like(q)
    for i in range(q.shape[0]):
        if exit_rates[i] > 0:
            p[i] = q[i] / exit_rates[i]
            p[i, i] = 0.0
        else:
            p[i, i] = 1.0
    return p


def uniformization_rate(q: np.ndarray, slack: float = 1.02) -> float:
    """A uniformization constant ``Lambda >= max_i |q_ii|``.

    ``slack`` > 1 keeps the uniformized DTMC aperiodic even for chains whose
    jump chain is periodic.
    """
    q = validate_generator(q)
    lam = float(np.max(-np.diag(q)))
    if lam == 0.0:
        return 1.0
    return lam * slack
