"""Transient analysis of finite CTMCs by uniformization.

Used by the test-suite to cross-check stationary results (a long-horizon
transient solve must converge to the stationary vector) and by the simulator
tests as an independent oracle.
"""

from __future__ import annotations

import numpy as np

from repro.markov.generator import uniformization_rate, validate_generator

__all__ = ["transient_distribution"]


def transient_distribution(
    q: np.ndarray,
    initial: np.ndarray,
    t: float,
    tol: float = 1e-12,
    max_terms: int = 1_000_000,
) -> np.ndarray:
    """Distribution at time ``t`` of a CTMC started from ``initial``.

    Implements standard uniformization: with ``Lambda >= max |q_ii|`` and
    ``P = I + Q / Lambda``,

    ``p(t) = sum_k  Poisson(Lambda t; k) * initial P^k``

    truncated once the accumulated Poisson mass exceeds ``1 - tol``.
    """
    q = validate_generator(q)
    initial = np.asarray(initial, dtype=float)
    if initial.shape != (q.shape[0],):
        raise ValueError(
            f"initial distribution has shape {initial.shape}, expected ({q.shape[0]},)"
        )
    if not np.isclose(initial.sum(), 1.0, atol=1e-9) or np.any(initial < 0):
        raise ValueError("initial must be a probability vector")
    if t < 0:
        raise ValueError(f"time must be non-negative, got {t}")
    if t == 0:
        return initial.copy()

    lam = uniformization_rate(q)
    p = np.eye(q.shape[0]) + q / lam
    # Poisson weights computed iteratively in linear space with scaling to
    # avoid overflow for large lam*t.
    lt = lam * t
    # Start from k = floor(lt) for numerical stability when lt is large:
    # simple approach - iterate weights from k=0 in log space.
    log_weight = -lt  # log P(N=0)
    vec = initial.copy()
    out = np.zeros_like(initial)
    accumulated = 0.0
    k = 0
    while accumulated < 1.0 - tol and k < max_terms:
        weight = float(np.exp(log_weight))
        if weight > 0.0:
            out += weight * vec
            accumulated += weight
        vec = vec @ p
        k += 1
        log_weight += np.log(lt) - np.log(k)
    return out / max(accumulated, tol)
