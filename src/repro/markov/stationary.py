"""Stationary distributions of finite CTMCs.

Two solvers are provided: a dense linear solve (fast, fine for
well-conditioned chains) and Grassmann-Taksar-Heyman (GTH) elimination,
which performs no subtractions and is therefore numerically robust for
chains with rates spanning many orders of magnitude -- exactly the situation
created by the slowly modulating MMPPs used in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.markov.generator import validate_generator

__all__ = [
    "stationary_distribution",
    "stationary_distribution_dense",
    "stationary_distribution_gth",
]


def stationary_distribution_dense(q: np.ndarray) -> np.ndarray:
    """Solve ``pi Q = 0, pi e = 1`` by replacing one balance equation with
    the normalization condition."""
    q = validate_generator(q)
    n = q.shape[0]
    a = q.T.copy()
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    pi = np.linalg.solve(a, b)
    return _clean_probability_vector(pi)


def stationary_distribution_gth(q: np.ndarray) -> np.ndarray:
    """GTH (Grassmann-Taksar-Heyman) elimination.

    Subtraction-free state elimination followed by back-substitution;
    accurate to machine precision regardless of rate scales, at O(n^3).
    """
    q = validate_generator(q)
    n = q.shape[0]
    a = q.astype(float).copy()
    # Forward elimination of states n-1, n-2, ..., 1.
    for k in range(n - 1, 0, -1):
        denom = a[k, :k].sum()
        if denom <= 0.0:
            raise ValueError(
                f"chain is reducible: state {k} cannot reach eliminated block"
            )
        a[:k, k] /= denom
        # Rank-one update using only additions of non-negative terms.
        a[:k, :k] += np.outer(a[:k, k], a[k, :k])
    # Back substitution.
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        pi[k] = pi[:k] @ a[:k, k]
    return _clean_probability_vector(pi / pi.sum())


def stationary_distribution(q: np.ndarray, method: str = "auto") -> np.ndarray:
    """Stationary distribution of the CTMC with generator ``q``.

    Parameters
    ----------
    q:
        Generator matrix.
    method:
        ``"dense"``, ``"gth"`` or ``"auto"`` (GTH for small chains or when
        the dense solve produces a poorly normalized result).
    """
    if method == "dense":
        return stationary_distribution_dense(q)
    if method == "gth":
        return stationary_distribution_gth(q)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}; use 'dense', 'gth' or 'auto'")
    q = validate_generator(q)
    if q.shape[0] <= 256:
        return stationary_distribution_gth(q)
    try:
        pi = stationary_distribution_dense(q)
    except np.linalg.LinAlgError:
        return stationary_distribution_gth(q)
    residual = float(np.max(np.abs(pi @ q)))
    scale = max(float(np.max(np.abs(np.diag(q)))), 1.0)
    if residual > 1e-8 * scale:
        return stationary_distribution_gth(q)
    return pi


def _clean_probability_vector(pi: np.ndarray, atol: float = 1e-9) -> np.ndarray:
    """Clip tiny negative entries produced by round-off and renormalize."""
    if np.any(pi < -atol):
        raise ValueError(
            f"solver produced a significantly negative probability {pi.min()}"
        )
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise ValueError("stationary vector sums to zero")
    return pi / total
