"""Deviation matrix and absorbing-chain utilities of finite CTMCs."""

from __future__ import annotations

import numpy as np

from repro.markov.generator import validate_generator
from repro.markov.stationary import stationary_distribution

__all__ = [
    "deviation_matrix",
    "fundamental_matrix",
    "mean_absorption_times",
    "absorption_probabilities",
]


def deviation_matrix(q: np.ndarray) -> np.ndarray:
    """Deviation matrix ``D = integral_0^inf (e^{Qt} - e pi) dt``.

    Equals ``(e pi - Q)^{-1} - e pi`` for an irreducible generator ``Q``
    with stationary vector ``pi``.  Central to counting-process second
    moments and asymptotic variance formulas.
    """
    q = validate_generator(q)
    pi = stationary_distribution(q)
    e_pi = np.outer(np.ones(q.shape[0]), pi)
    return np.linalg.inv(e_pi - q) - e_pi


def fundamental_matrix(t: np.ndarray) -> np.ndarray:
    """Fundamental matrix ``(-T)^{-1}`` of a transient generator ``T``.

    Entry ``(i, j)`` is the expected total time spent in transient state
    ``j`` before absorption, starting from ``i``.
    """
    t = np.asarray(t, dtype=float)
    if t.ndim != 2 or t.shape[0] != t.shape[1]:
        raise ValueError(f"T must be square, got shape {t.shape}")
    try:
        return np.linalg.inv(-t)
    except np.linalg.LinAlgError as exc:
        raise ValueError("T is singular: absorption is not certain") from exc


def mean_absorption_times(t: np.ndarray) -> np.ndarray:
    """Expected time to absorption from each transient state."""
    n = fundamental_matrix(t)
    return n @ np.ones(n.shape[0])


def absorption_probabilities(t: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Probability of absorbing into each absorbing state.

    Parameters
    ----------
    t:
        Transient generator (``n x n``).
    r:
        Rates from transient states into the absorbing states
        (``n x k``); together each row of ``[T | R]`` must sum to zero.

    Returns
    -------
    numpy.ndarray
        ``n x k`` matrix whose rows are probability vectors.
    """
    t = np.asarray(t, dtype=float)
    r = np.asarray(r, dtype=float)
    if r.ndim != 2 or r.shape[0] != t.shape[0]:
        raise ValueError(
            f"R must have one row per transient state, got {r.shape} for order {t.shape[0]}"
        )
    if np.any(r < 0):
        raise ValueError("absorption rates must be non-negative")
    rows = t.sum(axis=1) + r.sum(axis=1)
    if np.any(np.abs(rows) > 1e-8 * max(1.0, float(np.abs(t).max()))):
        raise ValueError("rows of [T | R] must sum to zero")
    b = fundamental_matrix(t) @ r
    return b
