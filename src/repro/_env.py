"""The designated accessor for ``REPRO_*`` environment configuration.

Every ``REPRO_*`` read outside the historical accessor modules
(``repro.contracts.checks``, ``repro.faults.injector``,
``repro.qbd.rmatrix``) must go through these helpers -- enforced by
reprolint RL015 -- so the full configuration surface stays enumerable
and distributed workers cannot grow divergent config backdoors.
"""

from __future__ import annotations

import os

__all__ = ["repro_env", "repro_env_required"]

_PREFIX = "REPRO_"


def _check_name(name: str) -> None:
    if not name.startswith(_PREFIX):
        raise ValueError(
            f"repro env vars are namespaced under {_PREFIX!r}, got {name!r}"
        )


def repro_env(name: str, default: str | None = None) -> str | None:
    """The value of the ``REPRO_*`` variable ``name``, or ``default``."""
    _check_name(name)
    return os.environ.get(name, default)


def repro_env_required(name: str) -> str:
    """The value of ``name``; raises ``KeyError`` when unset."""
    _check_name(name)
    return os.environ[name]
