"""Runtime contracts: machine-checked invariants of the analytic stack.

* :mod:`~repro.contracts.checks` -- vectorized validators
  (:func:`check_generator`, :func:`check_r_matrix`,
  :func:`check_drift_stable`, ...), each raising a typed
  :class:`ContractViolation` naming the offending matrix and check.
* :mod:`~repro.contracts.decorator` -- the :func:`contracted` pre/post
  condition decorator.
* :mod:`~repro.contracts.solution` -- :func:`check_solution`, the
  whole-solution validator guarding the engine's cache-load path.

Contracts are **on by default** and add < 2% to the Figure-5 sweep
(``benchmarks/bench_contracts.py``); set ``REPRO_CONTRACTS=off`` to
disable them all.  This package sits below ``repro.core``/``repro.qbd``
in the import graph: it imports neither, so the solvers can call the
checks freely.
"""

from repro.contracts.checks import (
    DEFAULT_ATOL,
    ENV_SWITCH,
    certify_spectral_radius_below_one,
    check_drift_stable,
    check_finite,
    check_generator,
    check_nonnegative,
    check_probability_vector,
    check_r_matrix,
    check_readonly,
    check_shape,
    check_stochastic,
    check_substochastic,
    contracts_enabled,
)
from repro.contracts.decorator import contracted
from repro.contracts.errors import ContractViolation
from repro.contracts.solution import check_solution

__all__ = [
    "DEFAULT_ATOL",
    "ENV_SWITCH",
    "ContractViolation",
    "certify_spectral_radius_below_one",
    "check_drift_stable",
    "check_finite",
    "check_generator",
    "check_nonnegative",
    "check_probability_vector",
    "check_r_matrix",
    "check_readonly",
    "check_shape",
    "check_solution",
    "check_stochastic",
    "check_substochastic",
    "contracted",
    "contracts_enabled",
]
