"""The typed contract-violation error.

A :class:`ContractViolation` always names the *check* that failed and the
*subject* (matrix, vector or cache entry) that failed it, so a violation
deep inside a sweep is attributable without a debugger.  It subclasses
``ValueError``: every call site that previously raised (and every caller
that already catches) ``ValueError`` keeps working.
"""

from __future__ import annotations

__all__ = ["ContractViolation"]


class ContractViolation(ValueError):
    """A runtime contract of the analytic machinery was violated.

    Attributes
    ----------
    check:
        Name of the violated check (e.g. ``"check_generator"``).
    subject:
        Name of the offending object (e.g. ``"A0+A1+A2"``, ``"initial_r"``,
        ``"cache entry 3f2a..."``).
    detail:
        Human-readable description of the violation.
    """

    def __init__(self, check: str, subject: str, detail: str) -> None:
        self.check = check
        self.subject = subject
        self.detail = detail
        super().__init__(f"[{check}] {subject}: {detail}")
