"""Cheap, vectorized runtime validators for the analytic machinery.

Every check is a plain function that raises a typed
:class:`~repro.contracts.errors.ContractViolation` naming the offending
object and the violated property, and returns ``None`` otherwise.  All
checks are gated on :func:`contracts_enabled`: setting the environment
variable ``REPRO_CONTRACTS=off`` (also ``0``/``false``/``no``) turns every
check into a no-op, for benchmarking or for embedding in callers that do
their own validation.  Contracts are **on** by default; the measured
overhead on the Figure-5 sweep is below 2% (see
``benchmarks/bench_contracts.py`` / ``BENCH_contracts.json``).

The checks are deliberately O(n^2) at worst (one pass over a matrix, one
small eigenvalue problem for ``sp(R)``) so they stay invisible next to the
matrix-geometric solves they guard.
"""

from __future__ import annotations

import math
import os

import numpy as np

from repro._types import ArrayLike, FloatArray
from repro.contracts.errors import ContractViolation

__all__ = [
    "contracts_enabled",
    "certify_spectral_radius_below_one",
    "check_drift_stable",
    "check_finite",
    "check_generator",
    "check_nonnegative",
    "check_probability_vector",
    "check_r_matrix",
    "check_readonly",
    "check_shape",
    "check_stochastic",
    "check_substochastic",
]

#: Absolute tolerance for sign checks and row sums (scaled by the matrix's
#: own rate magnitudes, matching :func:`repro.markov.generator.validate_generator`).
DEFAULT_ATOL = 1e-8

#: Environment variable that disables every contract when set to one of
#: ``off``, ``0``, ``false``, ``no`` or ``disabled`` (case-insensitive).
ENV_SWITCH = "REPRO_CONTRACTS"

_OFF_VALUES = frozenset({"off", "0", "false", "no", "disabled"})

# ``os.environ.get`` goes through MutableMapping + key encoding and costs
# microseconds per call from a cold cache -- comparable to a whole check on
# a 22x22 matrix.  CPython keeps the real environment in ``os.environ._data``
# (bytes-keyed on POSIX); reading that dict directly is a plain lookup,
# stays in sync with ``os.environ[...] = ...`` / ``monkeypatch.setenv``,
# and needs no allocation in the common (unset) case.
try:
    _ENVIRON_DATA = os.environ._data
    _ENV_KEY = os.environ.encodekey(ENV_SWITCH)
except AttributeError:  # non-CPython: fall back to the public mapping
    _ENVIRON_DATA = None
    _ENV_KEY = ENV_SWITCH


def contracts_enabled() -> bool:
    """True unless ``REPRO_CONTRACTS`` disables the contract layer.

    Read from the (raw) environment on every call so tests and benchmarks
    can toggle the switch without re-importing.
    """
    if _ENVIRON_DATA is not None:
        raw = _ENVIRON_DATA.get(_ENV_KEY)
        if raw is None:
            return True
        value = os.fsdecode(raw)
    else:
        value = os.environ.get(ENV_SWITCH)
    if not value:
        return True
    return value.strip().lower() not in _OFF_VALUES


def _as_matrix(a: ArrayLike, check: str, name: str) -> FloatArray:
    arr = np.asarray(a, dtype=float)
    if arr.ndim != 2:
        raise ContractViolation(check, name, f"expected a matrix, got ndim {arr.ndim}")
    return arr


def _as_square(a: ArrayLike, check: str, name: str) -> FloatArray:
    arr = _as_matrix(a, check, name)
    if arr.shape[0] != arr.shape[1]:
        raise ContractViolation(check, name, f"expected square, got shape {arr.shape}")
    return arr


def check_finite(a: ArrayLike, name: str = "array") -> None:
    """All entries finite (no NaN, no inf)."""
    if not contracts_enabled():
        return
    arr = np.asarray(a, dtype=float)
    if not np.all(np.isfinite(arr)):
        bad = int(np.flatnonzero(~np.isfinite(arr).ravel())[0])
        raise ContractViolation(
            "check_finite", name, f"non-finite entry at flat index {bad}"
        )


def check_nonnegative(
    a: ArrayLike, name: str = "array", atol: float = DEFAULT_ATOL
) -> None:
    """All entries >= -atol (rate and probability blocks must not go negative)."""
    if not contracts_enabled():
        return
    arr = np.asarray(a, dtype=float)
    if arr.size and float(arr.min()) < -atol:
        idx = np.unravel_index(int(np.argmin(arr)), arr.shape)
        raise ContractViolation(
            "check_nonnegative",
            name,
            f"negative entry {arr[idx]:.6g} at {tuple(int(i) for i in idx)}",
        )


def check_shape(
    a: ArrayLike, expected: tuple[int, ...], name: str = "array"
) -> None:
    """Exact shape match (e.g. a warm-start seed against the QBD blocks)."""
    if not contracts_enabled():
        return
    shape = np.asarray(a).shape
    if shape != expected:
        raise ContractViolation(
            "check_shape", name, f"expected shape {expected}, got {shape}"
        )


def check_readonly(a: np.ndarray, name: str = "array") -> None:
    """The array is flagged read-only (the repo stores arrays immutably)."""
    if not contracts_enabled():
        return
    if not isinstance(a, np.ndarray):
        raise ContractViolation(
            "check_readonly", name, f"expected an ndarray, got {type(a).__name__}"
        )
    if a.flags.writeable:
        raise ContractViolation(
            "check_readonly",
            name,
            "array is writeable; call .setflags(write=False) after construction",
        )


def check_generator(
    q: ArrayLike, name: str = "Q", atol: float = DEFAULT_ATOL
) -> None:
    """``q`` is a CTMC generator: square, finite, off-diagonal >= 0, rows ~ 0.

    The row-sum tolerance scales with the diagonal magnitude so fast chains
    (large rates) validate on the same relative footing as slow ones.  The
    pass path is a handful of whole-matrix reductions; locating the
    offending entry is deferred to the failure path.
    """
    if not contracts_enabled():
        return
    arr = np.asarray(q, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        _as_square(arr, "check_generator", name)
    if not arr.size:
        return
    row_sums = arr.sum(axis=1)
    # A non-finite entry makes its row sum non-finite (inf) or NaN
    # (NaN anywhere, or cancelling infinities), so one m-vector test
    # covers entrywise finiteness.
    if not np.isfinite(row_sums).all():
        raise ContractViolation("check_generator", name, "non-finite entry")
    diag = arr.diagonal()
    scale = max(float(np.abs(diag).max()), 1.0)
    off = arr.copy()
    np.fill_diagonal(off, 0.0)
    if float(off.min()) < -atol * scale:
        i, j = np.unravel_index(int(np.argmin(off)), off.shape)
        raise ContractViolation(
            "check_generator",
            name,
            f"negative off-diagonal rate {arr[i, j]:.6g} at ({i}, {j})",
        )
    if float(np.abs(row_sums).max()) > atol * scale * arr.shape[0]:
        i = int(np.argmax(np.abs(row_sums)))
        raise ContractViolation(
            "check_generator",
            name,
            f"row {i} sums to {row_sums[i]:.6g}, expected 0",
        )


def check_stochastic(
    p: ArrayLike, name: str = "P", atol: float = DEFAULT_ATOL
) -> None:
    """``p`` is a (row-)stochastic matrix: entries >= 0, rows sum to 1."""
    if not contracts_enabled():
        return
    arr = _as_matrix(p, "check_stochastic", name)
    check_nonnegative(arr, name, atol=atol)
    row_sums = arr.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > atol * max(arr.shape[1], 1)):
        i = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ContractViolation(
            "check_stochastic",
            name,
            f"row {i} sums to {row_sums[i]:.6g}, expected 1",
        )


def check_substochastic(
    p: ArrayLike, name: str = "P", atol: float = DEFAULT_ATOL
) -> None:
    """``p`` is substochastic: entries >= 0, every row sums to at most 1."""
    if not contracts_enabled():
        return
    arr = _as_matrix(p, "check_substochastic", name)
    check_nonnegative(arr, name, atol=atol)
    row_sums = arr.sum(axis=1)
    if np.any(row_sums > 1.0 + atol * max(arr.shape[1], 1)):
        i = int(np.argmax(row_sums))
        raise ContractViolation(
            "check_substochastic",
            name,
            f"row {i} sums to {row_sums[i]:.6g} > 1",
        )


def check_probability_vector(
    pi: ArrayLike, name: str = "pi", atol: float = 1e-6, total: float | None = 1.0
) -> None:
    """``pi`` is a probability vector: entries >= 0 and, when ``total`` is
    not None, summing to ``total`` within ``atol``."""
    if not contracts_enabled():
        return
    arr = np.asarray(pi, dtype=float)
    mass = float(arr.sum())
    # One scalar test covers entrywise finiteness (see check_generator).
    if not np.isfinite(mass):
        raise ContractViolation("check_probability_vector", name, "non-finite entry")
    if arr.size and float(arr.min()) < -atol:
        i = int(np.argmin(arr))
        raise ContractViolation(
            "check_probability_vector",
            name,
            f"negative probability {arr[i]:.6g} at index {i}",
        )
    if total is not None and abs(mass - total) > atol:
        raise ContractViolation(
            "check_probability_vector",
            name,
            f"mass {mass:.8g}, expected {total:g}",
        )


#: Last successful Collatz-Wielandt certificate vector, per matrix order.
#: Sweeps re-certify a slowly varying R; a vector that certified the
#: previous point usually certifies the next one for one matvec instead of
#: an LU solve.  Soundness does not depend on the cache: for any positive
#: ``x``, ``max(Rx/x)`` bounds ``sp(R)`` from above, so a stale vector can
#: only fail to certify (falling through to the solve), never falsely pass.
_CW_CERTIFICATES: dict[int, FloatArray] = {}


def certify_spectral_radius_below_one(
    r: ArrayLike, atol: float = DEFAULT_ATOL
) -> bool:
    """Tiered ``sp(r) < 1`` certificate; True iff the radius is below one.

    A boolean query, not a gated check: it runs regardless of
    ``REPRO_CONTRACTS`` (callers use it to *decide*, e.g. whether a
    warm-started R iterate is the minimal solution, not merely to
    validate).  Tiers, cheapest first:

    1. ``||R||_inf < 1`` -- any induced norm bounds the spectral radius;
    2. the cached Collatz-Wielandt vector of a nearby solve (one matvec);
    3. a fresh M-matrix certificate: solve ``(I-R)x = e`` and verify
       ``Rx <= theta x`` with ``x > 0``, ``theta < 1``;
    4. full eigenvalues, for genuinely borderline matrices.

    The input must be finite and square; non-negativity is assumed (tiers
    2-3 are Collatz-Wielandt bounds, sound for non-negative matrices
    only).
    """
    arr = np.asarray(r, dtype=float)
    row_sums = arr.sum(axis=1)
    if float(row_sums.max()) < 1.0 - atol:
        return True
    n = arr.shape[0]
    x = _CW_CERTIFICATES.get(n)
    if x is not None and float((arr @ x / x).max()) < 1.0 - atol:
        return True
    try:
        x = np.linalg.solve(np.eye(n) - arr, np.ones(n))
    except np.linalg.LinAlgError:
        x = None
    if x is not None and float(x.min()) > atol:
        theta = float((arr @ x / x).max())
        if theta < 1.0 - atol:
            _CW_CERTIFICATES[n] = x
            return True
    return float(np.max(np.abs(np.linalg.eigvals(arr)))) < 1.0


def check_r_matrix(
    r: ArrayLike, name: str = "R", atol: float = DEFAULT_ATOL
) -> None:
    """``r`` is a valid minimal R matrix: finite, non-negative, ``sp(R) < 1``.

    ``sp(R) >= 1`` means the geometric tail does not sum -- either the QBD
    is unstable or an iteration converged to a non-minimal solution -- and
    every downstream metric built on ``(I-R)^{-1}`` would silently be
    garbage, which is exactly what this check exists to prevent.
    """
    if not contracts_enabled():
        return
    arr = np.asarray(r, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        _as_square(arr, "check_r_matrix", name)
    if not arr.size:
        return
    row_sums = arr.sum(axis=1)
    rmax = float(row_sums.max())
    # A NaN entry (or cancelling infinities) propagates to ``rmax`` as NaN
    # and a +inf entry survives the max, so one scalar test covers
    # entrywise finiteness; a lone -inf entry falls to the sign check.
    if not math.isfinite(rmax):
        raise ContractViolation("check_r_matrix", name, "non-finite entry")
    if float(arr.min()) < -atol:
        idx = np.unravel_index(int(np.argmin(arr)), arr.shape)
        raise ContractViolation(
            "check_r_matrix",
            name,
            f"negative entry {arr[idx]:.6g} at {tuple(int(i) for i in idx)}",
        )
    # ||R||_inf < 1 certifies sp(R) < 1 without an eigenvalue solve (any
    # induced norm bounds the spectral radius).  Bursty chains routinely
    # have ||R||_inf >= 1 with sp(R) < 1 -- the caudal characteristic of
    # an MMPP chain approaches 1 long before the norm does -- so for
    # those, the M-matrix certificate: solve (I-R)x = e and verify
    # Rx <= theta * x with x > 0 and theta < 1, which by Collatz-Wielandt
    # bounds sp(R) by theta.  One LU solve plus one matvec, ~3x cheaper
    # than the eigenvalue fallback, which is left for genuinely suspect
    # matrices (and works even at sp(R) = 1 - epsilon, where every norm
    # power certificate fails).
    if rmax < 1.0 - atol:
        return
    if not certify_spectral_radius_below_one(arr, atol=atol):
        sp = float(np.max(np.abs(np.linalg.eigvals(arr))))
        raise ContractViolation(
            "check_r_matrix",
            name,
            f"spectral radius {sp:.6g} >= 1: not the minimal solution "
            "(or the QBD is unstable); the geometric tail does not sum",
        )


def check_drift_stable(
    a0: ArrayLike, a1: ArrayLike, a2: ArrayLike, name: str = "A0/A1/A2"
) -> None:
    """The QBD with repeating blocks ``(a0, a1, a2)`` drifts down.

    Delegates to :func:`repro.qbd.rmatrix.drift`, whose SCC decomposition
    handles the reducible phase processes of the FG/BG chain (do **not**
    replace this with a plain stationary solve of ``A0+A1+A2``).
    """
    if not contracts_enabled():
        return
    from repro.qbd.rmatrix import drift  # local import: rmatrix imports us

    value = drift(a0, a1, a2)
    if value >= 0.0:
        raise ContractViolation(
            "check_drift_stable",
            name,
            f"mean drift {value:.6g} >= 0: the QBD is not positive recurrent",
        )
