"""Validation of whole :class:`~repro.core.result.FgBgSolution` objects.

The engine's on-disk cache deserializes pickles that may have been
truncated, bit-rotted or written by a different code version; a corrupted
entry must fail loudly at load time instead of poisoning a sweep with
plausible-looking numbers.  :func:`check_solution` re-validates the
load-bearing invariants: the R matrix (finite, non-negative,
``sp(R) < 1``), the boundary probabilities, total stationary mass ~ 1 and
the NaN policy of the scalar metrics.

Imports of the core package are deferred to call time: the contracts
package sits *below* ``repro.core``/``repro.qbd`` in the import graph so
the solvers can use the checks without a cycle.
"""

from __future__ import annotations

from typing import Any

from repro.contracts.checks import (
    check_probability_vector,
    check_r_matrix,
    contracts_enabled,
)
from repro.contracts.errors import ContractViolation

__all__ = ["check_solution"]

#: Scalar metrics that are allowed to be NaN (the deliberate-NaN policy of
#: ``repro.core.metrics``: background metrics are undefined when no
#: background job is ever spawned or admitted).
NAN_ALLOWED_METRICS = frozenset({"bg_completion_rate", "bg_response_time"})

#: Total stationary mass must match 1 this closely (loose enough for a
#: solution round-tripped through float serialization).
MASS_ATOL = 1e-6


def check_solution(solution: Any, name: str = "solution") -> None:
    """Validate a (possibly deserialized) solved model end to end.

    Raises
    ------
    ContractViolation
        When ``solution`` is not an :class:`~repro.core.result.FgBgSolution`
        or any of its invariants fails.
    """
    if not contracts_enabled():
        return
    import math

    from repro.core.result import FgBgSolution

    if not isinstance(solution, FgBgSolution):
        raise ContractViolation(
            "check_solution",
            name,
            f"expected an FgBgSolution, got {type(solution).__name__}",
        )
    qbd_solution = solution.qbd_solution
    check_r_matrix(qbd_solution.r, name=f"{name}.qbd_solution.r")
    check_probability_vector(
        qbd_solution.boundary, name=f"{name}.qbd_solution.boundary", total=None
    )
    mass = float(qbd_solution.total_mass)
    if not math.isfinite(mass) or abs(mass - 1.0) > MASS_ATOL:
        raise ContractViolation(
            "check_solution",
            name,
            f"total stationary mass {mass:.8g}, expected 1 within {MASS_ATOL:g}",
        )
    for metric, value in solution.as_dict().items():
        if isinstance(value, float) and math.isnan(value):
            if metric not in NAN_ALLOWED_METRICS:
                raise ContractViolation(
                    "check_solution",
                    name,
                    f"metric {metric!r} is NaN (only {sorted(NAN_ALLOWED_METRICS)} "
                    "may be NaN under the deliberate-NaN policy)",
                )
        elif isinstance(value, float) and not math.isfinite(value):
            raise ContractViolation(
                "check_solution", name, f"metric {metric!r} is non-finite ({value})"
            )
