"""The ``@contracted`` decorator: declarative pre/post conditions.

Usage::

    @contracted(
        pre=lambda a0, a1, a2, **kw: check_generator(a0 + a1 + a2, "A0+A1+A2"),
        post=lambda result, *a, **kw: check_r_matrix(result, "R"),
    )
    def r_matrix(a0, a1, a2, ...): ...

Both hooks receive the call's arguments exactly as passed (``post``
receives the result first).  When contracts are disabled via
``REPRO_CONTRACTS=off`` the wrapper short-circuits to the bare function
with a single boolean test of overhead.
"""

from __future__ import annotations

import functools
from collections.abc import Callable
from typing import ParamSpec, TypeVar

from repro.contracts.checks import contracts_enabled

__all__ = ["contracted"]

P = ParamSpec("P")
T = TypeVar("T")


def contracted(
    pre: Callable[..., None] | None = None,
    post: Callable[..., None] | None = None,
) -> Callable[[Callable[P, T]], Callable[P, T]]:
    """Wrap ``func`` with optional precondition and postcondition checks.

    Parameters
    ----------
    pre:
        Called as ``pre(*args, **kwargs)`` before the function body; raise
        :class:`~repro.contracts.errors.ContractViolation` to reject the
        call.
    post:
        Called as ``post(result, *args, **kwargs)`` after the function
        body; raise to reject the result.
    """

    def decorate(func: Callable[P, T]) -> Callable[P, T]:
        @functools.wraps(func)
        def wrapper(*args: P.args, **kwargs: P.kwargs) -> T:
            if not contracts_enabled():
                return func(*args, **kwargs)
            if pre is not None:
                pre(*args, **kwargs)
            result = func(*args, **kwargs)
            if post is not None:
                post(result, *args, **kwargs)
            return result

        return wrapper

    return decorate
