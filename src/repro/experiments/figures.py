"""Reproduction of every figure in the paper's evaluation (Section 5).

Each function returns an :class:`~repro.experiments.result.ExperimentResult`
with the same series structure as the original figure.  Parameter grids
follow the paper: the E-mail (high-ACF) workload is swept over a smaller
load range because it saturates much earlier; Software Development (low
ACF) is swept to 90%.
"""

from __future__ import annotations

import numpy as np


from repro.core.model import FgBgModel
from repro.engine.engine import SweepEngine
from repro.experiments.result import ExperimentResult, Series
from repro.experiments.sweeps import (
    BG_PROBABILITIES,
    idle_wait_axis,
    sweep,
    sweep_many,
    utilization_axis,
)
from repro.experiments.tables import figure1_table, figure2_table
from repro.processes.statistics import autocorrelation
from repro.workloads.comparators import dependence_comparators
from repro.workloads.paper import SERVICE_RATE_PER_MS, WORKLOADS
from repro.workloads.traces import generate_trace

__all__ = [
    "ALL_FIGURES",
    "fig1_trace_acf",
    "fig2_mmpp_acf",
    "fig5_fg_queue_length",
    "fig6_fg_delayed",
    "fig7_bg_completion",
    "fig8_bg_queue_length",
    "fig9_idle_wait_fg",
    "fig10_idle_wait_bg",
    "fig11_dependence_fg_qlen",
    "fig12_dependence_bg_completion",
    "fig13_dependence_fg_delayed",
]

#: Load grids per workload (the paper plots E-mail over a narrower range
#: because the strongly correlated arrivals saturate the system early).
EMAIL_UTILIZATIONS = tuple(np.round(np.arange(0.05, 0.551, 0.05), 3))
SOFTDEV_UTILIZATIONS = tuple(np.round(np.arange(0.1, 0.901, 0.1), 3))

#: Idle-wait sweep grid (multiples of the mean service time, Figures 9-10).
IDLE_WAIT_MULTIPLES = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)

#: Fixed loads for the idle-wait sweep.  The paper runs it "for the
#: parameterization of the actual traces"; we pick moderate loads where the
#: foreground/background interaction is visible (documented in DESIGN.md).
IDLE_WAIT_UTILIZATION = {"email": 0.2, "software_development": 0.3}

#: Load grids of the Section 5.4 dependence study: correlated processes
#: saturate by ~50% utilization, the uncorrelated ones only near 95%.
CORRELATED_UTILIZATIONS = tuple(np.round(np.linspace(0.04, 0.52, 13), 3))
RENEWAL_UTILIZATIONS = tuple(np.round(np.linspace(0.1, 0.95, 13), 3))

_COMPARATOR_LABELS = {
    "high_acf": "High ACF",
    "low_acf": "Low ACF",
    "ipp": "IPP",
    "expo": "Expo",
}


def _two_panel_load_sweep(
    experiment_id: str,
    title: str,
    y_label: str,
    metric,
    bg_probabilities=BG_PROBABILITIES,
    engine: SweepEngine | None = None,
) -> ExperimentResult:
    """Shared layout of Figures 5-8: (a) E-mail, (b) Software Development."""
    series: list[Series] = []
    panels = (
        ("email", "E-mail High ACF", EMAIL_UTILIZATIONS),
        ("software_development", "Software Dev. Low ACF", SOFTDEV_UTILIZATIONS),
    )
    for key, panel, utils in panels:
        base = FgBgModel(
            arrival=WORKLOADS[key].fit(),
            service_rate=SERVICE_RATE_PER_MS,
            bg_probability=0.0,
        )
        for s in sweep_many(
            base, utilization_axis(utils), metric, bg_probabilities, engine=engine
        ):
            series.append(Series(label=f"{panel} | {s.label}", x=s.x, y=s.y))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="foreground utilization",
        y_label=y_label,
        series=tuple(series),
    )


def fig1_trace_acf(
    samples: int = 200_000, lags: int = 100, seed: int = 1
) -> ExperimentResult:
    """Figure 1: empirical ACF of inter-arrival times of the three traces,
    plus the mean/CV/utilization table.

    The measured traces are proprietary; statistically equivalent synthetic
    traces are generated from the fitted MMPPs (see DESIGN.md).
    """
    rng = np.random.default_rng(seed)
    series = []
    for key, spec in WORKLOADS.items():
        trace = generate_trace(spec.fit(), samples, rng)
        acf = autocorrelation(trace, lags)
        series.append(
            Series(label=spec.name, x=np.arange(1, lags + 1, dtype=float), y=acf)
        )
    return ExperimentResult(
        experiment_id="fig1",
        title="ACF of inter-arrival times of the three (synthetic) traces",
        x_label="lag k",
        y_label="ACF",
        series=tuple(series),
        table=figure1_table(),
        notes=f"{samples} synthetic inter-arrivals per workload, seed={seed}",
    )


def fig2_mmpp_acf(lags: int = 100) -> ExperimentResult:
    """Figure 2: closed-form ACF of the three fitted 2-state MMPPs, plus
    their (v1, v2, l1, l2) parameter table."""
    series = []
    for spec in WORKLOADS.values():
        mmpp = spec.fit()
        series.append(
            Series(
                label=spec.name,
                x=np.arange(1, lags + 1, dtype=float),
                y=mmpp.acf(lags),
            )
        )
    return ExperimentResult(
        experiment_id="fig2",
        title="ACF of the 2-state MMPP models",
        x_label="lag k",
        y_label="ACF",
        series=tuple(series),
        table=figure2_table(),
    )


def fig5_fg_queue_length(engine: SweepEngine | None = None) -> ExperimentResult:
    """Figure 5: average foreground queue length vs foreground load."""
    return _two_panel_load_sweep(
        "fig5",
        "Average queue length of foreground jobs",
        "FG mean queue length",
        "qlen_fg",
        engine=engine,
    )


def fig6_fg_delayed(engine: SweepEngine | None = None) -> ExperimentResult:
    """Figure 6: portion of foreground jobs delayed by a background job."""
    return _two_panel_load_sweep(
        "fig6",
        "Portion of foreground jobs delayed by a background job",
        "fraction of FG delayed",
        "waitp_fg",
        engine=engine,
    )


def fig7_bg_completion(engine: SweepEngine | None = None) -> ExperimentResult:
    """Figure 7: background completion (admission) rate vs foreground load."""
    return _two_panel_load_sweep(
        "fig7",
        "Completion rate of background jobs",
        "BG completion rate",
        "comp_bg",
        bg_probabilities=(0.1, 0.3, 0.6, 0.9),
        engine=engine,
    )


def fig8_bg_queue_length(engine: SweepEngine | None = None) -> ExperimentResult:
    """Figure 8: average background queue length vs foreground load."""
    return _two_panel_load_sweep(
        "fig8",
        "Average queue length of background jobs",
        "BG mean queue length",
        "qlen_bg",
        bg_probabilities=(0.1, 0.3, 0.6, 0.9),
        engine=engine,
    )


def _idle_wait_figure(
    experiment_id: str,
    title: str,
    y_label: str,
    metric,
    engine: SweepEngine | None = None,
) -> ExperimentResult:
    series: list[Series] = []
    panels = (
        ("email", "E-mail High ACF"),
        ("software_development", "Software Dev. Low ACF"),
    )
    for key, panel in panels:
        spec = WORKLOADS[key]
        base = FgBgModel(
            arrival=spec.fit().scaled_to_utilization(
                IDLE_WAIT_UTILIZATION[key], SERVICE_RATE_PER_MS
            ),
            service_rate=SERVICE_RATE_PER_MS,
            bg_probability=0.0,
        )
        for s in sweep_many(
            base,
            idle_wait_axis(IDLE_WAIT_MULTIPLES),
            metric,
            (0.1, 0.3, 0.6, 0.9),
            engine=engine,
        ):
            series.append(Series(label=f"{panel} | {s.label}", x=s.x, y=s.y))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="idle wait (multiples of mean service time)",
        y_label=y_label,
        series=tuple(series),
        notes=(
            "fixed loads: E-mail at "
            f"{IDLE_WAIT_UTILIZATION['email']:.0%}, Software Development at "
            f"{IDLE_WAIT_UTILIZATION['software_development']:.0%} utilization"
        ),
    )


def fig9_idle_wait_fg(engine: SweepEngine | None = None) -> ExperimentResult:
    """Figure 9: foreground queue length vs idle-wait duration."""
    return _idle_wait_figure(
        "fig9",
        "Foreground queue length as a function of idle wait",
        "FG mean queue length",
        "qlen_fg",
        engine=engine,
    )


def fig10_idle_wait_bg(engine: SweepEngine | None = None) -> ExperimentResult:
    """Figure 10: background completion rate vs idle-wait duration."""
    return _idle_wait_figure(
        "fig10",
        "Background completion rate as a function of idle wait",
        "BG completion rate",
        "comp_bg",
        engine=engine,
    )


def _dependence_figure(
    experiment_id: str,
    title: str,
    y_label: str,
    metric,
    engine: SweepEngine | None = None,
) -> ExperimentResult:
    """Shared layout of Figures 11-13: four arrival processes matched to the
    E-mail workload, panels for p = 0.3 and p = 0.9."""
    comparators = dependence_comparators("email")
    series: list[Series] = []
    for p in (0.3, 0.9):
        for key, process in comparators.items():
            utils = (
                CORRELATED_UTILIZATIONS
                if key in ("high_acf", "low_acf")
                else RENEWAL_UTILIZATIONS
            )
            base = FgBgModel(
                arrival=process,
                service_rate=SERVICE_RATE_PER_MS,
                bg_probability=p,
            )
            s = sweep(base, utilization_axis(utils), metric, engine=engine)
            series.append(
                Series(
                    label=f"p = {p:g} | {_COMPARATOR_LABELS[key]}", x=s.x, y=s.y
                )
            )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        x_label="foreground utilization",
        y_label=y_label,
        series=tuple(series),
        notes=(
            "all processes share the E-mail mean rate; High/Low ACF and IPP "
            "also share its CV; correlated processes are swept over the "
            "narrow load range where they already saturate"
        ),
    )


def fig11_dependence_fg_qlen(engine: SweepEngine | None = None) -> ExperimentResult:
    """Figure 11: FG queue length under the four arrival processes."""
    return _dependence_figure(
        "fig11",
        "FG queue length under different dependence structures",
        "FG mean queue length",
        "qlen_fg",
        engine=engine,
    )


def fig12_dependence_bg_completion(engine: SweepEngine | None = None) -> ExperimentResult:
    """Figure 12: BG completion rate under the four arrival processes."""
    return _dependence_figure(
        "fig12",
        "BG completion rate under different dependence structures",
        "BG completion rate",
        "comp_bg",
        engine=engine,
    )


def fig13_dependence_fg_delayed(engine: SweepEngine | None = None) -> ExperimentResult:
    """Figure 13: fraction of FG delayed under the four arrival processes."""
    return _dependence_figure(
        "fig13",
        "Portion of FG jobs delayed under different dependence structures",
        "fraction of FG delayed",
        "waitp_fg",
        engine=engine,
    )


#: Registry used by the CLI and the benchmark harness.
ALL_FIGURES = {
    "fig1": fig1_trace_acf,
    "fig2": fig2_mmpp_acf,
    "fig5": fig5_fg_queue_length,
    "fig6": fig6_fg_delayed,
    "fig7": fig7_bg_completion,
    "fig8": fig8_bg_queue_length,
    "fig9": fig9_idle_wait_fg,
    "fig10": fig10_idle_wait_bg,
    "fig11": fig11_dependence_fg_qlen,
    "fig12": fig12_dependence_bg_completion,
    "fig13": fig13_dependence_fg_delayed,
}
