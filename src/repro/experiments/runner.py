"""Command-line entry point: regenerate paper figures from the terminal."""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence

from repro.engine.config import EngineConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.manifest import RunManifest
from repro.experiments.render import render_result

__all__ = ["build_config", "execute_figure", "main"]


def build_config(args) -> EngineConfig | None:
    """The run's :class:`EngineConfig`, or ``None`` for plain solving.

    ``None`` (every knob at its default, no cache requested) keeps the
    figure functions on their historical no-engine path, which the
    byte-comparison record in EXPERIMENTS.md was made against.
    """
    if (
        args.jobs == 1
        and args.cache is None
        and not args.warm_start
        and not args.batched
        and args.on_error == "raise"
        and not args.escalate
    ):
        return None
    return EngineConfig(
        jobs=args.jobs,
        cache_dir=args.cache if args.cache else None,
        cache_memory=args.cache == "",
        warm_start=args.warm_start,
        batched=args.batched,
        on_error=args.on_error,
        escalate=args.escalate,
    )


def execute_figure(name, engine=None, fast: bool = False) -> str:
    """Run one figure and return its rendered ASCII form.

    The single execution path shared by the blocking CLI below and the
    background-job worker (:mod:`repro.jobs.worker`): both must render a
    figure identically, so both go through this function.  ``engine`` is
    passed to the figure only when its signature accepts one (the
    trace-based figures solve no chains).
    """
    func = ALL_FIGURES[name]
    kwargs = {}
    if engine is not None and "engine" in inspect.signature(func).parameters:
        kwargs["engine"] = engine
    if name == "fig1" and fast:
        kwargs["samples"] = 20_000
    return render_result(func(**kwargs))


def main(argv: Sequence[str] | None = None) -> int:
    """Run ``python -m repro.experiments <figure...|all>``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the tables and figures of 'Evaluating the "
            "Performability of Systems with Background Jobs' (DSN 2006)."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="+",
        metavar="FIGURE",
        help=f"figure ids ({', '.join(ALL_FIGURES)}) or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use a smaller sample size for the trace-based Figure 1",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep curves (default 1: serial); "
        "output is identical to a serial run",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="cache solves in memory across figures; with DIR, also "
        "persist them on disk across runs (and record per-figure "
        "completion in DIR/run-manifest.json for --resume)",
    )
    parser.add_argument(
        "--warm-start",
        action="store_true",
        help="seed each R-matrix solve with the previous point of the "
        "sweep (results agree with cold solves to solver tolerance)",
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="solve each sweep's cache misses through the stacked "
        "matrix-geometric kernel, grouped by chain shape (results agree "
        "with sequential solves to solver tolerance)",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "skip", "collect"),
        default="raise",
        help="per-point failure policy: 'raise' (default) stops at the "
        "first solve failure; 'skip'/'collect' render failed points as "
        "NaN and keep going (see repro.engine.resilience)",
    )
    parser.add_argument(
        "--escalate",
        action="store_true",
        help="enable the truncated dense-chain rung of the solver "
        "escalation ladder for points every R iteration fails on",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="report a failing figure and continue with the remaining "
        "ones; the exit code still reflects the failure",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay figures already completed by a previous (possibly "
        "killed) run from DIR/run-manifest.json and recompute only the "
        "rest; requires --cache DIR",
    )
    parser.add_argument(
        "--via-jobs",
        metavar="DIR",
        default=None,
        help="route each figure through the durable background-job queue "
        "at DIR (see repro.jobs): figures are submitted as jobs, solved "
        "by an in-process worker, and printed from the job results; "
        "jobs already COMPLETED in DIR for the same spec are replayed "
        "without re-solving (the job-queue form of --resume)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.resume and args.cache in (None, ""):
        parser.error("--resume needs an on-disk cache: pass --cache DIR")
    if args.via_jobs is not None and args.resume:
        parser.error("--via-jobs replays completed jobs itself; drop --resume")

    requested = list(ALL_FIGURES) if "all" in args.figures else args.figures
    unknown = [f for f in requested if f not in ALL_FIGURES]
    if unknown:
        parser.error(
            f"unknown figure(s) {', '.join(unknown)}; "
            f"choose from {', '.join(ALL_FIGURES)} or 'all'"
        )

    config = build_config(args)
    if args.via_jobs is not None:
        return _main_via_jobs(args.via_jobs, requested, config, args.fast)

    # With an on-disk cache the run keeps a crash-safe manifest next to
    # it, whether or not this invocation resumes -- the *next* one might.
    manifest = None
    if args.cache not in (None, ""):
        manifest = RunManifest.in_cache_dir(
            args.cache, config={"fast": bool(args.fast)}
        )

    engine = None if config is None else config.build_engine()
    exit_code = 0
    for name in requested:
        if args.resume and manifest is not None:
            stored = manifest.completed(name)
            if stored is not None:
                print(stored)
                print()
                continue
        try:
            rendered = execute_figure(name, engine=engine, fast=args.fast)
        except Exception as exc:
            if not args.keep_going:
                raise
            print(
                f"FIGURE {name} FAILED: {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            exit_code = 1
            continue
        print(rendered)
        print()
        if manifest is not None:
            manifest.record(name, rendered)
    return exit_code


def _main_via_jobs(root, requested, config, fast) -> int:
    """Run the requested figures through the background-job queue at ``root``.

    Import is local: :mod:`repro.jobs` builds on this module's
    :func:`execute_figure`, so a top-level import would be circular.
    """
    from repro.jobs import COMPLETED, JobService, JobWorker, open_repository

    repository = open_repository(root)
    service = JobService(repository)
    jobs = [
        service.submit_figure(name, fast=fast, config=config, reuse_completed=True)
        for name in requested
    ]
    worker = JobWorker(repository)
    while any(service.status(j.job_id).state not in (COMPLETED,) for j in jobs):
        executed = worker.run_once()
        if executed is None:
            break
    exit_code = 0
    for job in jobs:
        final = service.status(job.job_id)
        if final.state == COMPLETED:
            print(final.result_text)
            print()
        else:
            print(
                f"FIGURE {final.spec.figure} FAILED: {final.error}",
                file=sys.stderr,
            )
            exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
