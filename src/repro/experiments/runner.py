"""Command-line entry point: regenerate paper figures from the terminal."""

from __future__ import annotations

import argparse
import inspect
import sys
from collections.abc import Sequence

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.manifest import RunManifest
from repro.experiments.render import render_result

__all__ = ["main"]


def _build_engine(args):
    """The shared SweepEngine of this run, or ``None`` for plain solving."""
    if (
        args.jobs == 1
        and args.cache is None
        and not args.warm_start
        and not args.batched
        and args.on_error == "raise"
        and not args.escalate
    ):
        return None
    from repro.engine import SolveCache, SweepEngine

    cache = None
    if args.cache is not None:
        cache = SolveCache(args.cache if args.cache != "" else None)
    return SweepEngine(
        jobs=args.jobs,
        cache=cache,
        warm_start=args.warm_start,
        batched=args.batched,
        on_error=args.on_error,
        escalate=args.escalate,
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Run ``python -m repro.experiments <figure...|all>``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the tables and figures of 'Evaluating the "
            "Performability of Systems with Background Jobs' (DSN 2006)."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="+",
        metavar="FIGURE",
        help=f"figure ids ({', '.join(ALL_FIGURES)}) or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use a smaller sample size for the trace-based Figure 1",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for sweep curves (default 1: serial); "
        "output is identical to a serial run",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="cache solves in memory across figures; with DIR, also "
        "persist them on disk across runs (and record per-figure "
        "completion in DIR/run-manifest.json for --resume)",
    )
    parser.add_argument(
        "--warm-start",
        action="store_true",
        help="seed each R-matrix solve with the previous point of the "
        "sweep (results agree with cold solves to solver tolerance)",
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="solve each sweep's cache misses through the stacked "
        "matrix-geometric kernel, grouped by chain shape (results agree "
        "with sequential solves to solver tolerance)",
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "skip", "collect"),
        default="raise",
        help="per-point failure policy: 'raise' (default) stops at the "
        "first solve failure; 'skip'/'collect' render failed points as "
        "NaN and keep going (see repro.engine.resilience)",
    )
    parser.add_argument(
        "--escalate",
        action="store_true",
        help="enable the truncated dense-chain rung of the solver "
        "escalation ladder for points every R iteration fails on",
    )
    parser.add_argument(
        "--keep-going",
        action="store_true",
        help="report a failing figure and continue with the remaining "
        "ones; the exit code still reflects the failure",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay figures already completed by a previous (possibly "
        "killed) run from DIR/run-manifest.json and recompute only the "
        "rest; requires --cache DIR",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.resume and args.cache in (None, ""):
        parser.error("--resume needs an on-disk cache: pass --cache DIR")

    requested = list(ALL_FIGURES) if "all" in args.figures else args.figures
    unknown = [f for f in requested if f not in ALL_FIGURES]
    if unknown:
        parser.error(
            f"unknown figure(s) {', '.join(unknown)}; "
            f"choose from {', '.join(ALL_FIGURES)} or 'all'"
        )

    # With an on-disk cache the run keeps a crash-safe manifest next to
    # it, whether or not this invocation resumes -- the *next* one might.
    manifest = None
    if args.cache not in (None, ""):
        manifest = RunManifest.in_cache_dir(
            args.cache, config={"fast": bool(args.fast)}
        )

    engine = _build_engine(args)
    exit_code = 0
    for name in requested:
        if args.resume and manifest is not None:
            stored = manifest.completed(name)
            if stored is not None:
                print(stored)
                print()
                continue
        func = ALL_FIGURES[name]
        kwargs = {}
        if engine is not None and "engine" in inspect.signature(func).parameters:
            kwargs["engine"] = engine
        if name == "fig1" and args.fast:
            kwargs["samples"] = 20_000
        try:
            result = func(**kwargs)
        except Exception as exc:
            if not args.keep_going:
                raise
            print(
                f"FIGURE {name} FAILED: {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            exit_code = 1
            continue
        rendered = render_result(result)
        print(rendered)
        print()
        if manifest is not None:
            manifest.record(name, rendered)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
