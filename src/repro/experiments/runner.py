"""Command-line entry point: regenerate paper figures from the terminal."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.render import render_result

__all__ = ["main"]


def main(argv: Sequence[str] | None = None) -> int:
    """Run ``python -m repro.experiments <figure...|all>``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the tables and figures of 'Evaluating the "
            "Performability of Systems with Background Jobs' (DSN 2006)."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="+",
        metavar="FIGURE",
        help=f"figure ids ({', '.join(ALL_FIGURES)}) or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="use a smaller sample size for the trace-based Figure 1",
    )
    args = parser.parse_args(argv)

    requested = list(ALL_FIGURES) if "all" in args.figures else args.figures
    unknown = [f for f in requested if f not in ALL_FIGURES]
    if unknown:
        parser.error(
            f"unknown figure(s) {', '.join(unknown)}; "
            f"choose from {', '.join(ALL_FIGURES)} or 'all'"
        )

    for name in requested:
        func = ALL_FIGURES[name]
        if name == "fig1" and args.fast:
            result = func(samples=20_000)
        else:
            result = func()
        print(render_result(result))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
