"""Experiment harness: regenerate every table and figure of the paper.

Each ``figN`` function in :mod:`~repro.experiments.figures` reproduces one
figure of the paper's evaluation (Section 5) and returns an
:class:`~repro.experiments.result.ExperimentResult` whose series carry the
same x-axis and the same one-curve-per-parameter structure as the original
plot.  :mod:`~repro.experiments.render` prints them as ASCII tables/charts,
and ``python -m repro.experiments <fig1|...|fig13|all>`` runs them from the
command line.
"""

from repro.experiments.result import ExperimentResult
from repro.experiments.manifest import RunManifest
from repro.experiments.figures import (
    ALL_FIGURES,
    fig1_trace_acf,
    fig2_mmpp_acf,
    fig5_fg_queue_length,
    fig6_fg_delayed,
    fig7_bg_completion,
    fig8_bg_queue_length,
    fig9_idle_wait_fg,
    fig10_idle_wait_bg,
    fig11_dependence_fg_qlen,
    fig12_dependence_bg_completion,
    fig13_dependence_fg_delayed,
)
from repro.experiments.render import render_result
from repro.experiments.sweeps import (
    BG_PROBABILITIES,
    SweepAxis,
    bg_probability_axis,
    idle_wait_axis,
    sweep,
    sweep_many,
    utilization_axis,
)
from repro.experiments.tables import figure1_table, figure2_table

__all__ = [
    "ExperimentResult",
    "ALL_FIGURES",
    "BG_PROBABILITIES",
    "RunManifest",
    "SweepAxis",
    "bg_probability_axis",
    "idle_wait_axis",
    "sweep",
    "sweep_many",
    "utilization_axis",
    "fig1_trace_acf",
    "fig2_mmpp_acf",
    "fig5_fg_queue_length",
    "fig6_fg_delayed",
    "fig7_bg_completion",
    "fig8_bg_queue_length",
    "fig9_idle_wait_fg",
    "fig10_idle_wait_bg",
    "fig11_dependence_fg_qlen",
    "fig12_dependence_bg_completion",
    "fig13_dependence_fg_delayed",
    "render_result",
    "figure1_table",
    "figure2_table",
]
