"""The parameter tables embedded in the paper's Figures 1 and 2."""

from __future__ import annotations

from repro.workloads.paper import SERVICE_RATE_PER_MS, SERVICE_TIME_MS, WORKLOADS

__all__ = ["figure1_table", "figure2_table"]


def figure1_table() -> tuple[tuple[str, ...], ...]:
    """The Figure 1 table: inter-arrival mean/CV and utilization per trace.

    Values come from the fitted MMPPs' closed forms (the service process is
    the shared 6 ms exponential, CV 1).
    """
    rows: list[tuple[str, ...]] = [
        (
            "workload",
            "interarrival mean (ms)",
            "interarrival CV",
            "service mean (ms)",
            "service CV",
            "utilization",
        )
    ]
    for spec in WORKLOADS.values():
        mmpp = spec.fit()
        rows.append(
            (
                spec.name,
                f"{mmpp.mean_interarrival:.2f}",
                f"{mmpp.cv:.3f}",
                f"{SERVICE_TIME_MS:.1f}",
                "1.000",
                f"{mmpp.mean_rate / SERVICE_RATE_PER_MS:.1%}",
            )
        )
    return tuple(rows)


def figure2_table() -> tuple[tuple[str, ...], ...]:
    """The Figure 2 table: (v1, v2, l1, l2) of each fitted MMPP (per ms)."""
    rows: list[tuple[str, ...]] = [("workload", "v1", "v2", "l1", "l2")]
    for spec in WORKLOADS.values():
        params = spec.fit().parameters
        rows.append(
            (
                spec.name,
                f"{params['v1']:.4e}",
                f"{params['v2']:.4e}",
                f"{params['l1']:.4e}",
                f"{params['l2']:.4e}",
            )
        )
    return tuple(rows)
