"""Crash-safe run manifest: resume a killed figure run where it stopped.

A figure run with an on-disk solve cache records each figure's rendered
output in ``<cache_dir>/run-manifest.json`` the moment the figure
completes (written atomically, like the cache entries themselves).  After
a crash -- power cut, OOM kill, the ``kill_run`` fault of
:mod:`repro.faults` -- ``python -m repro.experiments ... --resume``
replays the completed figures *verbatim* from the manifest and recomputes
only the rest; the solve cache makes the recomputation pick up mid-sweep,
so the resumed run's output is byte-identical to an uninterrupted run.

The manifest stores the run configuration it was written under (the
flags that change figure output); a resume under a different
configuration starts fresh rather than replaying stale text.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["MANIFEST_NAME", "MANIFEST_VERSION", "RunManifest"]

#: File name of the manifest, next to the solve-cache entries.
MANIFEST_NAME = "run-manifest.json"

#: Schema version; a manifest with any other version is ignored.
MANIFEST_VERSION = 1


class RunManifest:
    """Per-figure completion record of one figure run.

    Parameters
    ----------
    path:
        The manifest file.  Loaded if it exists and matches ``config``
        and :data:`MANIFEST_VERSION`; started empty otherwise.
    config:
        JSON-serializable run configuration (flags that change figure
        output, e.g. ``{"fast": False}``).  A stored manifest with a
        different configuration is discarded -- its rendered text would
        not match the current run.
    """

    def __init__(self, path: str | os.PathLike, config: dict | None = None) -> None:
        self.path = Path(path)
        self.config = dict(config or {})
        self._figures: dict[str, str] = {}
        self._load()

    @classmethod
    def in_cache_dir(
        cls, directory: str | os.PathLike, config: dict | None = None
    ) -> "RunManifest":
        """The manifest living next to the solve cache in ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return cls(directory / MANIFEST_NAME, config=config)

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            # A torn manifest write loses at most the resume shortcut --
            # the run recomputes from the (still valid) solve cache.
            return
        if (
            not isinstance(payload, dict)
            or payload.get("version") != MANIFEST_VERSION
            or payload.get("config") != self.config
        ):
            return
        figures = payload.get("figures")
        if isinstance(figures, dict) and all(
            isinstance(k, str) and isinstance(v, str) for k, v in figures.items()
        ):
            self._figures = figures

    @property
    def figures(self) -> tuple[str, ...]:
        """Names of the figures completed so far, in completion order."""
        return tuple(self._figures)

    def completed(self, figure: str) -> str | None:
        """The stored rendered output of ``figure``, or ``None``."""
        return self._figures.get(figure)

    def record(self, figure: str, rendered: str) -> None:
        """Mark ``figure`` complete and persist the manifest atomically."""
        self._figures[figure] = rendered
        payload = {
            "version": MANIFEST_VERSION,
            "config": self.config,
            "figures": self._figures,
        }
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, self.path)

    def __repr__(self) -> str:
        return (
            f"RunManifest({str(self.path)!r}, "
            f"completed={list(self._figures)})"
        )
