"""Plain-text rendering of experiment results.

Since the harness runs in terminals and CI logs, figures are rendered as
aligned value tables (one column per series, rows over the x grid) plus the
embedded parameter tables.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.result import ExperimentResult

__all__ = ["render_result", "render_table"]


def render_table(rows: tuple[tuple[str, ...], ...]) -> str:
    """Align a header-plus-rows table into fixed-width columns."""
    if not rows:
        return ""
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    for idx, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _format_value(v: float) -> str:
    if math.isnan(v):
        return "nan"
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 1e-3:
        return f"{v:.3e}"
    return f"{v:.4f}"


def render_result(result: ExperimentResult, max_rows: int = 30) -> str:
    """Render one experiment as text: title, tables, and series values."""
    out = [f"== {result.experiment_id}: {result.title} =="]
    if result.notes:
        out.append(f"   ({result.notes})")
    if result.table:
        out.append("")
        out.append(render_table(result.table))
    if result.series:
        # Group series that share an x grid into one table each.
        remaining = list(result.series)
        while remaining:
            x = remaining[0].x
            group = [s for s in remaining if np.array_equal(s.x, x)]
            remaining = [s for s in remaining if not np.array_equal(s.x, x)]
            header = (result.x_label, *(s.label for s in group))
            stride = max(1, len(x) // max_rows)
            rows = [header]
            for i in range(0, len(x), stride):
                rows.append(
                    (
                        _format_value(float(x[i])),
                        *(_format_value(float(s.y[i])) for s in group),
                    )
                )
            out.append("")
            out.append(f"[{result.y_label}]")
            out.append(render_table(tuple(rows)))
    return "\n".join(out)
