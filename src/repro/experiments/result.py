"""Container for one reproduced figure/table."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ExperimentResult", "Series"]


@dataclass(frozen=True)
class Series:
    """One curve of a figure: matched x and y arrays."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        x = np.array(self.x, dtype=float)
        y = np.array(self.y, dtype=float)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError(
                f"series {self.label!r}: x and y must be equal-length 1-D "
                f"arrays, got {x.shape} and {y.shape}"
            )
        x.setflags(write=False)
        y.setflags(write=False)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)


@dataclass(frozen=True)
class ExperimentResult:
    """A reproduced figure: labelled series over a shared x-axis meaning."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: tuple[Series, ...]
    notes: str = ""
    #: Optional preformatted table rows (e.g. the Figure 1/2 parameter
    #: tables): a header tuple followed by value tuples.
    table: tuple[tuple[str, ...], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.series and not self.table:
            raise ValueError(f"experiment {self.experiment_id}: no data")

    def series_by_label(self, label: str) -> Series:
        """Look up one curve by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r} in {self.experiment_id}; "
            f"have {[s.label for s in self.series]}"
        )

    @property
    def labels(self) -> tuple[str, ...]:
        """Labels of all series, in display order."""
        return tuple(s.label for s in self.series)
