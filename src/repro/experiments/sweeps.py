"""Parameter-sweep helpers shared by the figure reproductions.

The generic entry point is :func:`sweep`: a base model, a
:class:`SweepAxis` describing which parameter varies, and a metric (a
string key of :data:`repro.core.METRICS` or a callable).  Solves are
executed through a :class:`~repro.engine.SweepEngine`, which supplies
caching, R-matrix warm-starting and -- via :func:`sweep_many` --
parallelism across curves.

The pre-engine entry points ``load_sweep_series`` and
``idle_wait_sweep_series`` were deprecated when the engine landed and
have been removed; ``python -m tools.reprolint --fix`` still rewrites
surviving call sites to the equivalent :func:`sweep_many` form (RL010).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import resolve_metric
from repro.core.model import FgBgModel
from repro.core.result import FgBgSolution
from repro.engine.config import EngineConfig
from repro.engine.engine import SweepEngine
from repro.experiments.result import Series

__all__ = [
    "BG_PROBABILITIES",
    "SweepAxis",
    "bg_probability_axis",
    "idle_wait_axis",
    "sweep",
    "sweep_many",
    "utilization_axis",
]

#: The background loads the paper sweeps (Figures 5-8 legends).
BG_PROBABILITIES = (0.0, 0.1, 0.3, 0.6, 0.9)


@dataclass(frozen=True)
class SweepAxis:
    """One axis of a parameter sweep.

    ``transform(base_model, value)`` returns the model at each axis point;
    :attr:`values` become the x coordinates of the resulting series.
    """

    name: str
    values: tuple[float, ...]
    transform: Callable[[FgBgModel, float], FgBgModel]

    def models(self, base_model: FgBgModel) -> list[FgBgModel]:
        """The chain of models along this axis (warm-start friendly order)."""
        return [self.transform(base_model, value) for value in self.values]

    def x(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)


def utilization_axis(values: Sequence[float]) -> SweepAxis:
    """Foreground utilization axis (the x of the paper's Figures 5-8,
    11-13); rescales the arrival process, preserving ACF and CV."""
    return SweepAxis(
        name="foreground utilization",
        values=tuple(float(v) for v in values),
        transform=FgBgModel.at_utilization,
    )


def idle_wait_axis(values: Sequence[float]) -> SweepAxis:
    """Idle-wait axis in multiples of the mean service time (the x of the
    paper's Figures 9-10)."""
    return SweepAxis(
        name="idle wait (multiples of mean service time)",
        values=tuple(float(v) for v in values),
        transform=FgBgModel.with_idle_wait_multiple,
    )


def bg_probability_axis(values: Sequence[float]) -> SweepAxis:
    """Background-spawn probability axis."""
    return SweepAxis(
        name="background probability p",
        values=tuple(float(v) for v in values),
        transform=FgBgModel.with_bg_probability,
    )


def _series_values(
    metric_fn: Callable[[FgBgSolution], float],
    solutions: Sequence[FgBgSolution | None],
) -> np.ndarray:
    """Metric values of a solved chain; failed (``None``) points are NaN.

    A failure never turns into a number: the point is NaN in the series
    and the structured record lives in the engine's
    :attr:`~repro.engine.EngineStats.failures`.
    """
    return np.asarray(
        [np.nan if s is None else metric_fn(s) for s in solutions],
        dtype=float,
    )


def _build_engine(
    config: EngineConfig | None,
    *,
    batched: bool,
    on_error: str,
) -> SweepEngine:
    """Engine for a sweep call that did not supply one.

    The legacy per-call knobs win over ``config`` only when moved off
    their defaults, so ``sweep(..., config=cfg)`` runs exactly ``cfg``
    and ``sweep(..., config=cfg, batched=True)`` runs ``cfg`` batched.
    """
    overrides: dict[str, object] = {}
    if batched:
        overrides["batched"] = True
    if on_error != "raise":
        overrides["on_error"] = on_error
    return SweepEngine(config=config, **overrides)


def sweep(
    base_model: FgBgModel,
    axis: SweepAxis,
    metric: str | Callable[[FgBgSolution], float],
    *,
    engine: SweepEngine | None = None,
    config: EngineConfig | None = None,
    label: str | None = None,
    batched: bool = False,
    on_error: str = "raise",
) -> Series:
    """Evaluate one metric along one axis; returns one :class:`Series`.

    ``metric`` is a key of :data:`repro.core.METRICS` (e.g. ``"qlen_fg"``)
    or any callable on :class:`FgBgSolution`.  ``batched=True`` without an
    explicit engine solves the whole axis through the stacked kernel
    (:class:`SweepEngine` with ``batched=True``); with an engine supplied,
    the engine's own configuration wins.  ``config`` builds the engine
    from a full :class:`~repro.engine.EngineConfig` instead (the job
    layer's spec path); ``batched``/``on_error`` still override it when
    set away from their defaults.  ``on_error`` (likewise only consulted
    when no engine is supplied) isolates per-point failures: failed
    points are NaN in the series instead of sinking the sweep (see
    :mod:`repro.engine.resilience`).
    """
    metric_fn = resolve_metric(metric)
    if engine is None:
        engine = _build_engine(config, batched=batched, on_error=on_error)
    solutions = engine.run_chain(axis.models(base_model))
    return Series(
        label=axis.name if label is None else label,
        x=axis.x(),
        y=_series_values(metric_fn, solutions),
    )


def sweep_many(
    base_model: FgBgModel,
    axis: SweepAxis,
    metric: str | Callable[[FgBgSolution], float],
    bg_probabilities: Sequence[float],
    *,
    engine: SweepEngine | None = None,
    config: EngineConfig | None = None,
    batched: bool = False,
    on_error: str = "raise",
) -> list[Series]:
    """One curve per background probability along ``axis``.

    Each probability is an independent chain, so an engine with
    ``jobs > 1`` solves the curves in parallel; ``batched=True`` (without
    an explicit engine) pools every curve's points into stacked kernel
    calls instead.  ``config`` builds the engine from a full
    :class:`~repro.engine.EngineConfig` (see :func:`sweep`).  ``on_error``
    (also only consulted when no engine is supplied) isolates per-point
    failures as NaN, exactly as in :func:`sweep`.
    """
    metric_fn = resolve_metric(metric)
    if engine is None:
        engine = _build_engine(config, batched=batched, on_error=on_error)
    chains = [
        axis.models(base_model.with_bg_probability(p)) for p in bg_probabilities
    ]
    solved = engine.run_chains(chains)
    x = axis.x()
    return [
        Series(
            label=f"p = {p:g}",
            x=x.copy(),
            y=_series_values(metric_fn, solutions),
        )
        for p, solutions in zip(bg_probabilities, solved)
    ]
