"""Parameter-sweep helpers shared by the figure reproductions."""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.model import FgBgModel
from repro.core.result import FgBgSolution
from repro.experiments.result import Series
from repro.processes.map_process import MarkovianArrivalProcess
from repro.workloads.paper import SERVICE_RATE_PER_MS

__all__ = ["load_sweep_series", "idle_wait_sweep_series", "BG_PROBABILITIES"]

#: The background loads the paper sweeps (Figures 5-8 legends).
BG_PROBABILITIES = (0.0, 0.1, 0.3, 0.6, 0.9)


def load_sweep_series(
    arrival: MarkovianArrivalProcess,
    utilizations: Sequence[float],
    bg_probabilities: Sequence[float],
    metric: Callable[[FgBgSolution], float],
    service_rate: float = SERVICE_RATE_PER_MS,
    **model_kwargs,
) -> list[Series]:
    """One curve per background probability; x = foreground utilization."""
    out: list[Series] = []
    utils = np.asarray(list(utilizations), dtype=float)
    for p in bg_probabilities:
        values = np.empty_like(utils)
        for i, util in enumerate(utils):
            model = FgBgModel(
                arrival=arrival.scaled_to_utilization(util, service_rate),
                service_rate=service_rate,
                bg_probability=p,
                **model_kwargs,
            )
            values[i] = metric(model.solve())
        out.append(Series(label=f"p = {p:g}", x=utils.copy(), y=values))
    return out


def idle_wait_sweep_series(
    arrival: MarkovianArrivalProcess,
    idle_wait_multiples: Sequence[float],
    bg_probabilities: Sequence[float],
    metric: Callable[[FgBgSolution], float],
    service_rate: float = SERVICE_RATE_PER_MS,
    **model_kwargs,
) -> list[Series]:
    """One curve per background probability; x = idle wait in multiples of
    the mean service time (Figures 9-10)."""
    out: list[Series] = []
    multiples = np.asarray(list(idle_wait_multiples), dtype=float)
    for p in bg_probabilities:
        values = np.empty_like(multiples)
        for i, mult in enumerate(multiples):
            model = FgBgModel(
                arrival=arrival,
                service_rate=service_rate,
                bg_probability=p,
                idle_wait_rate=service_rate / mult,
                **model_kwargs,
            )
            values[i] = metric(model.solve())
        out.append(Series(label=f"p = {p:g}", x=multiples.copy(), y=values))
    return out
