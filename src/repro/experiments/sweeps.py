"""Parameter-sweep helpers shared by the figure reproductions.

The generic entry point is :func:`sweep`: a base model, a
:class:`SweepAxis` describing which parameter varies, and a metric (a
string key of :data:`repro.core.METRICS` or a callable).  Solves are
executed through a :class:`~repro.engine.SweepEngine`, which supplies
caching, R-matrix warm-starting and -- via :func:`sweep_many` --
parallelism across curves.

``load_sweep_series`` and ``idle_wait_sweep_series`` are the pre-engine
entry points, kept as thin deprecated wrappers.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import resolve_metric
from repro.core.model import FgBgModel
from repro.core.result import FgBgSolution
from repro.engine.engine import SweepEngine
from repro.experiments.result import Series
from repro.processes.map_process import MarkovianArrivalProcess
from repro.workloads.paper import SERVICE_RATE_PER_MS

__all__ = [
    "BG_PROBABILITIES",
    "SweepAxis",
    "bg_probability_axis",
    "idle_wait_axis",
    "idle_wait_sweep_series",
    "load_sweep_series",
    "sweep",
    "sweep_many",
    "utilization_axis",
]

#: The background loads the paper sweeps (Figures 5-8 legends).
BG_PROBABILITIES = (0.0, 0.1, 0.3, 0.6, 0.9)


@dataclass(frozen=True)
class SweepAxis:
    """One axis of a parameter sweep.

    ``transform(base_model, value)`` returns the model at each axis point;
    :attr:`values` become the x coordinates of the resulting series.
    """

    name: str
    values: tuple[float, ...]
    transform: Callable[[FgBgModel, float], FgBgModel]

    def models(self, base_model: FgBgModel) -> list[FgBgModel]:
        """The chain of models along this axis (warm-start friendly order)."""
        return [self.transform(base_model, value) for value in self.values]

    def x(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)


def utilization_axis(values: Sequence[float]) -> SweepAxis:
    """Foreground utilization axis (the x of the paper's Figures 5-8,
    11-13); rescales the arrival process, preserving ACF and CV."""
    return SweepAxis(
        name="foreground utilization",
        values=tuple(float(v) for v in values),
        transform=FgBgModel.at_utilization,
    )


def idle_wait_axis(values: Sequence[float]) -> SweepAxis:
    """Idle-wait axis in multiples of the mean service time (the x of the
    paper's Figures 9-10)."""
    return SweepAxis(
        name="idle wait (multiples of mean service time)",
        values=tuple(float(v) for v in values),
        transform=FgBgModel.with_idle_wait_multiple,
    )


def bg_probability_axis(values: Sequence[float]) -> SweepAxis:
    """Background-spawn probability axis."""
    return SweepAxis(
        name="background probability p",
        values=tuple(float(v) for v in values),
        transform=FgBgModel.with_bg_probability,
    )


def _series_values(
    metric_fn: Callable[[FgBgSolution], float],
    solutions: Sequence[FgBgSolution | None],
) -> np.ndarray:
    """Metric values of a solved chain; failed (``None``) points are NaN.

    A failure never turns into a number: the point is NaN in the series
    and the structured record lives in the engine's
    :attr:`~repro.engine.EngineStats.failures`.
    """
    return np.asarray(
        [np.nan if s is None else metric_fn(s) for s in solutions],
        dtype=float,
    )


def sweep(
    base_model: FgBgModel,
    axis: SweepAxis,
    metric: str | Callable[[FgBgSolution], float],
    *,
    engine: SweepEngine | None = None,
    label: str | None = None,
    batched: bool = False,
    on_error: str = "raise",
) -> Series:
    """Evaluate one metric along one axis; returns one :class:`Series`.

    ``metric`` is a key of :data:`repro.core.METRICS` (e.g. ``"qlen_fg"``)
    or any callable on :class:`FgBgSolution`.  ``batched=True`` without an
    explicit engine solves the whole axis through the stacked kernel
    (:class:`SweepEngine` with ``batched=True``); with an engine supplied,
    the engine's own configuration wins.  ``on_error`` (likewise only
    consulted when no engine is supplied) isolates per-point failures:
    failed points are NaN in the series instead of sinking the sweep (see
    :mod:`repro.engine.resilience`).
    """
    metric_fn = resolve_metric(metric)
    if engine is None:
        engine = SweepEngine(batched=batched, on_error=on_error)
    solutions = engine.run_chain(axis.models(base_model))
    return Series(
        label=axis.name if label is None else label,
        x=axis.x(),
        y=_series_values(metric_fn, solutions),
    )


def sweep_many(
    base_model: FgBgModel,
    axis: SweepAxis,
    metric: str | Callable[[FgBgSolution], float],
    bg_probabilities: Sequence[float],
    *,
    engine: SweepEngine | None = None,
    batched: bool = False,
    on_error: str = "raise",
) -> list[Series]:
    """One curve per background probability along ``axis``.

    Each probability is an independent chain, so an engine with
    ``jobs > 1`` solves the curves in parallel; ``batched=True`` (without
    an explicit engine) pools every curve's points into stacked kernel
    calls instead.  ``on_error`` (also only consulted when no engine is
    supplied) isolates per-point failures as NaN, exactly as in
    :func:`sweep`.
    """
    metric_fn = resolve_metric(metric)
    if engine is None:
        engine = SweepEngine(batched=batched, on_error=on_error)
    chains = [
        axis.models(base_model.with_bg_probability(p)) for p in bg_probabilities
    ]
    solved = engine.run_chains(chains)
    x = axis.x()
    return [
        Series(
            label=f"p = {p:g}",
            x=x.copy(),
            y=_series_values(metric_fn, solutions),
        )
        for p, solutions in zip(bg_probabilities, solved)
    ]


# ----------------------------------------------------------------------
# Deprecated pre-engine entry points
# ----------------------------------------------------------------------

#: Deprecated entry points that have already warned this process.  Each
#: wrapper warns exactly once per process so sweep loops stay readable
#: under ``-W error::DeprecationWarning`` migrations (the first call
#: fails loudly; a thousand-model sweep does not emit a thousand
#: duplicates).
_warned_deprecations: set[str] = set()


def _warn_deprecated_once(name: str, replacement: str) -> None:
    if name in _warned_deprecations:
        return
    _warned_deprecations.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,  # the caller of the deprecated wrapper, not the helper
    )


def load_sweep_series(
    arrival: MarkovianArrivalProcess,
    utilizations: Sequence[float],
    bg_probabilities: Sequence[float],
    metric: str | Callable[[FgBgSolution], float],
    service_rate: float = SERVICE_RATE_PER_MS,
    **model_kwargs,
) -> list[Series]:
    """One curve per background probability; x = foreground utilization.

    .. deprecated::
        Use :func:`sweep_many` with :func:`utilization_axis`.
        Warns once per process.
    """
    _warn_deprecated_once(
        "load_sweep_series",
        "sweep_many(base_model, utilization_axis(...), metric, ...)",
    )
    base = FgBgModel(
        arrival=arrival,
        service_rate=service_rate,
        bg_probability=0.0,
        **model_kwargs,
    )
    return sweep_many(base, utilization_axis(utilizations), metric, bg_probabilities)


def idle_wait_sweep_series(
    arrival: MarkovianArrivalProcess,
    idle_wait_multiples: Sequence[float],
    bg_probabilities: Sequence[float],
    metric: str | Callable[[FgBgSolution], float],
    service_rate: float = SERVICE_RATE_PER_MS,
    **model_kwargs,
) -> list[Series]:
    """One curve per background probability; x = idle wait in multiples of
    the mean service time (Figures 9-10).

    .. deprecated::
        Use :func:`sweep_many` with :func:`idle_wait_axis`.
        Warns once per process.
    """
    _warn_deprecated_once(
        "idle_wait_sweep_series",
        "sweep_many(base_model, idle_wait_axis(...), metric, ...)",
    )
    base = FgBgModel(
        arrival=arrival,
        service_rate=service_rate,
        bg_probability=0.0,
        **model_kwargs,
    )
    return sweep_many(base, idle_wait_axis(idle_wait_multiples), metric, bg_probabilities)
