"""Markovian arrival processes and phase-type distributions.

This package provides the stochastic-process substrate of the library:

* :class:`~repro.processes.map_process.MarkovianArrivalProcess` -- the MAP
  base class, characterised by two matrices ``(D0, D1)``.
* :class:`~repro.processes.mmpp.MMPP` -- Markov-Modulated Poisson Processes,
  the arrival model used throughout the paper.
* :class:`~repro.processes.poisson.PoissonProcess` and
  :class:`~repro.processes.ipp.InterruptedPoissonProcess` -- the comparator
  processes of the paper's Section 5.4.
* :class:`~repro.processes.ph.PhaseType` -- phase-type distributions used by
  the simulator and the PH-service model extension.
* :mod:`~repro.processes.fitting` -- moment/autocorrelation matching.
* :mod:`~repro.processes.statistics` -- empirical estimators (ACF, CV).
* :mod:`~repro.processes.sampling` -- random sample-path generation.
"""

from repro.processes.map_process import MarkovianArrivalProcess
from repro.processes.mmpp import MMPP
from repro.processes.poisson import PoissonProcess
from repro.processes.ipp import InterruptedPoissonProcess
from repro.processes.ph import PhaseType
from repro.processes.fitting import (
    fit_h2_balanced,
    fit_ipp,
    fit_mmpp2,
    fit_mmpp2_acf,
    fit_mmpp2_from_trace,
    fit_mmpp2_paper,
    max_acf1_slow_switching,
)
from repro.processes.statistics import (
    autocorrelation,
    coefficient_of_variation,
    describe_sample,
)
from repro.processes.sampling import MAPSampler
from repro.processes.counting import (
    counting_mean,
    counting_variance,
    empirical_idc,
    idc_limit,
    index_of_dispersion,
)

__all__ = [
    "MarkovianArrivalProcess",
    "MMPP",
    "PoissonProcess",
    "InterruptedPoissonProcess",
    "PhaseType",
    "fit_h2_balanced",
    "fit_ipp",
    "fit_mmpp2",
    "fit_mmpp2_acf",
    "fit_mmpp2_from_trace",
    "fit_mmpp2_paper",
    "max_acf1_slow_switching",
    "autocorrelation",
    "coefficient_of_variation",
    "describe_sample",
    "MAPSampler",
    "counting_mean",
    "counting_variance",
    "empirical_idc",
    "idc_limit",
    "index_of_dispersion",
]
