"""Interrupted Poisson Processes.

An IPP is a 2-state MMPP whose second ("off") phase produces no arrivals.
Its inter-arrival times are i.i.d. two-phase hyperexponential (Kuczura,
1973), so it is a *renewal* process: high variability but zero
autocorrelation.  The paper (Section 5.4) uses an IPP matched to the E-mail
workload's mean and CV to separate the effect of variability from the effect
of dependence.
"""

from __future__ import annotations

import numpy as np

from repro.processes.mmpp import MMPP

__all__ = ["InterruptedPoissonProcess"]


class InterruptedPoissonProcess(MMPP):
    """IPP with arrival rate ``rate_on`` in the on-phase.

    Parameters
    ----------
    rate_on:
        Poisson arrival rate while in the on-phase.
    on_to_off:
        Rate of leaving the on-phase.
    off_to_on:
        Rate of returning to the on-phase.
    """

    def __init__(self, rate_on: float, on_to_off: float, off_to_on: float) -> None:
        if rate_on <= 0:
            raise ValueError(f"rate_on must be positive, got {rate_on}")
        generator = np.array([[-on_to_off, on_to_off], [off_to_on, -off_to_on]])
        super().__init__(generator, np.array([rate_on, 0.0]))

    @property
    def rate_on(self) -> float:
        """Arrival rate in the on-phase."""
        return float(self.arrival_rates[0])

    @property
    def on_to_off(self) -> float:
        """Rate of leaving the on-phase."""
        return float(self.modulating_generator[0, 1])

    @property
    def off_to_on(self) -> float:
        """Rate of entering the on-phase."""
        return float(self.modulating_generator[1, 0])

    @classmethod
    def from_hyperexponential(
        cls, p1: float, mu1: float, mu2: float
    ) -> "InterruptedPoissonProcess":
        """IPP whose renewal inter-arrival distribution is the H2 mixture
        ``p1 * Exp(mu1) + (1 - p1) * Exp(mu2)`` (Kuczura's equivalence).
        """
        if not 0 < p1 < 1:
            raise ValueError(f"p1 must lie strictly in (0, 1), got {p1}")
        if mu1 <= 0 or mu2 <= 0:
            raise ValueError(f"H2 rates must be positive, got {mu1}, {mu2}")
        p2 = 1.0 - p1
        rate_on = p1 * mu1 + p2 * mu2
        on_to_off = p1 * p2 * (mu1 - mu2) ** 2 / rate_on
        off_to_on = mu1 * mu2 / rate_on
        if on_to_off <= 0:
            # mu1 == mu2 degenerates to a Poisson process; keep a tiny but
            # valid switching rate so the chain stays irreducible.
            raise ValueError("H2 with mu1 == mu2 is a Poisson process, not an IPP")
        return cls(rate_on, on_to_off, off_to_on)

    @classmethod
    def _from_matrices(cls, d0: np.ndarray, d1: np.ndarray) -> "InterruptedPoissonProcess":
        return cls(rate_on=float(d1[0, 0]), on_to_off=float(d0[0, 1]), off_to_on=float(d0[1, 0]))

    def __repr__(self) -> str:
        return (
            f"InterruptedPoissonProcess(rate_on={self.rate_on:.6g}, "
            f"on_to_off={self.on_to_off:.6g}, off_to_on={self.off_to_on:.6g})"
        )
