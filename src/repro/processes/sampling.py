"""Random sample-path generation for MAPs.

Generates arrival streams by simulating the underlying phase process.  Used
to create the synthetic traces behind Figure 1 and to drive the
discrete-event simulator.
"""

from __future__ import annotations

import numpy as np

from repro.processes.map_process import MarkovianArrivalProcess

__all__ = ["MAPSampler"]


class MAPSampler:
    """Stateful generator of arrivals from a MAP.

    Parameters
    ----------
    process:
        The MAP to sample from.
    rng:
        A numpy random generator.
    initial_phase:
        Starting phase; by default drawn from the embedded (post-arrival)
        stationary distribution so that the generated inter-arrival sequence
        is stationary from the first sample.
    """

    def __init__(
        self,
        process: MarkovianArrivalProcess,
        rng: np.random.Generator,
        initial_phase: int | None = None,
    ) -> None:
        self._process = process
        self._rng = rng
        order = process.order
        d0 = process.d0
        d1 = process.d1
        self._exit_rates = -np.diag(d0)
        if np.any(self._exit_rates <= 0):
            raise ValueError("every phase must have a positive total event rate")
        # Event kind/target distribution per phase. Events are encoded as
        # columns [0, order): phase change without arrival (to that phase),
        # [order, 2*order): arrival moving to phase (column - order).
        probs = np.empty((order, 2 * order))
        hidden = d0 - np.diag(np.diag(d0))
        probs[:, :order] = hidden / self._exit_rates[:, None]
        probs[:, order:] = d1 / self._exit_rates[:, None]
        # Normalize defensively against round-off.
        probs /= probs.sum(axis=1, keepdims=True)
        self._event_probs = probs
        if initial_phase is None:
            self._phase = int(rng.choice(order, p=process.embedded_stationary))
        else:
            if not 0 <= initial_phase < order:
                raise ValueError(f"initial_phase {initial_phase} out of range 0..{order - 1}")
            self._phase = initial_phase

    @property
    def phase(self) -> int:
        """Current phase of the modulating chain."""
        return self._phase

    def next_interarrival(self) -> float:
        """Time until the next arrival from the current state."""
        elapsed = 0.0
        order = self._process.order
        while True:
            elapsed += self._rng.exponential(1.0 / self._exit_rates[self._phase])
            event = int(self._rng.choice(2 * order, p=self._event_probs[self._phase]))
            if event < order:
                self._phase = event
            else:
                self._phase = event - order
                return elapsed

    def interarrival_times(self, n: int) -> np.ndarray:
        """Generate ``n`` consecutive inter-arrival times."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        out = np.empty(n)
        for i in range(n):
            out[i] = self.next_interarrival()
        return out

    def arrival_times(self, n: int) -> np.ndarray:
        """Generate the first ``n`` absolute arrival epochs (starting at 0)."""
        return np.cumsum(self.interarrival_times(n))
