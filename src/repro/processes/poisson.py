"""The Poisson process as a degenerate (order-1) MAP."""

from __future__ import annotations

import numpy as np

from repro.processes.map_process import MarkovianArrivalProcess

__all__ = ["PoissonProcess"]


class PoissonProcess(MarkovianArrivalProcess):
    """Poisson process with the given rate, as a MAP of order 1.

    Used as the independent-arrivals comparator in the paper's Section 5.4
    (labelled "Expo") and as the sanity-check case in which the full
    foreground/background model must collapse to M/M/1 results.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        super().__init__(np.array([[-rate]]), np.array([[rate]]))
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        """Arrival rate."""
        return self._rate

    @classmethod
    def _from_matrices(cls, d0: np.ndarray, d1: np.ndarray) -> "PoissonProcess":
        return cls(float(d1[0, 0]))

    def __repr__(self) -> str:
        return f"PoissonProcess(rate={self._rate:.6g})"
