"""Markov-Modulated Poisson Processes.

An MMPP is a MAP whose arrival matrix ``D1`` is diagonal: arrivals are
Poisson with a rate ``l_i`` that depends on the current phase ``i`` of a
modulating CTMC.  The paper uses 2-state MMPPs (paper Eq. 4) fitted to disk
traces as its arrival model.
"""

from __future__ import annotations

import numpy as np

from repro.markov.generator import validate_generator
from repro.processes.map_process import MarkovianArrivalProcess

__all__ = ["MMPP"]


class MMPP(MarkovianArrivalProcess):
    """An MMPP defined by a modulating generator and per-phase arrival rates.

    Parameters
    ----------
    modulating_generator:
        Generator ``R`` of the environment CTMC (order ``A``).
    arrival_rates:
        Per-phase Poisson rates ``l_1 .. l_A`` (non-negative, at least one
        positive).
    """

    def __init__(self, modulating_generator: np.ndarray, arrival_rates: np.ndarray) -> None:
        r = validate_generator(modulating_generator)
        rates = np.asarray(arrival_rates, dtype=float)
        if rates.ndim != 1 or rates.shape[0] != r.shape[0]:
            raise ValueError(
                f"need one arrival rate per phase: got {rates.shape} rates for "
                f"order {r.shape[0]}"
            )
        if np.any(rates < 0):
            raise ValueError("arrival rates must be non-negative")
        d1 = np.diag(rates)
        d0 = r - d1
        super().__init__(d0, d1)
        self._modulating_generator = r
        self._arrival_rates = rates

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def two_state(cls, v1: float, v2: float, l1: float, l2: float) -> "MMPP":
        """The paper's 2-state parameterization (Eq. 4).

        ``v1`` is the rate from phase 1 to phase 2, ``v2`` from phase 2 to
        phase 1; ``l1``/``l2`` are the per-phase arrival rates, giving

        ``D0 = [[-(l1+v1), v1], [v2, -(l2+v2)]]``, ``D1 = diag(l1, l2)``.
        """
        for name, value in (("v1", v1), ("v2", v2)):
            if value <= 0:
                raise ValueError(f"{name} must be positive for an irreducible MMPP(2), got {value}")
        generator = np.array([[-v1, v1], [v2, -v2]], dtype=float)
        return cls(generator, np.array([l1, l2], dtype=float))

    @classmethod
    def from_map_matrices(cls, d0: np.ndarray, d1: np.ndarray) -> "MMPP":
        """Build an MMPP from MAP matrices, verifying ``D1`` is diagonal."""
        d1 = np.asarray(d1, dtype=float)
        if not np.allclose(d1, np.diag(np.diag(d1))):
            raise ValueError("D1 of an MMPP must be diagonal")
        d0 = np.asarray(d0, dtype=float)
        return cls(d0 + d1, np.diag(d1).copy())

    @classmethod
    def _from_matrices(cls, d0: np.ndarray, d1: np.ndarray) -> "MMPP":
        return cls.from_map_matrices(d0, d1)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def modulating_generator(self) -> np.ndarray:
        """Generator of the environment CTMC."""
        return self._modulating_generator

    @property
    def arrival_rates(self) -> np.ndarray:
        """Per-phase Poisson arrival rates."""
        return self._arrival_rates

    @property
    def parameters(self) -> dict[str, float]:
        """For 2-state MMPPs, the ``(v1, v2, l1, l2)`` of the paper's Eq. 4."""
        if self.order != 2:
            raise ValueError(f"parameters is defined for MMPP(2), this is MMPP({self.order})")
        return {
            "v1": float(self._modulating_generator[0, 1]),
            "v2": float(self._modulating_generator[1, 0]),
            "l1": float(self._arrival_rates[0]),
            "l2": float(self._arrival_rates[1]),
        }

    def __repr__(self) -> str:
        if self.order == 2:
            p = self.parameters
            return (
                f"MMPP.two_state(v1={p['v1']:.6g}, v2={p['v2']:.6g}, "
                f"l1={p['l1']:.6g}, l2={p['l2']:.6g})"
            )
        return super().__repr__()
