"""Moment- and autocorrelation-matching of arrival processes.

The paper parameterizes 2-state MMPPs by "a simple moment matching approach"
with one degree of freedom (paper Section 3.1).  This module implements:

* :func:`fit_h2_balanced` -- two-phase hyperexponential matched to a mean
  and an SCV >= 1 (balanced means).
* :func:`fit_ipp` -- interrupted Poisson process with the same renewal
  inter-arrival law (high variability, zero autocorrelation).
* :func:`fit_mmpp2_acf` -- 2-state MMPP matched to (rate, SCV, lag-1 ACF
  and ACF decay), via bounded least squares.
* :func:`fit_mmpp2_paper` -- the paper's scheme: ``l1`` is the free
  parameter, the remaining three parameters are solved to match rate, SCV
  and lag-1 ACF.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import least_squares

from repro.contracts.checks import check_generator, check_nonnegative
from repro.contracts.decorator import contracted
from repro.processes.ipp import InterruptedPoissonProcess
from repro.processes.mmpp import MMPP

__all__ = [
    "fit_h2_balanced",
    "fit_ipp",
    "fit_mmpp2",
    "fit_mmpp2_acf",
    "fit_mmpp2_from_trace",
    "fit_mmpp2_paper",
    "max_acf1_slow_switching",
]


def fit_h2_balanced(mean: float, scv: float) -> tuple[float, float, float]:
    """Fit a 2-phase hyperexponential with balanced means.

    Returns ``(p1, mu1, mu2)`` such that the mixture
    ``p1 Exp(mu1) + (1-p1) Exp(mu2)`` has the requested mean and SCV and
    satisfies the balanced-means condition ``p1/mu1 = (1-p1)/mu2``.

    Requires ``scv >= 1`` (strictly > 1 for a genuine 2-phase fit; ``scv == 1``
    degenerates to an exponential and raises).
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if scv <= 1:
        raise ValueError(
            f"a hyperexponential requires scv > 1, got {scv}; use an Erlang or "
            "exponential fit instead"
        )
    p1 = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
    mu1 = 2.0 * p1 / mean
    mu2 = 2.0 * (1.0 - p1) / mean
    return p1, mu1, mu2


def fit_ipp(mean: float, scv: float) -> InterruptedPoissonProcess:
    """IPP whose (renewal) inter-arrival times match ``(mean, scv)``.

    This is the paper's Section 5.4 comparator: same first two moments as a
    correlated workload but independent inter-arrival times.
    """
    p1, mu1, mu2 = fit_h2_balanced(mean, scv)
    return InterruptedPoissonProcess.from_hyperexponential(p1, mu1, mu2)


def _mmpp2_residuals(
    mmpp: MMPP, rate: float, scv: float, acf1: float, decay: float | None
) -> np.ndarray:
    acf = mmpp.acf(2)
    res = [
        mmpp.mean_rate / rate - 1.0,
        (mmpp.scv - scv) / max(scv, 1.0),
        acf[0] - acf1,
    ]
    if decay is not None:
        observed_decay = acf[1] / acf[0] if abs(acf[0]) > 1e-14 else 0.0
        res.append(observed_decay - decay)
    return np.asarray(res)


def max_acf1_slow_switching(scv: float, decay: float) -> float:
    """Approximate upper bound on the lag-1 ACF of an MMPP(2).

    In the slow-switching regime the inter-arrival sequence is a mixture of
    long exponential runs and its lag-1 autocorrelation approaches
    ``decay * (scv - 1) / (2 * scv)`` -- the between-phase share of the
    variance times the geometric decay factor.  Useful to pick *feasible*
    fitting targets.
    """
    if scv <= 1:
        return 0.0
    return decay * (scv - 1.0) / (2.0 * scv)


def _slow_switching_start(
    rate: float, scv: float, decay: float, p1: float
) -> tuple[float, float, float, float] | None:
    """Closed-form MMPP(2) whose descriptors approximate the targets.

    Construct a two-point mixture of exponential means with overall mean
    ``1/rate`` and between-group variance matching the target SCV, assign
    fraction ``p1`` of arrivals to the fast phase, then choose the total
    switching rate so the per-arrival phase-switch probability is
    ``1 - decay``.  Returns ``(v1, v2, l1, l2)`` or None when infeasible.
    """
    mean = 1.0 / rate
    between_var = (scv - 1.0) * mean**2 / 2.0
    p2 = 1.0 - p1
    m1 = mean - math.sqrt(between_var * p2 / p1)
    m2 = mean + math.sqrt(between_var * p1 / p2)
    if m1 <= 0:
        return None
    l1, l2 = 1.0 / m1, 1.0 / m2
    pi1 = p1 * rate * m1
    pi2 = p2 * rate * m2
    omega = (1.0 - decay) / (pi2 * m1 + pi1 * m2)
    v1, v2 = omega * pi2, omega * pi1
    return v1, v2, l1, l2


def _check_fitted_mmpp(result: MMPP, *args: object, **kwargs: object) -> None:
    """Postcondition of the MMPP fitters: the returned process must be a
    structurally valid MAP (generator phase process, non-negative D1)."""
    check_generator(result.generator, "fitted MMPP(2) D0+D1")
    check_nonnegative(result.d1, "fitted MMPP(2) D1")


@contracted(post=_check_fitted_mmpp)
def fit_mmpp2(
    rate: float,
    scv: float,
    decay: float,
    phase1_share: float | None = None,
    max_restarts: int = 16,
    tol: float = 1e-8,
) -> MMPP:
    """Fit a 2-state MMPP to a mean rate, an SCV and a geometric ACF decay.

    For an MMPP(2) the inter-arrival autocorrelation is geometric,
    ``ACF(k) = c * decay**k``, and at a fixed ``(scv, decay)`` the
    coefficient ``c`` is confined to a narrow band near
    ``(scv - 1) / (2 * scv)`` (see :func:`max_acf1_slow_switching`), so
    ``(rate, scv, decay)`` is the natural complete target set.  The leftover
    degree of freedom is fixed by ``phase1_share``, the fraction of arrivals
    produced in the fast phase.

    Parameters
    ----------
    rate:
        Target mean arrival rate (> 0).
    scv:
        Target squared coefficient of variation of inter-arrival times
        (> 1; an MMPP(2) cannot produce SCV <= 1).
    decay:
        Target ratio ``ACF(2)/ACF(1)`` in (0, 1); values close to 1 give the
        slowly decaying, strongly dependent E-mail-like processes.
    phase1_share:
        Fraction of arrivals attributed to the bursty phase.  Must exceed
        ``(scv - 1) / (scv + 1)`` for the two-point mixture behind the fit to
        exist; by default the midpoint of the feasible interval is used and
        the share is matched as a fourth residual.  Pass ``None`` explicitly
        to get the default.
    max_restarts:
        Number of restarts of the bounded least-squares search.
    tol:
        Maximum acceptable relative residual on each matched quantity.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if scv <= 1:
        raise ValueError(f"an MMPP(2) requires scv > 1, got {scv}")
    if not 0 < decay < 1:
        raise ValueError(f"decay must lie in (0, 1), got {decay}")
    min_share = (scv - 1.0) / (scv + 1.0)
    if phase1_share is None:
        phase1_share = (1.0 + min_share) / 2.0
    if not min_share < phase1_share < 1:
        raise ValueError(
            f"phase1_share must lie in ({min_share:.4f}, 1) for scv={scv}, "
            f"got {phase1_share}"
        )

    rng = np.random.default_rng(20060625)  # DSN 2006 -- deterministic fits

    def residuals(x: np.ndarray) -> np.ndarray:
        v1, v2, l1, l2 = np.exp(x) * rate
        try:
            mmpp = MMPP.two_state(v1, v2, l1, l2)
        except (ValueError, np.linalg.LinAlgError):
            return np.full(4, 1e3)
        acf = mmpp.acf(2)
        observed_decay = acf[1] / acf[0] if abs(acf[0]) > 1e-14 else 0.0
        pi1 = mmpp.phase_stationary[0]
        share = pi1 * l1 / mmpp.mean_rate
        return np.array(
            [
                mmpp.mean_rate / rate - 1.0,
                (mmpp.scv - scv) / max(scv, 1.0),
                observed_decay - decay,
                share - phase1_share,
            ]
        )

    starts: list[np.ndarray] = []
    guess = _slow_switching_start(rate, scv, decay, phase1_share)
    if guess is not None:
        starts.append(np.log(np.asarray(guess) / rate))
    for frac in (0.25, 0.5, 0.75, 0.9):
        p1 = min_share + frac * (1.0 - min_share)
        guess = _slow_switching_start(rate, scv, decay, p1)
        if guess is not None:
            starts.append(np.log(np.asarray(guess) / rate))
    while len(starts) < max_restarts:
        starts.append(rng.uniform(np.log(1e-6), np.log(1e2), size=4))

    best: MMPP | None = None
    best_cost = np.inf
    for x0 in starts:
        result = least_squares(
            residuals, x0, bounds=(np.log(1e-12), np.log(1e6)), xtol=1e-15, ftol=1e-15
        )
        cost = float(np.max(np.abs(result.fun)))
        if cost < best_cost:
            best_cost = cost
            v1, v2, l1, l2 = np.exp(result.x) * rate
            best = MMPP.two_state(v1, v2, l1, l2)
        if best_cost < tol:
            break
    if best is None or best_cost > 1e-4:
        raise ValueError(
            f"could not fit MMPP(2) to rate={rate}, scv={scv}, decay={decay}, "
            f"phase1_share={phase1_share}: best residual {best_cost:.3g}"
        )
    return best


def fit_mmpp2_acf(
    rate: float,
    scv: float,
    acf1: float,
    decay: float = 0.99,
    acf1_tolerance: float = 0.05,
) -> MMPP:
    """Fit a 2-state MMPP to a mean rate, SCV, lag-1 ACF and ACF decay.

    An MMPP(2) cannot choose its lag-1 ACF freely once ``(scv, decay)`` are
    fixed: the coefficient of its geometric ACF lives in a narrow band near
    ``(scv - 1) / (2 scv)``.  This convenience wrapper fits via
    :func:`fit_mmpp2` and verifies that the achieved lag-1 ACF is within
    ``acf1_tolerance`` (relative) of the requested ``acf1``, raising
    otherwise with the implied feasible value.

    Raises
    ------
    ValueError
        If ``acf1`` is not attainable for the requested ``(scv, decay)``.
    """
    if not 0 < acf1 < 0.5:
        raise ValueError(f"lag-1 ACF of an MMPP(2) must lie in (0, 0.5), got {acf1}")
    mmpp = fit_mmpp2(rate, scv, decay)
    achieved = mmpp.acf_at(1)
    if abs(achieved - acf1) > acf1_tolerance * max(acf1, 1e-12):
        raise ValueError(
            f"an MMPP(2) with scv={scv} and decay={decay} has lag-1 ACF "
            f"~{achieved:.4f} (the feasible band is pinned near "
            f"{max_acf1_slow_switching(scv, decay):.4f}); the requested "
            f"acf1={acf1} is out of reach. Adjust scv or decay: "
            f"acf1 ~ decay * (scv - 1) / (2 * scv)."
        )
    return mmpp


def fit_mmpp2_paper(
    rate: float,
    scv: float,
    acf1: float,
    l1: float,
    max_restarts: int = 16,
) -> MMPP:
    """The paper's moment-matching scheme with ``l1`` as the free parameter.

    Solves for ``(v1, v2, l2)`` so that the resulting MMPP(2) matches the
    target mean rate, SCV and lag-1 ACF; ``l1`` (the high arrival rate of
    the bursty phase) is supplied by the caller, exactly as in the paper
    where it is "adjusted to let the analytic model have the same mean
    response time as the real system".
    """
    if l1 <= rate:
        raise ValueError(
            f"the bursty-phase rate l1 ({l1}) must exceed the mean rate ({rate})"
        )
    if scv <= 1:
        raise ValueError(f"an MMPP(2) requires scv > 1, got {scv}")
    rng = np.random.default_rng(1251)  # 1251 Waterfront Place

    def residuals(x: np.ndarray) -> np.ndarray:
        v1, v2, l2 = np.exp(x) * rate
        try:
            mmpp = MMPP.two_state(v1, v2, l1, l2)
            return _mmpp2_residuals(mmpp, rate, scv, acf1, None)
        except (ValueError, np.linalg.LinAlgError):
            return np.full(3, 1e3)

    best_x: np.ndarray | None = None
    best_cost = np.inf
    for attempt in range(max_restarts):
        if attempt == 0:
            x0 = np.log(np.array([1e-3, 1e-3, 0.5]))
        else:
            x0 = rng.uniform(np.log(1e-6), np.log(1e1), size=3)
        result = least_squares(
            residuals, x0, bounds=(np.log(1e-9), np.log(1e5)), xtol=1e-14, ftol=1e-14
        )
        cost = float(np.max(np.abs(result.fun)))
        if cost < best_cost:
            best_cost = cost
            best_x = result.x
        if best_cost < 1e-8:
            break
    if best_x is None or best_cost > 1e-4:
        raise ValueError(
            f"could not fit MMPP(2) with fixed l1={l1} to rate={rate}, "
            f"scv={scv}, acf1={acf1}: best residual {best_cost:.3g}"
        )
    v1, v2, l2 = np.exp(best_x) * rate
    return MMPP.two_state(v1, v2, l1, l2)


def fit_mmpp2_from_trace(
    interarrivals: np.ndarray,
    decay_lags: int = 10,
    min_acf1: float = 0.005,
) -> MMPP:
    """Fit a 2-state MMPP to a measured inter-arrival trace.

    The paper's workflow (Figures 1 -> 2) end to end: estimate the mean
    rate, the SCV and the geometric ACF decay from the sample, then match
    them with :func:`fit_mmpp2`.  The decay factor is estimated by a
    least-squares line through ``log ACF(k)`` over the first ``decay_lags``
    positive-ACF lags, which is robust to the noise of individual lag
    estimates.

    Parameters
    ----------
    interarrivals:
        1-D sample of inter-arrival times (a few thousand at minimum for a
        usable ACF estimate).
    decay_lags:
        Number of leading lags used for the decay regression.
    min_acf1:
        Below this estimated lag-1 ACF the sample is treated as
        uncorrelated and a ValueError suggests :func:`fit_ipp` (or a
        Poisson process) instead.

    Raises
    ------
    ValueError
        If the sample is too short, effectively uncorrelated, or has
        SCV <= 1 (no MMPP(2) exists).
    """
    from repro.processes.statistics import autocorrelation

    x = np.asarray(interarrivals, dtype=float)
    if x.ndim != 1 or x.shape[0] < 10 * decay_lags:
        raise ValueError(
            f"need a 1-D trace of at least {10 * decay_lags} inter-arrivals, "
            f"got shape {x.shape}"
        )
    mean = float(x.mean())
    if mean <= 0:
        raise ValueError("inter-arrival times must have a positive mean")
    scv = float(x.var() / mean**2)
    if scv <= 1.0:
        raise ValueError(
            f"sample SCV {scv:.3f} <= 1: an MMPP(2) cannot match it; fit a "
            "(shifted) Erlang renewal process instead"
        )
    acf = autocorrelation(x, decay_lags)
    if acf[0] < min_acf1:
        raise ValueError(
            f"sample lag-1 ACF {acf[0]:.4f} is below {min_acf1}: the trace "
            "looks uncorrelated; use fit_ipp(mean, scv) or a Poisson process"
        )
    usable = acf > 0
    k_max = int(np.argmin(usable)) if not usable.all() else decay_lags
    if k_max < 2:
        raise ValueError("ACF turns non-positive at lag 2; cannot estimate decay")
    lags = np.arange(1, k_max + 1)
    slope, _ = np.polyfit(lags, np.log(acf[:k_max]), deg=1)
    decay = float(np.exp(slope))
    decay = min(max(decay, 1e-3), 1.0 - 1e-6)
    return fit_mmpp2(rate=1.0 / mean, scv=scv, decay=decay)
