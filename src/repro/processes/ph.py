"""Continuous phase-type (PH) distributions.

A PH distribution is the absorption time of a CTMC with transient generator
``T`` started from distribution ``alpha``.  The library uses PH distributions
for service and idle-wait processes (the paper's footnote 3 notes that the
model lifts to MAP/PH service via Kronecker products) and as analytic forms
for the simulator's random variates.
"""

from __future__ import annotations

import math
from functools import cached_property

import numpy as np
from scipy.linalg import expm

__all__ = ["PhaseType"]


class PhaseType:
    """Phase-type distribution ``PH(alpha, T)``.

    Parameters
    ----------
    alpha:
        Initial probability vector over the transient phases.  Mass may be
        deliberately sub-stochastic only by a point mass at zero, which this
        implementation disallows: ``alpha`` must sum to 1.
    t:
        Transient generator; row sums must be non-positive with at least one
        strictly negative exit path so absorption is certain.
    """

    def __init__(self, alpha: np.ndarray, t: np.ndarray) -> None:
        alpha = np.asarray(alpha, dtype=float)
        t = np.asarray(t, dtype=float)
        if t.ndim != 2 or t.shape[0] != t.shape[1]:
            raise ValueError(f"T must be square, got shape {t.shape}")
        if alpha.shape != (t.shape[0],):
            raise ValueError(
                f"alpha has shape {alpha.shape}, expected ({t.shape[0]},)"
            )
        if np.any(alpha < 0) or not math.isclose(alpha.sum(), 1.0, abs_tol=1e-9):
            raise ValueError("alpha must be a probability vector")
        off = t - np.diag(np.diag(t))
        if np.any(off < 0):
            raise ValueError("off-diagonal entries of T must be non-negative")
        exit_rates = -t.sum(axis=1)
        if np.any(exit_rates < -1e-9):
            raise ValueError("row sums of T must be non-positive")
        # Absorption must be certain: T must be invertible (all eigenvalues
        # in the open left half-plane).
        if np.linalg.matrix_rank(t) < t.shape[0]:
            raise ValueError("T is singular: absorption is not certain")
        self._alpha = alpha
        self._alpha.setflags(write=False)
        self._t = t
        self._t.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors for classical families
    # ------------------------------------------------------------------
    @classmethod
    def exponential(cls, rate: float) -> "PhaseType":
        """Exponential distribution with the given rate."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return cls(np.array([1.0]), np.array([[-rate]]))

    @classmethod
    def erlang(cls, stages: int, rate: float) -> "PhaseType":
        """Erlang-``stages`` distribution; each stage has the given rate."""
        if stages < 1:
            raise ValueError(f"stages must be >= 1, got {stages}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        t = -rate * np.eye(stages)
        for i in range(stages - 1):
            t[i, i + 1] = rate
        alpha = np.zeros(stages)
        alpha[0] = 1.0
        return cls(alpha, t)

    @classmethod
    def hyperexponential(cls, probabilities: np.ndarray, rates: np.ndarray) -> "PhaseType":
        """Mixture of exponentials ``sum_i p_i Exp(mu_i)``."""
        p = np.asarray(probabilities, dtype=float)
        mu = np.asarray(rates, dtype=float)
        if p.shape != mu.shape or p.ndim != 1:
            raise ValueError("probabilities and rates must be 1-D with equal length")
        if np.any(mu <= 0):
            raise ValueError("rates must be positive")
        if np.any(p < 0) or not math.isclose(p.sum(), 1.0, abs_tol=1e-9):
            raise ValueError("probabilities must form a probability vector")
        return cls(p, -np.diag(mu))

    @classmethod
    def h2_balanced(cls, mean: float, scv: float) -> "PhaseType":
        """Two-phase hyperexponential with balanced means matching
        ``(mean, scv)``; requires ``scv >= 1``."""
        from repro.processes.fitting import fit_h2_balanced

        p1, mu1, mu2 = fit_h2_balanced(mean, scv)
        return cls.hyperexponential(np.array([p1, 1 - p1]), np.array([mu1, mu2]))

    # ------------------------------------------------------------------
    # Descriptors
    # ------------------------------------------------------------------
    @property
    def alpha(self) -> np.ndarray:
        """Initial phase distribution."""
        return self._alpha

    @property
    def t(self) -> np.ndarray:
        """Transient generator."""
        return self._t

    @property
    def order(self) -> int:
        """Number of transient phases."""
        return self._t.shape[0]

    @cached_property
    def exit_vector(self) -> np.ndarray:
        """Absorption rates ``t0 = -T e``."""
        return -self._t.sum(axis=1)

    @cached_property
    def _inv_neg_t(self) -> np.ndarray:
        return np.linalg.inv(-self._t)

    def moment(self, n: int) -> float:
        """n-th raw moment: ``E[X^n] = n! alpha (-T)^{-n} e``."""
        if n < 1:
            raise ValueError(f"moment order must be >= 1, got {n}")
        vec = np.ones(self.order)
        for _ in range(n):
            vec = self._inv_neg_t @ vec
        return float(math.factorial(n) * self._alpha @ vec)

    @cached_property
    def mean(self) -> float:
        """Expected value."""
        return self.moment(1)

    @cached_property
    def variance(self) -> float:
        """Variance."""
        return self.moment(2) - self.mean**2

    @property
    def scv(self) -> float:
        """Squared coefficient of variation."""
        return self.variance / self.mean**2

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Cumulative distribution function ``1 - alpha exp(Tx) e``."""
        scalar = np.isscalar(x)
        xs = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.empty_like(xs)
        for i, xi in enumerate(xs):
            if xi <= 0:
                out[i] = 0.0
            else:
                out[i] = 1.0 - float(self._alpha @ expm(self._t * xi) @ np.ones(self.order))
        return float(out[0]) if scalar else out

    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Probability density ``alpha exp(Tx) t0``."""
        scalar = np.isscalar(x)
        xs = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.empty_like(xs)
        for i, xi in enumerate(xs):
            if xi < 0:
                out[i] = 0.0
            else:
                out[i] = float(self._alpha @ expm(self._t * xi) @ self.exit_vector)
        return float(out[0]) if scalar else out

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` variates by simulating the absorbing chain."""
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        exit_rates = self.exit_vector
        total_rates = -np.diag(self._t)
        # Per-phase jump distribution over (next phases..., absorb).
        jump_probs = np.empty((self.order, self.order + 1))
        for i in range(self.order):
            row = self._t[i].copy()
            row[i] = 0.0
            jump_probs[i, : self.order] = row / total_rates[i]
            jump_probs[i, self.order] = exit_rates[i] / total_rates[i]
        out = np.empty(size)
        for k in range(size):
            phase = int(rng.choice(self.order, p=self._alpha))
            elapsed = 0.0
            while phase != self.order:
                elapsed += rng.exponential(1.0 / total_rates[phase])
                phase = int(rng.choice(self.order + 1, p=jump_probs[phase]))
            out[k] = elapsed
        return out

    def __repr__(self) -> str:
        return f"PhaseType(order={self.order}, mean={self.mean:.6g}, scv={self.scv:.4g})"
