"""Markovian Arrival Processes (MAPs).

A MAP of order ``A`` is described by two ``A x A`` matrices ``(D0, D1)``:
``D0`` holds the transition rates that do *not* produce an arrival (its
diagonal is negative and makes ``D0 + D1`` a proper CTMC generator), while
``D1`` holds the rates of transitions that produce one arrival.  MMPPs,
Poisson processes and interrupted Poisson processes are all special cases.

The closed-form descriptors implemented here (mean rate, squared coefficient
of variation and lag-k autocorrelation of the inter-arrival times) follow the
standard matrix-analytic formulas, e.g. Neuts (1989) and the paper's
Eqs. (1)-(3).
"""

from __future__ import annotations

import math
from functools import cached_property

import numpy as np

from repro.markov.generator import validate_generator
from repro.markov.stationary import stationary_distribution

__all__ = ["MarkovianArrivalProcess"]


def _freeze(*arrays: np.ndarray) -> None:
    """Make every array read-only before a construction certificate.

    Must stay unconditional and directly called: reprolint's freeze
    oracle (RL002/RL006) recognizes one level of same-module helpers,
    no deeper and never behind a data-dependent branch.
    """
    for array in arrays:
        array.setflags(write=False)


class MarkovianArrivalProcess:
    """A Markovian Arrival Process characterised by matrices ``(D0, D1)``.

    Parameters
    ----------
    d0:
        Square matrix of phase transitions without arrivals.  Off-diagonal
        entries must be non-negative; diagonal entries must be negative
        enough that ``D0 + D1`` has zero row sums.
    d1:
        Square matrix (same order) of phase transitions that produce an
        arrival.  All entries must be non-negative.

    Raises
    ------
    ValueError
        If the matrices do not describe a valid, irreducible MAP.
    """

    def __init__(self, d0: np.ndarray, d1: np.ndarray) -> None:
        d0 = np.asarray(d0, dtype=float)
        d1 = np.asarray(d1, dtype=float)
        if d0.ndim != 2 or d0.shape[0] != d0.shape[1]:
            raise ValueError(f"D0 must be square, got shape {d0.shape}")
        if d1.shape != d0.shape:
            raise ValueError(
                f"D0 and D1 must have the same shape, got {d0.shape} and {d1.shape}"
            )
        if np.any(d1 < 0):
            raise ValueError("D1 must be entrywise non-negative")
        off_diag = d0 - np.diag(np.diag(d0))
        if np.any(off_diag < 0):
            raise ValueError("off-diagonal entries of D0 must be non-negative")
        validate_generator(d0 + d1)
        if np.all(d1 == 0):
            raise ValueError("D1 is identically zero: the process never produces arrivals")
        _freeze(d0, d1)
        self._d0 = d0
        self._d1 = d1
        #: Construction certificate consumed by the contract layer: D0+D1
        #: passed validate_generator above and both matrices are frozen,
        #: so downstream models need not re-validate the phase process.
        self._generator_validated = True

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def d0(self) -> np.ndarray:
        """Phase-transition matrix without arrivals."""
        return self._d0

    @property
    def d1(self) -> np.ndarray:
        """Phase-transition matrix with arrivals."""
        return self._d1

    @property
    def order(self) -> int:
        """Number of phases of the underlying Markov chain."""
        return self._d0.shape[0]

    @cached_property
    def generator(self) -> np.ndarray:
        """Generator ``D0 + D1`` of the phase process."""
        return self._d0 + self._d1

    @cached_property
    def phase_stationary(self) -> np.ndarray:
        """Stationary distribution ``pi`` of the phase process (time average)."""
        return stationary_distribution(self.generator)

    @cached_property
    def mean_rate(self) -> float:
        """Long-run arrival rate ``lambda = pi D1 e`` (paper Eq. 1)."""
        return float(self.phase_stationary @ self._d1 @ np.ones(self.order))

    @cached_property
    def _inv_neg_d0(self) -> np.ndarray:
        """``(-D0)^{-1}``, the expected sojourn matrix between arrivals."""
        return np.linalg.inv(-self._d0)

    @cached_property
    def embedded_transition(self) -> np.ndarray:
        """Transition matrix ``P = (-D0)^{-1} D1`` of the phase chain embedded
        at arrival epochs."""
        return self._inv_neg_d0 @ self._d1

    @cached_property
    def embedded_stationary(self) -> np.ndarray:
        """Stationary phase distribution just after an arrival.

        Equals ``pi D1 / lambda`` and is the left Perron vector of
        :attr:`embedded_transition`.
        """
        return self.phase_stationary @ self._d1 / self.mean_rate

    # ------------------------------------------------------------------
    # Inter-arrival time descriptors
    # ------------------------------------------------------------------
    def interarrival_moment(self, n: int) -> float:
        """Return the n-th moment of the stationary inter-arrival time.

        ``E[X^n] = n! * pi_e (-D0)^{-n} e``.
        """
        if n < 1:
            raise ValueError(f"moment order must be >= 1, got {n}")
        vec = np.ones(self.order)
        for _ in range(n):
            vec = self._inv_neg_d0 @ vec
        return float(math.factorial(n) * self.embedded_stationary @ vec)

    @cached_property
    def mean_interarrival(self) -> float:
        """Mean inter-arrival time (equals ``1 / mean_rate``)."""
        return self.interarrival_moment(1)

    @cached_property
    def scv(self) -> float:
        """Squared coefficient of variation of inter-arrival times (Eq. 2)."""
        m1 = self.interarrival_moment(1)
        m2 = self.interarrival_moment(2)
        return m2 / m1**2 - 1.0

    @property
    def cv(self) -> float:
        """Coefficient of variation of inter-arrival times."""
        return float(np.sqrt(self.scv))

    def acf(self, lags: int) -> np.ndarray:
        """Lag-k autocorrelation of inter-arrival times for k = 1..lags.

        Implements the paper's Eq. (3) with the embedded (arrival-epoch)
        stationary vector: ``ACF(k) = (E[X_0 X_k] - E[X]^2) / Var[X]`` with
        ``E[X_0 X_k] = pi_e M P^k M e`` and ``M = (-D0)^{-1}``.
        """
        if lags < 1:
            raise ValueError(f"lags must be >= 1, got {lags}")
        m = self._inv_neg_d0
        p = self.embedded_transition
        pi_e = self.embedded_stationary
        mean = self.interarrival_moment(1)
        var = self.interarrival_moment(2) - mean**2
        if var <= 0:
            # Deterministic inter-arrivals cannot happen for a MAP, but a
            # Poisson process has var > 0 always; guard division anyway.
            return np.zeros(lags)
        ones = np.ones(self.order)
        out = np.empty(lags)
        # Iteratively apply P to (M e) to avoid forming P^k explicitly.
        vec = m @ ones
        for k in range(1, lags + 1):
            vec = p @ vec
            joint = float(pi_e @ m @ vec)
            out[k - 1] = (joint - mean**2) / var
        return out

    def acf_at(self, lag: int) -> float:
        """Lag-``lag`` autocorrelation of inter-arrival times."""
        return float(self.acf(lag)[-1])

    @cached_property
    def is_renewal(self) -> bool:
        """True when inter-arrival times are independent (ACF identically 0).

        A MAP is a renewal process iff the embedded phase distribution after
        an arrival does not depend on the pre-arrival phase, i.e. every row
        of ``P = (-D0)^{-1} D1`` equals the embedded stationary vector.
        """
        p = self.embedded_transition
        return bool(np.allclose(p, np.tile(self.embedded_stationary, (self.order, 1)), atol=1e-12))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def scaled_by(self, factor: float) -> "MarkovianArrivalProcess":
        """Return a time-rescaled copy whose mean rate is multiplied by
        ``factor``.

        Both matrices are multiplied by ``factor``; the CV and the lag-k ACF
        are invariant under this transformation, which is exactly how the
        paper sweeps foreground load while keeping the dependence structure
        fixed.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return type(self)._from_matrices(self._d0 * factor, self._d1 * factor)

    def scaled_to_rate(self, rate: float) -> "MarkovianArrivalProcess":
        """Return a copy rescaled to the given mean arrival rate."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self.scaled_by(rate / self.mean_rate)

    def scaled_to_utilization(
        self, utilization: float, service_rate: float
    ) -> "MarkovianArrivalProcess":
        """Return a copy rescaled so that ``lambda / service_rate`` equals
        ``utilization``."""
        if not 0 < utilization:
            raise ValueError(f"utilization must be positive, got {utilization}")
        if service_rate <= 0:
            raise ValueError(f"service_rate must be positive, got {service_rate}")
        return self.scaled_to_rate(utilization * service_rate)

    @classmethod
    def _from_matrices(cls, d0: np.ndarray, d1: np.ndarray) -> "MarkovianArrivalProcess":
        """Construct bypassing subclass-specific constructors.

        Subclasses with richer constructors (e.g. :class:`MMPP`) override
        this so that scaling preserves their type where possible.
        """
        return MarkovianArrivalProcess(d0, d1)

    def superpose(self, other: "MarkovianArrivalProcess") -> "MarkovianArrivalProcess":
        """Superposition of two independent MAPs (Kronecker-sum construction)."""
        ia = np.eye(self.order)
        ib = np.eye(other.order)
        d0 = np.kron(self._d0, ib) + np.kron(ia, other._d0)
        d1 = np.kron(self._d1, ib) + np.kron(ia, other._d1)
        return MarkovianArrivalProcess(d0, d1)

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(order={self.order}, rate={self.mean_rate:.6g}, "
            f"scv={self.scv:.4g})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MarkovianArrivalProcess):
            return NotImplemented
        return np.array_equal(self._d0, other._d0) and np.array_equal(self._d1, other._d1)

    def __hash__(self) -> int:
        return hash((self._d0.tobytes(), self._d1.tobytes()))
