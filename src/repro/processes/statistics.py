"""Empirical descriptors of time series: ACF, CV, summary.

These estimators implement the paper's Section 3.1 definitions and are used
to characterise synthetic traces (Figure 1) and to verify generated sample
paths against the closed-form MAP descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["autocorrelation", "coefficient_of_variation", "describe_sample", "SampleSummary"]


def autocorrelation(x: np.ndarray, lags: int) -> np.ndarray:
    """Sample autocorrelation function at lags ``1..lags``.

    Uses the standard biased estimator
    ``rho(k) = sum_t (x_t - m)(x_{t+k} - m) / sum_t (x_t - m)^2``,
    which guarantees ``|rho(k)| <= 1``.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {x.shape}")
    n = x.shape[0]
    if lags < 1:
        raise ValueError(f"lags must be >= 1, got {lags}")
    if n < 2:
        raise ValueError(f"need at least 2 observations, got {n}")
    if lags >= n:
        raise ValueError(f"lags ({lags}) must be smaller than the series length ({n})")
    centered = x - x.mean()
    denom = float(centered @ centered)
    if denom == 0.0:
        # Constant series: define ACF as zero.
        return np.zeros(lags)
    # FFT-based computation of all lags at once: O(n log n).
    size = int(2 ** np.ceil(np.log2(2 * n - 1)))
    f = np.fft.rfft(centered, size)
    acov = np.fft.irfft(f * np.conj(f), size)[: lags + 1].real
    return acov[1 : lags + 1] / denom


def coefficient_of_variation(x: np.ndarray) -> float:
    """Sample coefficient of variation ``std / mean`` (population std)."""
    x = np.asarray(x, dtype=float)
    if x.ndim != 1 or x.shape[0] < 2:
        raise ValueError("need a 1-D series with at least 2 observations")
    mean = float(x.mean())
    if mean == 0.0:
        raise ValueError("coefficient of variation is undefined for zero-mean series")
    return float(x.std() / mean)


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of a sample, mirroring the paper's Figure 1 table."""

    count: int
    mean: float
    cv: float
    acf: np.ndarray

    @property
    def scv(self) -> float:
        """Squared coefficient of variation."""
        return self.cv**2


def describe_sample(x: np.ndarray, lags: int = 100) -> SampleSummary:
    """Compute the count/mean/CV/ACF summary of a sample."""
    x = np.asarray(x, dtype=float)
    lags = min(lags, x.shape[0] - 1)
    return SampleSummary(
        count=int(x.shape[0]),
        mean=float(x.mean()),
        cv=coefficient_of_variation(x),
        acf=autocorrelation(x, lags),
    )
