"""Counting-process descriptors of MAPs.

Where :mod:`repro.processes.map_process` describes the *inter-arrival*
process (CV, lag-k ACF), this module describes the *counting* process
``N(t)``: its variance-time curve and the index of dispersion for counts
(IDC), the burstiness metric used throughout the storage-workload
literature the paper builds on (Gribble et al.; Riska & Riedel).

With ``Q = D0 + D1``, stationary ``pi``, rate ``lambda = pi D1 e`` and the
deviation matrix ``D`` of ``Q``:

``Var[N(t)] = lambda t + 2 t pi D1 D D1 e
              - 2 pi D1 (I - e^{Qt}) D^2 D1 e``

``IDC(t) = Var[N(t)] / (lambda t)``, with limit
``1 + 2 pi D1 D D1 e / lambda``.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import expm

from repro.markov.deviation import deviation_matrix
from repro.processes.map_process import MarkovianArrivalProcess

__all__ = [
    "counting_mean",
    "counting_variance",
    "index_of_dispersion",
    "idc_limit",
    "empirical_idc",
]


def counting_mean(process: MarkovianArrivalProcess, t: float) -> float:
    """``E[N(t)] = lambda t`` for the stationary MAP."""
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    return process.mean_rate * t


def counting_variance(process: MarkovianArrivalProcess, t: float) -> float:
    """Exact ``Var[N(t)]`` of the stationary MAP."""
    if t < 0:
        raise ValueError(f"t must be non-negative, got {t}")
    if t == 0:
        return 0.0
    pi = process.phase_stationary
    d1 = process.d1
    q = process.generator
    dev = deviation_matrix(q)
    e = np.ones(process.order)
    lam = process.mean_rate
    linear = lam * t + 2.0 * t * float(pi @ d1 @ dev @ d1 @ e)
    transient = 2.0 * float(
        pi @ d1 @ (np.eye(process.order) - expm(q * t)) @ dev @ dev @ d1 @ e
    )
    return linear - transient


def index_of_dispersion(
    process: MarkovianArrivalProcess, t: np.ndarray | float
) -> np.ndarray | float:
    """IDC(t) = Var[N(t)] / E[N(t)] at one or many time points."""
    scalar = np.isscalar(t)
    ts = np.atleast_1d(np.asarray(t, dtype=float))
    if np.any(ts <= 0):
        raise ValueError("IDC is defined for t > 0")
    out = np.array(
        [counting_variance(process, ti) / counting_mean(process, ti) for ti in ts]
    )
    return float(out[0]) if scalar else out


def idc_limit(process: MarkovianArrivalProcess) -> float:
    """Asymptotic index of dispersion ``lim_{t->inf} IDC(t)``.

    Equals 1 for a Poisson process and grows with the strength and
    persistence of the modulation.
    """
    pi = process.phase_stationary
    d1 = process.d1
    dev = deviation_matrix(process.generator)
    e = np.ones(process.order)
    return 1.0 + 2.0 * float(pi @ d1 @ dev @ d1 @ e) / process.mean_rate


def empirical_idc(arrival_times: np.ndarray, window: float) -> float:
    """IDC estimate from an arrival-time sample at one window size.

    Splits the observation period into windows of the given length and
    returns the variance-to-mean ratio of the per-window counts.
    """
    times = np.asarray(arrival_times, dtype=float)
    if times.ndim != 1 or times.shape[0] < 2:
        raise ValueError("need a 1-D array of at least 2 arrival times")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    horizon = times[-1]
    bins = int(horizon // window)
    if bins < 2:
        raise ValueError(
            f"window {window} leaves fewer than 2 complete windows in "
            f"horizon {horizon}"
        )
    counts, _ = np.histogram(times, bins=bins, range=(0.0, bins * window))
    mean = counts.mean()
    if mean == 0:
        raise ValueError("no arrivals fall inside the windows")
    return float(counts.var() / mean)
