"""repro -- performability analysis of systems with background jobs.

A from-scratch reproduction of Zhang, Riska, Mi, Riedel, Smirni,
*Evaluating the Performability of Systems with Background Jobs* (DSN 2006):
an analytic Quasi-Birth-Death model of a storage system that serves
foreground user requests and best-effort background jobs (e.g. WRITE
verification), plus every substrate it needs -- Markovian arrival processes,
a matrix-geometric QBD solver, a discrete-event simulator, vacation-model
baselines, and a harness regenerating every figure of the paper.

Quickstart::

    from repro import FgBgModel, workloads

    model = FgBgModel(
        arrival=workloads.email().scaled_to_utilization(0.3, service_rate=1 / 6.0),
        service_rate=1 / 6.0,
        bg_probability=0.3,
    )
    solution = model.solve()
    print(solution.fg_queue_length, solution.bg_completion_rate)
"""

from repro._version import __version__

__all__ = ["__version__"]


def __getattr__(name):  # pragma: no cover - thin lazy-import shim
    """Lazily expose the public API without importing heavy modules eagerly."""
    import importlib

    top_level = {
        "ContractViolation": ("repro.contracts", "ContractViolation"),
        "FgBgModel": ("repro.core.model", "FgBgModel"),
        "FgBgSolution": ("repro.core.result", "FgBgSolution"),
        "MarkovianArrivalProcess": ("repro.processes", "MarkovianArrivalProcess"),
        "MMPP": ("repro.processes", "MMPP"),
        "PoissonProcess": ("repro.processes", "PoissonProcess"),
        "InterruptedPoissonProcess": ("repro.processes", "InterruptedPoissonProcess"),
        "PhaseType": ("repro.processes", "PhaseType"),
        "FgBgSimulator": ("repro.sim.fgbg", "FgBgSimulator"),
    }
    if name in top_level:
        module_name, attr = top_level[name]
        return getattr(importlib.import_module(module_name), attr)
    subpackages = {
        "processes",
        "markov",
        "qbd",
        "core",
        "contracts",
        "engine",
        "faults",
        "jobs",
        "sim",
        "vacation",
        "workloads",
        "experiments",
    }
    if name in subpackages:
        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
