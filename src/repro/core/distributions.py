"""Stationary queue-length distributions of the FG/BG model.

The paper reports only means; the matrix-geometric solution actually yields
the complete stationary distribution, from which tail probabilities and
percentiles follow.  A state holds ``y`` foreground jobs; in the repeating
portion ``y = level - x``, so ``P(N_FG = k)`` collects, for each background
count ``x``, the mass of physical level ``k + x`` in group ``x``.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.result import FgBgSolution
from repro.core.states import StateSpace
from repro.qbd.stationary import QBDStationaryDistribution

__all__ = [
    "fg_queue_length_pmf",
    "bg_queue_length_pmf",
    "fg_queue_length_quantile",
]


def _space_of(qbd_solution: QBDStationaryDistribution) -> StateSpace:
    """Reconstruct the state space from the QBD dimensions.

    The boundary has ``(X+1)^2 * A`` states and a repeating level
    ``(2X+1) * A``; the pair determines ``(X, A)`` uniquely.
    """
    n_b = qbd_solution.qbd.boundary_size
    m = qbd_solution.qbd.phase_count
    for x in range(0, 4096):
        if (x + 1) ** 2 * m == (2 * x + 1) * n_b:
            phases = m // (2 * x + 1)
            if phases >= 1 and (2 * x + 1) * phases == m:
                return StateSpace(x, phases)
    raise ValueError(
        f"cannot infer (bg_buffer, phases) from boundary={n_b}, level={m}; "
        "was this solution produced by FgBgModel?"
    )


def _boundary_mass_by_fg(
    qbd_solution: QBDStationaryDistribution, space: StateSpace
) -> dict[int, float]:
    a = space.phases
    pi_b = qbd_solution.boundary
    out: dict[int, float] = {}
    for i, g in enumerate(space.boundary_groups):
        out[g.fg] = out.get(g.fg, 0.0) + float(pi_b[i * a : (i + 1) * a].sum())
    return out


def _fg_mass_iter(
    qbd_solution: QBDStationaryDistribution, space: StateSpace
) -> Iterator[float]:
    """Yield ``P(N_FG = k)`` for k = 0, 1, 2, ...

    Repeating levels are generated incrementally (``pi_{k+1} = pi_k R``) and
    per-group masses are re-binned by foreground count.
    """
    a = space.phases
    x_max = space.bg_buffer
    boundary_by_y = _boundary_mass_by_fg(qbd_solution, space)
    r = qbd_solution.r

    # group_mass[j][group] = mass of repeating level j in that group; built
    # lazily as higher levels are needed.
    levels: list[np.ndarray] = [qbd_solution.level(1)]

    def group_mass(level_index: int, group_index: int) -> float:
        while len(levels) < level_index:
            levels.append(levels[-1] @ r)
        vec = levels[level_index - 1]
        return float(vec[group_index * a : (group_index + 1) * a].sum())

    k = 0
    while True:
        mass = boundary_by_y.get(k, 0.0)
        for g in space.repeating_groups:
            k_rep = k + g.bg - x_max
            if k_rep < 1:
                continue
            i = space.repeating_group_index(g.kind, g.bg)
            mass += group_mass(k_rep, i)
        yield mass
        k += 1


def fg_queue_length_pmf(solution: FgBgSolution, n: int) -> np.ndarray:
    """``P(N_FG = 0..n)`` -- the foreground queue-length distribution.

    Parameters
    ----------
    solution:
        A solved :class:`~repro.core.result.FgBgSolution`.
    n:
        Largest queue length to evaluate.  The returned vector sums to at
        most 1; the missing mass is ``P(N_FG > n)``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    qbd_solution = solution.qbd_solution
    space = _space_of(qbd_solution)
    it = _fg_mass_iter(qbd_solution, space)
    return np.array([next(it) for _ in range(n + 1)])


def bg_queue_length_pmf(solution: FgBgSolution) -> np.ndarray:
    """``P(N_BG = 0..X)`` -- the background queue-length distribution.

    Exact: the background count is bounded by the buffer, and the
    repeating-portion mass per group is available in closed form.
    """
    qbd_solution = solution.qbd_solution
    space = _space_of(qbd_solution)
    a = space.phases
    out = np.zeros(space.bg_buffer + 1)
    pi_b = qbd_solution.boundary
    for i, g in enumerate(space.boundary_groups):
        out[g.bg] += float(pi_b[i * a : (i + 1) * a].sum())
    rep_mass = qbd_solution.repeating_mass
    for g in space.repeating_groups:
        i = space.repeating_group_index(g.kind, g.bg)
        out[g.bg] += float(rep_mass[i * a : (i + 1) * a].sum())
    return out


def fg_queue_length_quantile(
    solution: FgBgSolution, q: float, n_max: int = 100_000
) -> int:
    """Smallest ``k`` with ``P(N_FG <= k) >= q``.

    Parameters
    ----------
    q:
        Quantile level in (0, 1).
    n_max:
        Safety cap on the search (heavy-tailed regimes near saturation).
    """
    if not 0 < q < 1:
        raise ValueError(f"q must lie in (0, 1), got {q}")
    qbd_solution = solution.qbd_solution
    space = _space_of(qbd_solution)
    cumulative = 0.0
    it = _fg_mass_iter(qbd_solution, space)
    for k in range(n_max + 1):
        cumulative += next(it)
        if cumulative >= q:
            return k
    raise RuntimeError(
        f"quantile {q} not reached by N_FG = {n_max} "
        f"(cumulative {cumulative:.6f}); the system is close to saturation"
    )
