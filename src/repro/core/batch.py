"""Extension: batch foreground arrivals (an M/G/1-type model).

Storage workloads often issue requests in bursts of several I/Os (striped
writes, read-ahead); modelling each MAP arrival event as a *batch* of
foreground jobs turns the paper's QBD into an M/G/1-type chain -- the level
can jump up by the batch size -- solved with
:mod:`repro.qbd.mg1` (Ramaswami's formula).

With a batch-size distribution degenerate at 1 the model coincides with
:class:`~repro.core.model.FgBgModel` (verified in the test-suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.blocks import BgServiceMode
from repro.core.states import StateKind, StateSpace
from repro.processes.map_process import MarkovianArrivalProcess
from repro.qbd.mg1 import MG1Process, MG1StationaryDistribution, solve_mg1

__all__ = ["BatchFgBgModel", "BatchFgBgSolution"]


@dataclass(frozen=True)
class BatchFgBgSolution:
    """Stationary metrics of the batch-arrival model."""

    #: Mean number of foreground jobs in system.
    fg_queue_length: float
    #: Mean number of background jobs in system.
    bg_queue_length: float
    #: P(background job in service | foreground present).
    fg_delayed_fraction: float
    #: Fraction of spawned background jobs admitted.
    bg_completion_rate: float
    #: Fraction of time the server works on foreground jobs.
    fg_server_share: float
    #: Fraction of time the server works on background jobs.
    bg_server_share: float
    #: Mean foreground response time (Little's law over jobs).
    fg_response_time: float
    #: The underlying M/G/1-type solution.
    mg1_solution: MG1StationaryDistribution


@dataclass(frozen=True)
class BatchFgBgModel:
    """FG/BG model whose arrival events carry a random batch of jobs.

    Parameters
    ----------
    arrival:
        MAP of arrival *events* (each event delivers one batch).
    batch_probabilities:
        ``(q_1, ..., q_B)``: probability that an event carries ``b`` jobs;
        must sum to 1.
    service_rate:
        Exponential service rate shared by all jobs.
    bg_probability:
        Probability that a completing foreground job spawns a background
        job.
    bg_buffer:
        Background buffer size ``X >= 1``.
    idle_wait_rate:
        Idle-wait rate; ``None`` uses the service rate.
    bg_mode:
        Background scheduling within an idle period.
    """

    arrival: MarkovianArrivalProcess
    batch_probabilities: tuple[float, ...]
    service_rate: float
    bg_probability: float
    bg_buffer: int = 5
    idle_wait_rate: float | None = None
    bg_mode: BgServiceMode = BgServiceMode.BACK_TO_BACK

    def __post_init__(self) -> None:
        if not isinstance(self.arrival, MarkovianArrivalProcess):
            raise TypeError(
                f"arrival must be a MarkovianArrivalProcess, got {type(self.arrival).__name__}"
            )
        probs = tuple(float(q) for q in self.batch_probabilities)
        if not probs:
            raise ValueError("need at least one batch-size probability")
        if any(q < 0 for q in probs) or abs(sum(probs) - 1.0) > 1e-9:
            raise ValueError(
                f"batch probabilities must be non-negative and sum to 1, got {probs}"
            )
        object.__setattr__(self, "batch_probabilities", probs)
        if self.service_rate <= 0:
            raise ValueError(f"service_rate must be positive, got {self.service_rate}")
        if not 0 < self.bg_probability <= 1:
            raise ValueError(
                "bg_probability must lie in (0, 1] (use FgBgModel for p = 0), "
                f"got {self.bg_probability}"
            )
        if self.bg_buffer < 1:
            raise ValueError(f"bg_buffer must be >= 1, got {self.bg_buffer}")
        if self.idle_wait_rate is not None and self.idle_wait_rate <= 0:
            raise ValueError(
                f"idle_wait_rate must be positive, got {self.idle_wait_rate}"
            )

    # ------------------------------------------------------------------
    @property
    def mean_batch_size(self) -> float:
        """Expected jobs per arrival event."""
        return float(
            sum(b * q for b, q in enumerate(self.batch_probabilities, start=1))
        )

    @property
    def effective_idle_wait_rate(self) -> float:
        """The idle-wait rate actually used (defaults to ``service_rate``)."""
        return self.service_rate if self.idle_wait_rate is None else self.idle_wait_rate

    @property
    def fg_utilization(self) -> float:
        """Offered load: event rate x mean batch size / service rate."""
        return self.arrival.mean_rate * self.mean_batch_size / self.service_rate

    # ------------------------------------------------------------------
    @cached_property
    def _space(self) -> StateSpace:
        return StateSpace(self.bg_buffer, self.arrival.order)

    @cached_property
    def _process(self) -> MG1Process:
        space = self._space
        a = self.arrival.order
        d0, d1 = self.arrival.d0, self.arrival.d1
        eye = np.eye(a)
        mu = self.service_rate
        p = self.bg_probability
        alpha = self.effective_idle_wait_rate
        x_max = space.bg_buffer
        back_to_back = self.bg_mode is BgServiceMode.BACK_TO_BACK
        batches = self.batch_probabilities
        b_max = len(batches)

        n_b = space.boundary_state_count
        m = space.repeating_state_count
        m_g = space.repeating_group_count

        def bsl(kind: StateKind, bg: int, fg: int) -> slice:
            i = space.boundary_group_index(kind, bg, fg)
            return slice(i * a, (i + 1) * a)

        def rsl(kind: StateKind, bg: int) -> slice:
            i = space.repeating_group_index(kind, bg)
            return slice(i * a, (i + 1) * a)

        b0 = np.zeros((n_b, n_b))
        b_up = [np.zeros((n_b, m)) for _ in range(b_max)]  # to level 1..b_max
        c = np.zeros((m, n_b))
        a_local = np.zeros((m, m))
        a_down = np.zeros((m, m))
        a_up = [np.zeros((m, m)) for _ in range(b_max)]  # up 1..b_max levels

        def add_boundary_arrival(src: slice, kind: StateKind, bg: int, fg_now: int, level: int) -> None:
            """Arrival of each batch size from a boundary state."""
            for b, q in enumerate(batches, start=1):
                if q == 0:
                    continue
                target_level = level + b
                rate = q * d1
                if target_level <= x_max:
                    b0[src, bsl(kind, bg, fg_now + b)] += rate
                else:
                    b_up[target_level - x_max - 1][src, rsl(kind, bg)] += rate

        # ---- boundary (levels 0..X) -----------------------------------
        for g in space.boundary_groups:
            s = bsl(g.kind, g.bg, g.fg)
            b0[s, s] += d0
            if g.kind is StateKind.IDLE:
                if g.bg >= 1:
                    b0[s, s] -= alpha * eye
                    b0[s, bsl(StateKind.BG, g.bg, 0)] += alpha * eye
                # An arrival starts FG service at once: fg goes 0 -> b.
                for b, q in enumerate(batches, start=1):
                    if q == 0:
                        continue
                    target_level = g.level + b
                    rate = q * d1
                    if target_level <= x_max:
                        b0[s, bsl(StateKind.FG, g.bg, b)] += rate
                    else:
                        b_up[target_level - x_max - 1][s, rsl(StateKind.FG, g.bg)] += rate
            elif g.kind is StateKind.FG:
                b0[s, s] -= mu * eye
                add_boundary_arrival(s, StateKind.FG, g.bg, g.fg, g.level)
                x_up = min(g.bg + 1, x_max)
                if g.fg >= 2:
                    b0[s, bsl(StateKind.FG, g.bg, g.fg - 1)] += mu * (1 - p) * eye
                    b0[s, bsl(StateKind.FG, x_up, g.fg - 1)] += mu * p * eye
                else:
                    b0[s, bsl(StateKind.IDLE, g.bg, 0)] += mu * (1 - p) * eye
                    b0[s, bsl(StateKind.IDLE, x_up, 0)] += mu * p * eye
            else:
                b0[s, s] -= mu * eye
                add_boundary_arrival(s, StateKind.BG, g.bg, g.fg, g.level)
                if g.fg >= 1:
                    b0[s, bsl(StateKind.FG, g.bg - 1, g.fg)] += mu * eye
                elif back_to_back and g.bg >= 2:
                    b0[s, bsl(StateKind.BG, g.bg - 1, 0)] += mu * eye
                else:
                    b0[s, bsl(StateKind.IDLE, g.bg - 1, 0)] += mu * eye

        # ---- repeating levels ------------------------------------------
        for g in space.repeating_groups:
            s = rsl(g.kind, g.bg)
            a_local[s, s] += d0 - mu * eye
            for b, q in enumerate(batches, start=1):
                if q > 0:
                    a_up[b - 1][s, s] += q * d1
            if g.kind is StateKind.FG:
                if g.bg < x_max:
                    a_local[s, rsl(StateKind.FG, g.bg + 1)] += mu * p * eye
                    a_down[s, rsl(StateKind.FG, g.bg)] += mu * (1 - p) * eye
                else:
                    a_down[s, rsl(StateKind.FG, g.bg)] += mu * eye
            else:
                a_down[s, rsl(StateKind.FG, g.bg - 1)] += mu * eye

        # ---- level X+1 down into the boundary --------------------------
        for g in space.repeating_groups:
            s = rsl(g.kind, g.bg)
            y = x_max + 1 - g.bg
            if g.kind is StateKind.FG:
                if g.bg < x_max:
                    c[s, bsl(StateKind.FG, g.bg, y - 1)] += mu * (1 - p) * eye
                else:
                    c[s, bsl(StateKind.IDLE, x_max, 0)] += mu * eye
            else:
                c[s, bsl(StateKind.FG, g.bg - 1, y)] += mu * eye

        return MG1Process(
            boundary_blocks=tuple([b0] + b_up),
            down_block=c,
            repeating_blocks=tuple([a_down, a_local] + a_up),
        )

    # ------------------------------------------------------------------
    def solve(self, tail_tol: float = 1e-14) -> BatchFgBgSolution:
        """Solve the batch-arrival model and return its metrics."""
        if self.fg_utilization >= 1.0:
            raise ValueError(
                f"model is unstable: foreground utilization "
                f"{self.fg_utilization:.4g} >= 1"
            )
        sol = solve_mg1(self._process, tail_tol=tail_tol)
        return self._metrics(sol)

    def _metrics(self, sol: MG1StationaryDistribution) -> BatchFgBgSolution:
        space = self._space
        a = space.phases
        x_max = space.bg_buffer
        mu = self.service_rate
        p = self.bg_probability
        job_rate = self.arrival.mean_rate * self.mean_batch_size

        pi_b = sol.boundary
        fg_mask_b = space.boundary_kind_mask(StateKind.FG)
        bg_mask_b = space.boundary_kind_mask(StateKind.BG)
        blocked_b = space.boundary_bg_busy_fg_waiting_mask
        fg_mask_r = space.repeating_kind_mask(StateKind.FG)
        bg_mask_r = space.repeating_kind_mask(StateKind.BG)
        full_r = space.repeating_bg_full_fg_mask
        x_r = space.repeating_bg_counts

        prob_fg = float(pi_b @ fg_mask_b)
        prob_bg = float(pi_b @ bg_mask_b)
        prob_full = 0.0
        fg_qlen = float(pi_b @ space.boundary_fg_counts)
        bg_qlen = float(pi_b @ space.boundary_bg_counts)
        delayed = float(pi_b @ blocked_b)
        fg_present = float(pi_b @ (fg_mask_b + blocked_b))
        for k in range(1, sol.computed_levels + 1):
            level = sol.level(k)
            prob_fg += float(level @ fg_mask_r)
            prob_bg += float(level @ bg_mask_r)
            prob_full += float(level @ full_r)
            fg_qlen += float(level @ (x_max + k - x_r))
            bg_qlen += float(level @ x_r)
            delayed += float(level @ bg_mask_r)
            fg_present += float(level.sum())

        return BatchFgBgSolution(
            fg_queue_length=fg_qlen,
            bg_queue_length=bg_qlen,
            fg_delayed_fraction=delayed / fg_present if fg_present > 0 else 0.0,
            bg_completion_rate=(
                1.0 - prob_full / prob_fg if prob_fg > 0 else float("nan")
            ),
            fg_server_share=prob_fg,
            bg_server_share=prob_bg,
            fg_response_time=fg_qlen / job_rate,
            mg1_solution=sol,
        )
