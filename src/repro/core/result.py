"""Solved metrics of the foreground/background model."""

from __future__ import annotations

import math
from dataclasses import dataclass, fields

from repro.qbd.rmatrix import SolveStats
from repro.qbd.stationary import QBDStationaryDistribution

__all__ = ["FgBgSolution"]


@dataclass(frozen=True)
class FgBgSolution:
    """All stationary metrics of one solved model instance.

    The four headline metrics of the paper:

    * :attr:`fg_queue_length` -- mean number of foreground jobs in system
      (paper's ``QLEN_FG``, Figures 5, 9, 11);
    * :attr:`fg_delayed_fraction` -- the paper's ``WaitP_FG`` (Figures 6,
      13): the probability that a background job holds the server given
      foreground work is present;
    * :attr:`bg_completion_rate` -- the paper's ``Comp_BG`` (Figures 7, 10,
      12): the fraction of spawned background jobs that are admitted (and
      hence eventually served); a deliberate ``nan`` when
      ``bg_probability`` is below ``NEAR_ZERO_BG_PROBABILITY`` (including
      exactly 0), where the chain is built without background states;
    * :attr:`bg_queue_length` -- mean number of background jobs in system
      (Figure 8).
    """

    #: Mean number of foreground jobs in system (waiting or in service).
    fg_queue_length: float
    #: Mean number of background jobs in system (waiting or in service).
    bg_queue_length: float
    #: P(background job in service | >= 1 foreground job in system).
    fg_delayed_fraction: float
    #: Fraction of foreground *arrivals* that find a background job holding
    #: the server (an arrival-average variant of ``fg_delayed_fraction``).
    fg_arrival_delayed_fraction: float
    #: Fraction of spawned background jobs admitted to the buffer.
    bg_completion_rate: float
    #: Long-run fraction of time the server works on foreground jobs.
    fg_server_share: float
    #: Long-run fraction of time the server works on background jobs.
    bg_server_share: float
    #: Long-run fraction of time the server is idle (incl. idle-wait).
    idle_probability: float
    #: Foreground throughput (jobs per unit time); equals the arrival rate.
    fg_throughput: float
    #: Background service completions per unit time.
    bg_throughput: float
    #: Background jobs spawned per unit time (admitted or not).
    bg_spawn_rate: float
    #: Background jobs dropped (buffer full) per unit time.
    bg_drop_rate: float
    #: Mean foreground response time (Little's law).
    fg_response_time: float
    #: Mean background response time, from admission to completion
    #: (Little's law over admitted jobs); ``nan`` when no job is admitted.
    bg_response_time: float
    #: Offered foreground utilization ``lambda / mu``.
    fg_utilization: float
    #: The underlying QBD stationary distribution, for power users.
    qbd_solution: QBDStationaryDistribution

    @property
    def solve_stats(self) -> SolveStats | None:
        """Diagnostics of the R-matrix solve behind this solution
        (iterations, wall time, algorithm, ``sp(R)``, warm start)."""
        return self.qbd_solution.solve_stats

    def as_dict(self) -> dict[str, float]:
        """Scalar metrics as a plain dictionary (omits the QBD solution)."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "qbd_solution"
        }

    def summary(self) -> str:
        """Human-readable multi-line summary."""
        lines = ["FgBgSolution"]
        for name, value in self.as_dict().items():
            rendered = "nan" if isinstance(value, float) and math.isnan(value) else f"{value:.6g}"
            lines.append(f"  {name:<28s} {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"FgBgSolution(fg_queue_length={self.fg_queue_length:.6g}, "
            f"bg_completion_rate={self.bg_completion_rate:.6g}, "
            f"fg_delayed_fraction={self.fg_delayed_fraction:.6g}, "
            f"bg_queue_length={self.bg_queue_length:.6g})"
        )
