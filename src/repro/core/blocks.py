"""QBD generator blocks of the foreground/background model.

Implements the chain of the paper's Figure 3, lifted to MAP arrivals as in
Figure 4 / Eq. (6): the scalar arrival rate ``lambda`` becomes the matrix
``F = D1``, local phase moves come from ``L`` (the off-diagonal of ``D0``,
whose diagonal is carried inside each group's local block), service is
``B = mu * I`` and the idle-wait timer ``W = alpha * I``.

Transitions (``X`` = background buffer, ``x+ = min(x+1, X)``):

=================  ===========================================================
state              transitions
=================  ===========================================================
``I(0)``           ``D1 -> F(0, 1)``
``I(x), x >= 1``   ``D1 -> F(x, 1)``; ``alpha -> B(x, 0)``
``F(x, y)``        ``D1 -> F(x, y+1)``;
                   ``mu(1-p) -> F(x, y-1)`` or ``I(x)`` when ``y = 1``;
                   ``mu p -> F(x+, y-1)`` or ``I(x+)`` when ``y = 1``
``B(x, y)``        ``D1 -> B(x, y+1)``;
                   ``mu -> F(x-1, y)`` when ``y >= 1``; when ``y = 0``:
                   ``back_to_back``: ``B(x-1, 0)`` (or ``I(0)`` if ``x = 1``);
                   ``rewait``: ``I(x-1)``
=================  ===========================================================
"""

from __future__ import annotations

import enum

import numpy as np

from repro.core.states import StateKind, StateSpace
from repro.processes.map_process import MarkovianArrivalProcess
from repro.qbd.structure import QBDProcess

__all__ = ["BgServiceMode", "build_qbd"]


class BgServiceMode(enum.Enum):
    """How background jobs are scheduled within an idle period.

    ``BACK_TO_BACK``
        Once the idle wait has expired, queued background jobs are served
        consecutively until a foreground job arrives or the queue drains
        (the common disk-firmware behaviour; the default).
    ``REWAIT``
        Every background job requires a fresh idle-wait grant; after each
        background completion with no foreground work present the system
        returns to the idle-wait state.
    """

    BACK_TO_BACK = "back_to_back"
    REWAIT = "rewait"


def build_qbd(
    arrival: MarkovianArrivalProcess,
    service_rate: float,
    bg_probability: float,
    bg_buffer: int,
    idle_wait_rate: float,
    bg_mode: BgServiceMode = BgServiceMode.BACK_TO_BACK,
) -> tuple[QBDProcess, StateSpace]:
    """Assemble the QBD blocks of the FG/BG chain.

    Returns the validated :class:`~repro.qbd.structure.QBDProcess` together
    with the :class:`~repro.core.states.StateSpace` that indexes it.
    """
    if service_rate <= 0:
        raise ValueError(f"service_rate must be positive, got {service_rate}")
    if not 0 <= bg_probability <= 1:
        raise ValueError(f"bg_probability must lie in [0, 1], got {bg_probability}")
    if idle_wait_rate <= 0:
        raise ValueError(f"idle_wait_rate must be positive, got {idle_wait_rate}")
    if not isinstance(bg_mode, BgServiceMode):
        raise TypeError(f"bg_mode must be a BgServiceMode, got {bg_mode!r}")

    space = StateSpace(bg_buffer, arrival.order)
    a = arrival.order
    d0, d1 = arrival.d0, arrival.d1
    eye = np.eye(a)
    mu = float(service_rate)
    p = float(bg_probability)
    alpha = float(idle_wait_rate)
    x_max = space.bg_buffer

    n_b = space.boundary_state_count
    m = space.repeating_state_count
    b00 = np.zeros((n_b, n_b))
    b01 = np.zeros((n_b, m))
    b10 = np.zeros((m, n_b))

    def bsl(kind: StateKind, bg: int, fg: int) -> slice:
        i = space.boundary_group_index(kind, bg, fg)
        return slice(i * a, (i + 1) * a)

    def rsl(kind: StateKind, bg: int) -> slice:
        i = space.repeating_group_index(kind, bg)
        return slice(i * a, (i + 1) * a)

    # ------------------------------------------------------------------
    # Boundary (levels 0..X) and its up-transitions into level X+1
    # ------------------------------------------------------------------
    for g in space.boundary_groups:
        s = bsl(g.kind, g.bg, g.fg)
        b00[s, s] += d0
        if g.kind is StateKind.IDLE:
            if g.bg >= 1:
                b00[s, s] -= alpha * eye
                b00[s, bsl(StateKind.BG, g.bg, 0)] += alpha * eye
            if g.level + 1 <= x_max:
                b00[s, bsl(StateKind.FG, g.bg, 1)] += d1
            else:  # only I(X) reaches the repeating portion on an arrival
                b01[s, rsl(StateKind.FG, g.bg)] += d1
        elif g.kind is StateKind.FG:
            b00[s, s] -= mu * eye
            if g.level + 1 <= x_max:
                b00[s, bsl(StateKind.FG, g.bg, g.fg + 1)] += d1
            else:
                b01[s, rsl(StateKind.FG, g.bg)] += d1
            # Completion without a spawned background job.
            if g.fg >= 2:
                b00[s, bsl(StateKind.FG, g.bg, g.fg - 1)] += mu * (1 - p) * eye
            else:
                b00[s, bsl(StateKind.IDLE, g.bg, 0)] += mu * (1 - p) * eye
            # Completion that spawns a background job (boundary FG states
            # always have bg <= X-1, so the spawn is never dropped here).
            if p > 0:
                x_up = min(g.bg + 1, x_max)
                if g.fg >= 2:
                    b00[s, bsl(StateKind.FG, x_up, g.fg - 1)] += mu * p * eye
                else:
                    b00[s, bsl(StateKind.IDLE, x_up, 0)] += mu * p * eye
        else:  # BG in service
            b00[s, s] -= mu * eye
            if g.level + 1 <= x_max:
                b00[s, bsl(StateKind.BG, g.bg, g.fg + 1)] += d1
            else:
                b01[s, rsl(StateKind.BG, g.bg)] += d1
            if g.fg >= 1:
                b00[s, bsl(StateKind.FG, g.bg - 1, g.fg)] += mu * eye
            elif bg_mode is BgServiceMode.BACK_TO_BACK and g.bg >= 2:
                b00[s, bsl(StateKind.BG, g.bg - 1, 0)] += mu * eye
            else:
                b00[s, bsl(StateKind.IDLE, g.bg - 1, 0)] += mu * eye

    # ------------------------------------------------------------------
    # Repeating blocks (levels j >= X+1); at level j the FG count of group
    # (kind, x) is j - x >= 1.
    # ------------------------------------------------------------------
    m_g = space.repeating_group_count
    a0 = np.kron(np.eye(m_g), d1)
    a1 = np.zeros((m, m))
    a2 = np.zeros((m, m))
    for g in space.repeating_groups:
        s = rsl(g.kind, g.bg)
        a1[s, s] += d0 - mu * eye
        if g.kind is StateKind.FG:
            if g.bg < x_max:
                if p > 0:
                    a1[s, rsl(StateKind.FG, g.bg + 1)] += mu * p * eye
                a2[s, rsl(StateKind.FG, g.bg)] += mu * (1 - p) * eye
            else:
                # Full buffer: a spawned background job is dropped, so every
                # completion simply steps the level down.
                a2[s, rsl(StateKind.FG, g.bg)] += mu * eye
        else:
            a2[s, rsl(StateKind.FG, g.bg - 1)] += mu * eye

    # ------------------------------------------------------------------
    # Special down-block from level X+1 into the boundary level X: the
    # FG completions with y = 1 land on idle-wait states.
    # ------------------------------------------------------------------
    for g in space.repeating_groups:
        s = rsl(g.kind, g.bg)
        y = x_max + 1 - g.bg  # FG count at level X+1
        if g.kind is StateKind.FG:
            if g.bg < x_max:
                b10[s, bsl(StateKind.FG, g.bg, y - 1)] += mu * (1 - p) * eye
                # The mu*p spawn stays within level X+1 (handled in a1),
                # because y - 1 >= 1 here.
            else:
                # F(X, 1): whether or not a (dropped) spawn occurs, the
                # system empties of FG work and starts an idle wait.
                b10[s, bsl(StateKind.IDLE, x_max, 0)] += mu * eye
        else:
            b10[s, bsl(StateKind.FG, g.bg - 1, y)] += mu * eye

    qbd = QBDProcess(b00=b00, b01=b01, b10=b10, a0=a0, a1=a1, a2=a2)
    return qbd, space
