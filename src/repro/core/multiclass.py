"""Extension: multiple background job classes (the paper's future work).

The paper closes with "we are working on model extensions that capture more
than one job priority level, i.e., different classes of background jobs".
This module implements that extension: ``K`` background classes share the
finite buffer; class ``c`` is spawned by a completing foreground job with
probability ``p_c``; within the background work, lower class index means
higher priority (class 1 is served before class 2, and so on).  Foreground
work retains absolute (non-preemptive) priority and the idle-wait rule is
unchanged.

The chain is still a QBD: levels are the total number of jobs, boundary
levels ``0..X`` are tree-like and the repeating level has one group per
buffer occupancy vector and serving class.  With ``K = 1`` the model
coincides exactly with :class:`~repro.core.model.FgBgModel` (verified in
the test-suite).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.blocks import BgServiceMode
from repro.processes.map_process import MarkovianArrivalProcess
from repro.qbd.stationary import QBDStationaryDistribution, solve_qbd
from repro.qbd.structure import QBDProcess

__all__ = ["MulticlassFgBgModel", "MulticlassSolution"]

_FG = -1  # serving marker: foreground
_IDLE = -2  # serving marker: nobody (idle / idle-wait)


def _occupancies(x_max: int, classes: int) -> list[tuple[int, ...]]:
    """All buffer occupancy vectors with total at most ``x_max``."""
    out = []
    for total in range(x_max + 1):
        for combo in itertools.combinations_with_replacement(range(classes), total):
            vec = [0] * classes
            for c in combo:
                vec[c] += 1
            out.append(tuple(vec))
    # Deterministic order: by total, then lexicographic.
    return sorted(set(out), key=lambda v: (sum(v), v))


@dataclass(frozen=True)
class MulticlassSolution:
    """Stationary metrics of the multiclass model."""

    #: Mean number of foreground jobs in system.
    fg_queue_length: float
    #: Mean number of background jobs in system, per class.
    bg_queue_lengths: tuple[float, ...]
    #: P(any background job in service | foreground present).
    fg_delayed_fraction: float
    #: Fraction of spawned background jobs admitted (shared buffer: the
    #: admission probability is class-independent).
    bg_completion_rate: float
    #: Background service completions per unit time, per class.
    bg_throughputs: tuple[float, ...]
    #: Mean background response time (admission to completion), per class.
    bg_response_times: tuple[float, ...]
    #: Fraction of time the server works on foreground jobs.
    fg_server_share: float
    #: Fraction of time the server works on each background class.
    bg_server_shares: tuple[float, ...]
    #: The underlying QBD solution.
    qbd_solution: QBDStationaryDistribution

    @property
    def bg_queue_length(self) -> float:
        """Total background queue length over all classes."""
        return float(sum(self.bg_queue_lengths))


@dataclass(frozen=True)
class MulticlassFgBgModel:
    """FG/BG model with ``K`` prioritized background classes.

    Parameters
    ----------
    arrival:
        Foreground arrival MAP.
    service_rate:
        Exponential service rate shared by all job types.
    bg_probabilities:
        ``(p_1, ..., p_K)``: a completing foreground job spawns a class-c
        background job with probability ``p_c`` (at most one spawn per
        completion; the probabilities must sum to at most 1).  Class 1 has
        the highest background priority.
    bg_buffer:
        Shared background buffer size ``X``.
    idle_wait_rate:
        Idle-wait rate; ``None`` uses the service rate (paper default).
    bg_mode:
        Background scheduling within an idle period (see
        :class:`~repro.core.blocks.BgServiceMode`).
    """

    arrival: MarkovianArrivalProcess
    service_rate: float
    bg_probabilities: tuple[float, ...]
    bg_buffer: int = 5
    idle_wait_rate: float | None = None
    bg_mode: BgServiceMode = BgServiceMode.BACK_TO_BACK

    def __post_init__(self) -> None:
        if not isinstance(self.arrival, MarkovianArrivalProcess):
            raise TypeError(
                f"arrival must be a MarkovianArrivalProcess, got {type(self.arrival).__name__}"
            )
        if self.service_rate <= 0:
            raise ValueError(f"service_rate must be positive, got {self.service_rate}")
        probs = tuple(float(p) for p in self.bg_probabilities)
        if not probs:
            raise ValueError("need at least one background class")
        if any(p < 0 for p in probs):
            raise ValueError(f"spawn probabilities must be >= 0, got {probs}")
        if sum(probs) > 1.0 + 1e-12:
            raise ValueError(
                f"spawn probabilities sum to {sum(probs)} > 1"
            )
        object.__setattr__(self, "bg_probabilities", probs)
        if self.bg_buffer < 1:
            raise ValueError(f"bg_buffer must be >= 1, got {self.bg_buffer}")
        if self.idle_wait_rate is not None and self.idle_wait_rate <= 0:
            raise ValueError(
                f"idle_wait_rate must be positive, got {self.idle_wait_rate}"
            )

    # ------------------------------------------------------------------
    @property
    def classes(self) -> int:
        """Number of background classes K."""
        return len(self.bg_probabilities)

    @property
    def effective_idle_wait_rate(self) -> float:
        """The idle-wait rate actually used (defaults to ``service_rate``)."""
        return self.service_rate if self.idle_wait_rate is None else self.idle_wait_rate

    @property
    def fg_utilization(self) -> float:
        """Offered foreground load ``lambda / mu``."""
        return self.arrival.mean_rate / self.service_rate

    # ------------------------------------------------------------------
    # State space: (serving, occupancy vector[, fg count])
    # serving is _FG, _IDLE, or a class index 0..K-1.
    # ------------------------------------------------------------------
    @cached_property
    def _boundary_groups(self) -> list[tuple[int, tuple[int, ...], int]]:
        """(serving, x_vec, y) triples for levels 0..X, level by level."""
        x_max = self.bg_buffer
        groups: list[tuple[int, tuple[int, ...], int]] = []
        occupancies = _occupancies(x_max, self.classes)
        for level in range(x_max + 1):
            for x_vec in occupancies:
                total = sum(x_vec)
                if total > level:
                    continue
                y = level - total
                if y >= 1:
                    groups.append((_FG, x_vec, y))
                if y == 0:
                    groups.append((_IDLE, x_vec, 0))
                for c in range(self.classes):
                    if x_vec[c] >= 1:
                        groups.append((c, x_vec, y))
        return groups

    @cached_property
    def _repeating_groups(self) -> list[tuple[int, tuple[int, ...]]]:
        """(serving, x_vec) pairs of one repeating level (y = level - |x|)."""
        groups: list[tuple[int, tuple[int, ...]]] = []
        for x_vec in _occupancies(self.bg_buffer, self.classes):
            groups.append((_FG, x_vec))
            for c in range(self.classes):
                if x_vec[c] >= 1:
                    groups.append((c, x_vec))
        return groups

    @cached_property
    def _maps(self) -> tuple[dict, dict]:
        bmap = {g: i for i, g in enumerate(self._boundary_groups)}
        rmap = {g: i for i, g in enumerate(self._repeating_groups)}
        return bmap, rmap

    def _highest_priority(self, x_vec: tuple[int, ...]) -> int:
        for c in range(self.classes):
            if x_vec[c] >= 1:
                return c
        raise ValueError(f"no background job buffered in {x_vec}")

    # ------------------------------------------------------------------
    # Block assembly
    # ------------------------------------------------------------------
    @cached_property
    def _qbd(self) -> QBDProcess:
        arrival = self.arrival
        a = arrival.order
        d0, d1 = arrival.d0, arrival.d1
        eye = np.eye(a)
        mu = self.service_rate
        alpha = self.effective_idle_wait_rate
        probs = self.bg_probabilities
        p0 = 1.0 - sum(probs)
        x_max = self.bg_buffer
        back_to_back = self.bg_mode is BgServiceMode.BACK_TO_BACK

        bmap, rmap = self._maps
        n_b = len(self._boundary_groups) * a
        m = len(self._repeating_groups) * a
        b00 = np.zeros((n_b, n_b))
        b01 = np.zeros((n_b, m))
        b10 = np.zeros((m, n_b))
        a0 = np.kron(np.eye(len(self._repeating_groups)), d1)
        a1 = np.zeros((m, m))
        a2 = np.zeros((m, m))

        def bsl(serving: int, x_vec: tuple[int, ...], y: int) -> slice:
            i = bmap[(serving, x_vec, y)]
            return slice(i * a, (i + 1) * a)

        def rsl(serving: int, x_vec: tuple[int, ...]) -> slice:
            i = rmap[(serving, x_vec)]
            return slice(i * a, (i + 1) * a)

        def spawn_targets(
            x_vec: tuple[int, ...],
        ) -> list[tuple[float, tuple[int, ...]]]:
            """(probability, new occupancy) outcomes of one FG completion."""
            outcomes = [(p0, x_vec)]
            for c, p_c in enumerate(probs):
                if p_c == 0:
                    continue
                if sum(x_vec) < x_max:
                    new = list(x_vec)
                    new[c] += 1
                    outcomes.append((p_c, tuple(new)))
                else:
                    outcomes.append((p_c, x_vec))  # dropped
            return outcomes

        # Boundary.
        for serving, x_vec, y in self._boundary_groups:
            s = bsl(serving, x_vec, y)
            b00[s, s] += d0
            level = sum(x_vec) + y
            if serving == _IDLE:
                if sum(x_vec) >= 1:
                    c = self._highest_priority(x_vec)
                    b00[s, s] -= alpha * eye
                    b00[s, bsl(c, x_vec, 0)] += alpha * eye
                if level + 1 <= x_max:
                    b00[s, bsl(_FG, x_vec, 1)] += d1
                else:
                    b01[s, rsl(_FG, x_vec)] += d1
            elif serving == _FG:
                b00[s, s] -= mu * eye
                if level + 1 <= x_max:
                    b00[s, bsl(_FG, x_vec, y + 1)] += d1
                else:
                    b01[s, rsl(_FG, x_vec)] += d1
                for weight, new_vec in spawn_targets(x_vec):
                    if weight == 0:
                        continue
                    if y >= 2:
                        b00[s, bsl(_FG, new_vec, y - 1)] += mu * weight * eye
                    else:
                        b00[s, bsl(_IDLE, new_vec, 0)] += mu * weight * eye
            else:  # serving background class `serving`
                b00[s, s] -= mu * eye
                if level + 1 <= x_max:
                    b00[s, bsl(serving, x_vec, y + 1)] += d1
                else:
                    b01[s, rsl(serving, x_vec)] += d1
                done = list(x_vec)
                done[serving] -= 1
                done_vec = tuple(done)
                if y >= 1:
                    b00[s, bsl(_FG, done_vec, y)] += mu * eye
                elif back_to_back and sum(done_vec) >= 1:
                    nxt = self._highest_priority(done_vec)
                    b00[s, bsl(nxt, done_vec, 0)] += mu * eye
                else:
                    b00[s, bsl(_IDLE, done_vec, 0)] += mu * eye

        # Repeating level (y = level - |x| >= 1 everywhere).
        for serving, x_vec in self._repeating_groups:
            s = rsl(serving, x_vec)
            a1[s, s] += d0 - mu * eye
            if serving == _FG:
                for weight, new_vec in spawn_targets(x_vec):
                    if weight == 0:
                        continue
                    if new_vec == x_vec:
                        a2[s, rsl(_FG, x_vec)] += mu * weight * eye
                    else:
                        a1[s, rsl(_FG, new_vec)] += mu * weight * eye
            else:
                done = list(x_vec)
                done[serving] -= 1
                a2[s, rsl(_FG, tuple(done))] += mu * eye

        # Special down-block into boundary level X.
        for serving, x_vec in self._repeating_groups:
            s = rsl(serving, x_vec)
            y = x_max + 1 - sum(x_vec)
            if serving == _FG:
                for weight, new_vec in spawn_targets(x_vec):
                    if weight == 0:
                        continue
                    if new_vec != x_vec:
                        continue  # stays within level X+1: already in a1
                    if y >= 2:
                        b10[s, bsl(_FG, x_vec, y - 1)] += mu * weight * eye
                    else:
                        b10[s, bsl(_IDLE, x_vec, 0)] += mu * weight * eye
            else:
                done = list(x_vec)
                done[serving] -= 1
                b10[s, bsl(_FG, tuple(done), y)] += mu * eye

        return QBDProcess(b00=b00, b01=b01, b10=b10, a0=a0, a1=a1, a2=a2)

    # ------------------------------------------------------------------
    # Solving and metrics
    # ------------------------------------------------------------------
    def solve(self, algorithm: str = "logarithmic-reduction") -> MulticlassSolution:
        """Solve the multiclass model and return its stationary metrics."""
        if self.fg_utilization >= 1.0:
            raise ValueError(
                f"model is unstable: foreground utilization "
                f"{self.fg_utilization:.4g} >= 1"
            )
        sol = solve_qbd(self._qbd, algorithm=algorithm)
        return self._metrics(sol)

    def _metrics(self, sol: QBDStationaryDistribution) -> MulticlassSolution:
        a = self.arrival.order
        mu = self.service_rate
        x_max = self.bg_buffer
        probs = self.bg_probabilities
        k = self.classes

        def expand(values: Sequence[float] | np.ndarray) -> np.ndarray:
            return np.repeat(np.asarray(values, dtype=float), a)

        bg = self._boundary_groups
        rg = self._repeating_groups
        pi_b = sol.boundary
        rep_mass = sol.repeating_mass
        rep_weighted = sol.repeating_level_weighted

        fg_mask_b = expand([1.0 if g[0] == _FG else 0.0 for g in bg])
        fg_mask_r = expand([1.0 if g[0] == _FG else 0.0 for g in rg])
        prob_fg = float(pi_b @ fg_mask_b + rep_mass @ fg_mask_r)

        bg_serving_masks_b = [
            expand([1.0 if g[0] == c else 0.0 for g in bg]) for c in range(k)
        ]
        bg_serving_masks_r = [
            expand([1.0 if g[0] == c else 0.0 for g in rg]) for c in range(k)
        ]
        bg_shares = tuple(
            float(pi_b @ mb + rep_mass @ mr)
            for mb, mr in zip(bg_serving_masks_b, bg_serving_masks_r)
        )

        y_b = expand([g[2] for g in bg])
        x_total_r = expand([sum(g[1]) for g in rg])
        fg_qlen = float(
            pi_b @ y_b + rep_mass @ (x_max - x_total_r) + rep_weighted.sum()
        )

        bg_qlens = []
        for c in range(k):
            xc_b = expand([g[1][c] for g in bg])
            xc_r = expand([g[1][c] for g in rg])
            bg_qlens.append(float(pi_b @ xc_b + rep_mass @ xc_r))

        blocked_b = expand(
            [1.0 if (g[0] >= 0 and g[2] >= 1) else 0.0 for g in bg]
        )
        any_bg_r = expand([1.0 if g[0] >= 0 else 0.0 for g in rg])
        fg_present = float(pi_b @ (fg_mask_b + blocked_b) + rep_mass.sum())
        delayed = float(pi_b @ blocked_b + rep_mass @ any_bg_r)

        full_fg_r = expand(
            [1.0 if (g[0] == _FG and sum(g[1]) == x_max) else 0.0 for g in rg]
        )
        prob_fg_full = float(rep_mass @ full_fg_r)
        total_p = sum(probs)
        completion = (
            1.0 - prob_fg_full / prob_fg if (total_p > 0 and prob_fg > 0) else float("nan")
        )

        throughputs = tuple(mu * share for share in bg_shares)
        admit_rates = tuple(
            mu * p_c * (prob_fg - prob_fg_full) for p_c in probs
        )
        response_times = tuple(
            q / r if r > 0 else float("nan") for q, r in zip(bg_qlens, admit_rates)
        )

        return MulticlassSolution(
            fg_queue_length=fg_qlen,
            bg_queue_lengths=tuple(bg_qlens),
            fg_delayed_fraction=delayed / fg_present if fg_present > 0 else 0.0,
            bg_completion_rate=completion,
            bg_throughputs=throughputs,
            bg_response_times=response_times,
            fg_server_share=prob_fg,
            bg_server_shares=bg_shares,
            qbd_solution=sol,
        )
