"""Model-level entry point of the batched matrix-geometric kernel.

:func:`solve_models_batched` solves many :class:`~repro.core.model.FgBgModel`
instances through :func:`repro.qbd.batched.solve_qbd_batched`: models are
grouped by QBD block shape (models with ``bg_probability`` below
``NEAR_ZERO_BG_PROBABILITY`` build their chain without background states
and therefore land in their own group), each group runs as one stacked
solve, and the per-model metrics come out of the same
:func:`~repro.core.metrics.compute_metrics` pipeline as a sequential
``model.solve()`` -- so batched and sequential solutions agree to solver
tolerance (including the deliberate NaN ``bg_completion_rate`` of the
near-zero-``p`` group).

With ``on_error="skip"|"collect"`` a poisoned item no longer sinks its
group: its solution slot is ``None``, its failure is reported (with its
index remapped to the *input* model order) in the group's
:class:`~repro.qbd.batched.BatchedSolveReport`, and every other item
solves normally.  ``escalate=True`` additionally routes failed items
through the truncated dense-chain rung before giving up on them.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import replace
from typing import Literal, cast, overload

from repro.core.metrics import compute_metrics
from repro.core.model import FgBgModel
from repro.core.result import FgBgSolution
from repro.qbd.batched import (
    BatchedItemFailure,
    BatchedSolveReport,
    solve_qbd_batched,
)

__all__ = ["solve_models_batched"]


@overload
def solve_models_batched(
    models: Iterable[FgBgModel],
    tol: float = ...,
    return_reports: Literal[False] = ...,
    on_error: Literal["raise"] = ...,
    escalate: bool = ...,
) -> list[FgBgSolution]: ...


@overload
def solve_models_batched(
    models: Iterable[FgBgModel],
    tol: float = ...,
    *,
    return_reports: Literal[True],
    on_error: Literal["raise"] = ...,
    escalate: bool = ...,
) -> tuple[list[FgBgSolution], list[BatchedSolveReport]]: ...


@overload
def solve_models_batched(
    models: Iterable[FgBgModel],
    tol: float = ...,
    *,
    return_reports: Literal[True],
    on_error: str,
    escalate: bool = ...,
) -> tuple[list[FgBgSolution | None], list[BatchedSolveReport]]: ...


def solve_models_batched(
    models: Iterable[FgBgModel],
    tol: float = 1e-12,
    return_reports: bool = False,
    on_error: str = "raise",
    escalate: bool = False,
) -> (
    list[FgBgSolution]
    | list[FgBgSolution | None]
    | tuple[list[FgBgSolution | None], list[BatchedSolveReport]]
):
    """Solve many models through the batched kernel; order is preserved.

    Parameters
    ----------
    models:
        Non-empty sequence of :class:`~repro.core.model.FgBgModel`
        instances.  Shapes may be mixed -- grouping happens here.
    tol:
        R-iteration tolerance (matches ``model.solve(tol=...)``).
    return_reports:
        When True, also return one :class:`BatchedSolveReport` per shape
        group, in first-appearance order; failure indices inside the
        reports refer to the *input* model order.
    on_error:
        ``"raise"`` (default) propagates the first failure; ``"skip"`` /
        ``"collect"`` isolate failures per item -- the failed model's
        solution slot is ``None`` and its failure is reported, while the
        rest of its shape group solves normally.
    escalate:
        Route items the matrix-geometric pipeline fails through the
        truncated dense-chain rung before giving up (see
        :func:`repro.qbd.batched.solve_qbd_batched`).

    Raises
    ------
    ValueError
        If ``models`` is empty, or (in ``"raise"`` mode) any model is
        unstable -- the same message a sequential ``model.solve()``
        raises, before any solving starts.  Unstable models are never
        escalated: no stationary regime exists to degrade to.
    """
    models = list(models)
    if not models:
        raise ValueError("solve_models_batched needs at least one model")
    failures: dict[int, BatchedItemFailure] = {}
    for index, model in enumerate(models):
        if not isinstance(model, FgBgModel):
            raise TypeError(
                f"expected FgBgModel instances, got {type(model).__name__}"
            )
        if not model.is_stable:
            error = ValueError(
                f"model is unstable: foreground utilization "
                f"{model.fg_utilization:.4g} >= 1; no stationary regime exists"
            )
            if on_error == "raise":
                raise error
            failures[index] = BatchedItemFailure(
                index=index,
                stage="precheck",
                error_type="ValueError",
                message=str(error),
                error=error,
            )
    groups: dict[tuple[int, int], list[int]] = {}
    for index, model in enumerate(models):
        if index in failures:
            continue
        qbd = model.qbd
        groups.setdefault((qbd.boundary_size, qbd.phase_count), []).append(
            index
        )
    solutions: list[FgBgSolution | None] = [None] * len(models)
    reports: list[BatchedSolveReport] = []
    for (boundary_size, phase_count), indices in groups.items():
        distributions, report = solve_qbd_batched(
            [models[i].qbd for i in indices],
            tol=tol,
            return_report=True,
            on_error=on_error,
            escalate=escalate,
        )
        # Group-local failure indices -> input model order.
        group_failures = tuple(
            replace(f, index=indices[f.index]) for f in report.failures
        )
        reports.append(replace(report, failures=group_failures))
        for i, distribution in zip(indices, distributions):
            if distribution is None:
                continue
            model = models[i]
            solutions[i] = compute_metrics(
                space=model.state_space,
                qbd_solution=distribution,
                arrival=model.arrival,
                service_rate=model.service_rate,
                bg_probability=model.bg_probability,
            )
    if failures:
        # Precheck failures (unstable models) never reached a shape
        # group; report them in a synthetic zero-work report so callers
        # see every failure through the same channel.
        reports.append(
            BatchedSolveReport(
                batch_size=len(failures),
                phase_count=0,
                iterations=0,
                max_iterations=0,
                wall_time_ms=0.0,
                failures=tuple(failures[i] for i in sorted(failures)),
            )
        )
    if on_error == "raise":
        # Every index belongs to exactly one group and no failure was
        # isolated, so no slot is left None; the cast records that
        # invariant for the type checker.
        solved = cast("list[FgBgSolution]", solutions)
        if return_reports:
            return solved, reports
        return solved
    if return_reports:
        return solutions, reports
    return solutions
