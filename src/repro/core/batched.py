"""Model-level entry point of the batched matrix-geometric kernel.

:func:`solve_models_batched` solves many :class:`~repro.core.model.FgBgModel`
instances through :func:`repro.qbd.batched.solve_qbd_batched`: models are
grouped by QBD block shape (models with ``bg_probability`` below
``NEAR_ZERO_BG_PROBABILITY`` build their chain without background states
and therefore land in their own group), each group runs as one stacked
solve, and the per-model metrics come out of the same
:func:`~repro.core.metrics.compute_metrics` pipeline as a sequential
``model.solve()`` -- so batched and sequential solutions agree to solver
tolerance (including the deliberate NaN ``bg_completion_rate`` of the
near-zero-``p`` group).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Literal, cast, overload

from repro.core.metrics import compute_metrics
from repro.core.model import FgBgModel
from repro.core.result import FgBgSolution
from repro.qbd.batched import BatchedSolveReport, solve_qbd_batched

__all__ = ["solve_models_batched"]


@overload
def solve_models_batched(
    models: Iterable[FgBgModel],
    tol: float = ...,
    return_reports: Literal[False] = ...,
) -> list[FgBgSolution]: ...


@overload
def solve_models_batched(
    models: Iterable[FgBgModel],
    tol: float = ...,
    *,
    return_reports: Literal[True],
) -> tuple[list[FgBgSolution], list[BatchedSolveReport]]: ...


def solve_models_batched(
    models: Iterable[FgBgModel],
    tol: float = 1e-12,
    return_reports: bool = False,
) -> list[FgBgSolution] | tuple[list[FgBgSolution], list[BatchedSolveReport]]:
    """Solve many models through the batched kernel; order is preserved.

    Parameters
    ----------
    models:
        Non-empty sequence of :class:`~repro.core.model.FgBgModel`
        instances.  Shapes may be mixed -- grouping happens here.
    tol:
        R-iteration tolerance (matches ``model.solve(tol=...)``).
    return_reports:
        When True, also return one :class:`BatchedSolveReport` per shape
        group, in first-appearance order.

    Raises
    ------
    ValueError
        If ``models`` is empty or any model is unstable (same message a
        sequential ``model.solve()`` raises, before any solving starts).
    """
    models = list(models)
    if not models:
        raise ValueError("solve_models_batched needs at least one model")
    for model in models:
        if not isinstance(model, FgBgModel):
            raise TypeError(
                f"expected FgBgModel instances, got {type(model).__name__}"
            )
        if not model.is_stable:
            raise ValueError(
                f"model is unstable: foreground utilization "
                f"{model.fg_utilization:.4g} >= 1; no stationary regime exists"
            )
    groups: dict[tuple[int, int], list[int]] = {}
    for index, model in enumerate(models):
        qbd = model.qbd
        groups.setdefault((qbd.boundary_size, qbd.phase_count), []).append(
            index
        )
    solutions: list[FgBgSolution | None] = [None] * len(models)
    reports: list[BatchedSolveReport] = []
    for indices in groups.values():
        distributions, report = solve_qbd_batched(
            [models[i].qbd for i in indices], tol=tol, return_report=True
        )
        reports.append(report)
        for i, distribution in zip(indices, distributions):
            model = models[i]
            solutions[i] = compute_metrics(
                space=model.state_space,
                qbd_solution=distribution,
                arrival=model.arrival,
                service_rate=model.service_rate,
                bg_probability=model.bg_probability,
            )
    # Every index belongs to exactly one group, so no slot is left None;
    # the cast records that invariant for the type checker.
    solved = cast("list[FgBgSolution]", solutions)
    if return_reports:
        return solved, reports
    return solved
