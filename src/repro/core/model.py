"""The user-facing foreground/background performability model.

``FgBgModel`` assembles the QBD of the paper's Section 4 from an arrival
MAP, exponential service, the background-spawn probability ``p``, the finite
background buffer and the idle-wait timer; ``solve()`` runs the
matrix-geometric method and returns every metric of Section 5.

Example
-------
>>> from repro.core import FgBgModel
>>> from repro.processes import PoissonProcess
>>> model = FgBgModel(
...     arrival=PoissonProcess(0.05),
...     service_rate=1 / 6.0,
...     bg_probability=0.3,
... )
>>> solution = model.solve()
>>> 0 < solution.bg_completion_rate <= 1
True
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from functools import cached_property

import numpy as np

from repro.contracts.checks import (
    check_generator,
    check_readonly,
    contracts_enabled,
)
from repro.core.blocks import BgServiceMode, build_qbd
from repro.core.metrics import NEAR_ZERO_BG_PROBABILITY, compute_metrics
from repro.core.result import FgBgSolution
from repro.core.states import StateSpace
from repro.processes.map_process import MarkovianArrivalProcess
from repro.qbd.stationary import solve_qbd
from repro.qbd.structure import QBDProcess

__all__ = ["FgBgModel", "BgServiceMode"]

#: Background buffer size used throughout the paper ("a buffer that stores a
#: maximum of 5 background jobs").
DEFAULT_BG_BUFFER = 5


@dataclass(frozen=True)
class FgBgModel:
    """Analytic model of a storage server with background jobs.

    Parameters
    ----------
    arrival:
        Arrival MAP/MMPP of foreground jobs.
    service_rate:
        Exponential service rate ``mu`` shared by foreground and background
        jobs (the paper's WRITE-verification scenario: identical demands).
    bg_probability:
        Probability ``p`` that a completing foreground job spawns a
        background job.
    bg_buffer:
        Background buffer size ``X``; spawned jobs finding it full are
        dropped.  Default 5 as in the paper.
    idle_wait_rate:
        Rate ``alpha`` of the exponential idle wait before background
        service starts.  ``None`` (default) sets the *mean* idle wait equal
        to the mean service time, the paper's default.
    bg_mode:
        Background scheduling within an idle period; see
        :class:`BgServiceMode`.
    """

    arrival: MarkovianArrivalProcess
    service_rate: float
    bg_probability: float
    bg_buffer: int = DEFAULT_BG_BUFFER
    idle_wait_rate: float | None = None
    bg_mode: BgServiceMode = BgServiceMode.BACK_TO_BACK

    def __post_init__(self) -> None:
        if not isinstance(self.arrival, MarkovianArrivalProcess):
            raise TypeError(
                f"arrival must be a MarkovianArrivalProcess, got {type(self.arrival).__name__}"
            )
        if self.service_rate <= 0:
            raise ValueError(f"service_rate must be positive, got {self.service_rate}")
        if not 0 <= self.bg_probability <= 1:
            raise ValueError(
                f"bg_probability must lie in [0, 1], got {self.bg_probability}"
            )
        if self.bg_buffer < 0:
            raise ValueError(f"bg_buffer must be >= 0, got {self.bg_buffer}")
        if self.idle_wait_rate is not None and self.idle_wait_rate <= 0:
            raise ValueError(
                f"idle_wait_rate must be positive, got {self.idle_wait_rate}"
            )
        if contracts_enabled():
            # The arrival MAP is the only externally supplied matrix data;
            # its phase process must be a generator and its matrices must
            # be frozen (the fingerprint/caching machinery assumes both).
            check_readonly(self.arrival.d0, "arrival.d0")
            check_readonly(self.arrival.d1, "arrival.d1")
            # A MAP constructed through MarkovianArrivalProcess certifies
            # D0+D1 at construction; with both matrices read-only the
            # certificate cannot go stale, so a sweep deriving thousands
            # of models from one arrival validates it once, not per model.
            if not getattr(self.arrival, "_generator_validated", False):
                check_generator(
                    self.arrival.d0 + self.arrival.d1, "arrival D0+D1"
                )

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------
    @property
    def effective_idle_wait_rate(self) -> float:
        """The idle-wait rate actually used (defaults to ``service_rate``)."""
        return self.service_rate if self.idle_wait_rate is None else self.idle_wait_rate

    @property
    def fg_utilization(self) -> float:
        """Offered foreground load ``lambda / mu``."""
        return self.arrival.mean_rate / self.service_rate

    @property
    def is_stable(self) -> bool:
        """True when the foreground load is below 1 (positive recurrence)."""
        return self.fg_utilization < 1.0

    #: Below this spawn probability the background states are numerically
    #: unreachable (rates underflow in the linear algebra), so the chain is
    #: built without them; ``bg_completion_rate`` is then a deliberate NaN
    #: (see :mod:`repro.core.metrics`), all other metrics stay consistent.
    _NEAR_ZERO_P = NEAR_ZERO_BG_PROBABILITY

    @cached_property
    def _effective_bg_buffer(self) -> int:
        # With p ~ 0 no background job is (numerically) ever spawned;
        # building the chain with X = 0 removes the unreachable background
        # states and keeps the phase process irreducible.
        return 0 if self.bg_probability < self._NEAR_ZERO_P else self.bg_buffer

    @cached_property
    def _qbd_and_space(self) -> tuple[QBDProcess, StateSpace]:
        return build_qbd(
            arrival=self.arrival,
            service_rate=self.service_rate,
            bg_probability=self.bg_probability,
            bg_buffer=self._effective_bg_buffer,
            idle_wait_rate=self.effective_idle_wait_rate,
            bg_mode=self.bg_mode,
        )

    @property
    def qbd(self) -> QBDProcess:
        """The assembled QBD blocks (for inspection or custom solvers)."""
        return self._qbd_and_space[0]

    @property
    def state_space(self) -> StateSpace:
        """The state-space indexing of the chain."""
        return self._qbd_and_space[1]

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        algorithm: str = "logarithmic-reduction",
        tol: float = 1e-12,
        initial_r: np.ndarray | None = None,
        escalate: bool = False,
    ) -> FgBgSolution:
        """Solve the model and return all stationary metrics.

        Parameters
        ----------
        algorithm:
            R-matrix algorithm: ``"logarithmic-reduction"`` (default),
            ``"newton"``, ``"natural"`` or ``"functional"``.
        tol:
            Convergence tolerance of the R iteration.
        initial_r:
            Optional warm-start iterate for the R matrix, e.g.
            ``solution.qbd_solution.r`` of a nearby parameter point; see
            :func:`repro.qbd.rmatrix.r_matrix`.  Warm-started results
            agree with cold solves to solver tolerance.
        escalate:
            Enable the truncated dense-chain rung of the escalation
            ladder (see :func:`repro.qbd.stationary.solve_qbd`): when
            every R iteration fails, the metrics come from an adaptively
            truncated dense solve and
            ``solution.qbd_solution.solve_stats.degraded`` is True.

        Raises
        ------
        ValueError
            If the model is unstable (``fg_utilization >= 1``) -- with or
            without ``escalate``; degradation never fabricates a
            stationary regime.
        """
        if not self.is_stable:
            raise ValueError(
                f"model is unstable: foreground utilization "
                f"{self.fg_utilization:.4g} >= 1; no stationary regime exists"
            )
        qbd, space = self._qbd_and_space
        qbd_solution = solve_qbd(
            qbd, algorithm=algorithm, tol=tol, initial_r=initial_r,
            escalate=escalate,
        )
        return compute_metrics(
            space=space,
            qbd_solution=qbd_solution,
            arrival=self.arrival,
            service_rate=self.service_rate,
            bg_probability=self.bg_probability,
        )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the frozen model fields (hex SHA-256).

        Two models with identical solve-relevant content -- arrival
        matrices, service rate, background probability, buffer size,
        *effective* idle-wait rate and scheduling mode -- share a
        fingerprint, which makes it usable as a content-addressed cache
        key for solves (see :mod:`repro.engine`).
        """
        h = hashlib.sha256()
        h.update(b"FgBgModel/v1")
        d0 = np.ascontiguousarray(self.arrival.d0)
        d1 = np.ascontiguousarray(self.arrival.d1)
        h.update(repr(d0.shape).encode())
        h.update(d0.tobytes())
        h.update(d1.tobytes())
        for value in (
            self.service_rate,
            self.bg_probability,
            self.effective_idle_wait_rate,
        ):
            h.update(float(value).hex().encode())
        h.update(str(self.bg_buffer).encode())
        h.update(self.bg_mode.value.encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # Convenience sweep constructors
    # ------------------------------------------------------------------
    def at_utilization(self, utilization: float) -> "FgBgModel":
        """Copy of this model with the arrival process rescaled to the given
        foreground utilization (ACF and CV preserved)."""
        scaled = self.arrival.scaled_to_utilization(utilization, self.service_rate)
        return replace(self, arrival=scaled)

    def with_bg_probability(self, p: float) -> "FgBgModel":
        """Copy of this model with a different background probability."""
        return replace(self, bg_probability=p)

    def with_idle_wait_multiple(self, multiple: float) -> "FgBgModel":
        """Copy whose *mean* idle wait is ``multiple`` mean service times.

        ``multiple = 2`` waits twice the mean service time, i.e. the rate is
        ``service_rate / 2`` (the x-axis of the paper's Figures 9-10).
        """
        if multiple <= 0:
            raise ValueError(f"multiple must be positive, got {multiple}")
        return replace(self, idle_wait_rate=self.service_rate / multiple)

    def __repr__(self) -> str:
        return (
            f"FgBgModel(arrival={self.arrival!r}, service_rate={self.service_rate:.6g}, "
            f"bg_probability={self.bg_probability}, bg_buffer={self.bg_buffer}, "
            f"idle_wait_rate={self.effective_idle_wait_rate:.6g}, "
            f"bg_mode={self.bg_mode.value!r})"
        )
