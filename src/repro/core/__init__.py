"""The paper's contribution: the foreground/background performability model.

* :mod:`~repro.core.states` -- enumeration of the Markov chain of the
  paper's Figure 3 (boundary levels ``0..X`` plus the repeating level).
* :mod:`~repro.core.blocks` -- QBD generator blocks, including the MMPP/MAP
  lifting of Figure 4 (matrices F, B, W, L of the paper's Eq. 6).
* :mod:`~repro.core.model` -- :class:`FgBgModel`, the user-facing model.
* :mod:`~repro.core.metrics` -- the paper's performance metrics.
* :mod:`~repro.core.result` -- :class:`FgBgSolution`, the solved metrics.
* :mod:`~repro.core.multiclass` -- extension: several background classes.
"""

from repro.core.batch import BatchFgBgModel, BatchFgBgSolution
from repro.core.batched import solve_models_batched
from repro.core.distributions import (
    bg_queue_length_pmf,
    fg_queue_length_pmf,
    fg_queue_length_quantile,
)
from repro.core.idle_period import IdlePeriodAnalysis, analyze_idle_periods
from repro.core.metrics import METRICS, Metric, resolve_metric
from repro.core.model import BgServiceMode, FgBgModel
from repro.core.multiclass import MulticlassFgBgModel, MulticlassSolution
from repro.core.ph_service import PhServiceFgBgModel, PhServiceSolution
from repro.core.result import FgBgSolution
from repro.core.states import StateKind, StateSpace

__all__ = [
    "BatchFgBgModel",
    "BatchFgBgSolution",
    "BgServiceMode",
    "FgBgModel",
    "FgBgSolution",
    "METRICS",
    "Metric",
    "resolve_metric",
    "IdlePeriodAnalysis",
    "analyze_idle_periods",
    "MulticlassFgBgModel",
    "MulticlassSolution",
    "PhServiceFgBgModel",
    "PhServiceSolution",
    "StateKind",
    "StateSpace",
    "bg_queue_length_pmf",
    "fg_queue_length_pmf",
    "fg_queue_length_quantile",
    "solve_models_batched",
]
