"""Computation of the paper's metrics from the QBD stationary distribution.

The closed-form tail sums of the matrix-geometric solution make every metric
exact: with ``pi_k = pi_1 R^{k-1}``,

* ``sum_k pi_k = pi_1 (I-R)^{-1}`` and
* ``sum_k k pi_k = pi_1 (I-R)^{-2}``

give queue lengths; restriction masks over the state space give the
conditional probabilities behind ``WaitP_FG`` and ``Comp_BG``.

The module also hosts the string-keyed metric registry :data:`METRICS`
(``METRICS["qlen_fg"]``, ...) through which the CLI, the figures and the
sweep engine select metrics by name instead of ad-hoc callables.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.result import FgBgSolution
from repro.core.states import StateKind, StateSpace
from repro.processes.map_process import MarkovianArrivalProcess
from repro.qbd.stationary import QBDStationaryDistribution

__all__ = [
    "METRICS",
    "Metric",
    "NEAR_ZERO_BG_PROBABILITY",
    "compute_metrics",
    "resolve_metric",
]

#: Below this spawn probability the background states are numerically
#: unreachable (their rates underflow in the linear algebra), so the chain
#: is built without them and background metrics are undefined.
NEAR_ZERO_BG_PROBABILITY = 1e-9


def _phase_rate_mass(
    pi: np.ndarray, mask: np.ndarray, d1: np.ndarray, phases: int
) -> float:
    """``sum over masked states of pi D1 e``, i.e. the arrival rate
    experienced while the chain sits in the masked states."""
    rate_per_phase = d1 @ np.ones(phases)
    return float((pi * mask) @ np.tile(rate_per_phase, pi.shape[0] // phases))


def compute_metrics(
    space: StateSpace,
    qbd_solution: QBDStationaryDistribution,
    arrival: MarkovianArrivalProcess,
    service_rate: float,
    bg_probability: float,
) -> FgBgSolution:
    """Evaluate all model metrics from a solved QBD."""
    pi_b = qbd_solution.boundary
    rep_mass = qbd_solution.repeating_mass
    rep_weighted = qbd_solution.repeating_level_weighted
    x_max = space.bg_buffer
    mu = float(service_rate)
    p = float(bg_probability)
    lam = arrival.mean_rate

    fg_mask_b = space.boundary_kind_mask(StateKind.FG)
    bg_mask_b = space.boundary_kind_mask(StateKind.BG)
    idle_mask_b = space.boundary_kind_mask(StateKind.IDLE)
    fg_mask_r = space.repeating_kind_mask(StateKind.FG)
    bg_mask_r = space.repeating_kind_mask(StateKind.BG)

    prob_fg_serving = float(pi_b @ fg_mask_b + rep_mass @ fg_mask_r)
    prob_bg_serving = float(pi_b @ bg_mask_b + rep_mass @ bg_mask_r)
    prob_idle = float(pi_b @ idle_mask_b)

    # Mean queue lengths.  In a repeating level k (physical level X + k) a
    # state of group bg-count x holds y = X + k - x foreground jobs.
    x_r = space.repeating_bg_counts
    fg_qlen = float(
        pi_b @ space.boundary_fg_counts
        + rep_mass @ (x_max - x_r)
        + rep_weighted.sum()
    )
    bg_qlen = float(pi_b @ space.boundary_bg_counts + rep_mass @ x_r)

    # WaitP_FG: P(BG holds the server | FG present).  In the repeating
    # portion every state has y >= 1.
    delayed_num = float(
        pi_b @ space.boundary_bg_busy_fg_waiting_mask + rep_mass @ bg_mask_r
    )
    fg_present = float(
        pi_b @ (fg_mask_b + space.boundary_bg_busy_fg_waiting_mask)
        + rep_mass.sum()
    )
    fg_delayed_fraction = delayed_num / fg_present if fg_present > 0 else 0.0

    # Arrival-average variant: fraction of FG arrivals that occur while a
    # background job holds the server (those arrivals must wait behind it).
    d1 = arrival.d1
    a = space.phases
    arrivals_into_bg = _phase_rate_mass(pi_b, bg_mask_b, d1, a) + _phase_rate_mass(
        rep_mass, bg_mask_r, d1, a
    )
    fg_arrival_delayed_fraction = arrivals_into_bg / lam

    # Comp_BG: background jobs are spawned at rate mu*p in every FG-serving
    # state and dropped exactly in the FG states with a full buffer (which
    # exist only in the repeating portion).
    prob_fg_full = float(rep_mass @ space.repeating_bg_full_fg_mask)
    if p < NEAR_ZERO_BG_PROBABILITY:
        # Deliberate NaN: below this threshold the chain is built without
        # background states (see FgBgModel), so "fraction of spawned BG
        # jobs admitted" has no measurable value -- every mask-based
        # estimate would be an artifact of the degenerate X = 0 chain.
        # This also covers exactly p = 0, where no BG job is ever spawned.
        bg_completion_rate = float("nan")
    elif prob_fg_serving > 0:
        bg_completion_rate = 1.0 - prob_fg_full / prob_fg_serving
    else:
        bg_completion_rate = float("nan")

    bg_spawn_rate = mu * p * prob_fg_serving
    bg_drop_rate = mu * p * prob_fg_full
    bg_throughput = mu * prob_bg_serving
    fg_throughput = mu * prob_fg_serving

    fg_response_time = fg_qlen / lam
    bg_accept_rate = bg_spawn_rate - bg_drop_rate
    bg_response_time = bg_qlen / bg_accept_rate if bg_accept_rate > 0 else float("nan")

    return FgBgSolution(
        fg_queue_length=fg_qlen,
        bg_queue_length=bg_qlen,
        fg_delayed_fraction=fg_delayed_fraction,
        fg_arrival_delayed_fraction=fg_arrival_delayed_fraction,
        bg_completion_rate=bg_completion_rate,
        fg_server_share=prob_fg_serving,
        bg_server_share=prob_bg_serving,
        idle_probability=prob_idle,
        fg_throughput=fg_throughput,
        bg_throughput=bg_throughput,
        bg_spawn_rate=bg_spawn_rate,
        bg_drop_rate=bg_drop_rate,
        fg_response_time=fg_response_time,
        bg_response_time=bg_response_time,
        fg_utilization=lam / mu,
        qbd_solution=qbd_solution,
    )


# ----------------------------------------------------------------------
# Metric registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Metric:
    """A named scalar metric extracted from an :class:`FgBgSolution`.

    Calling the metric with a solution returns the scalar value, so a
    ``Metric`` can be used anywhere a ``Callable[[FgBgSolution], float]``
    is expected.
    """

    key: str
    label: str
    description: str
    func: Callable[[FgBgSolution], float]

    def __call__(self, solution: FgBgSolution) -> float:
        return self.func(solution)


def _metric(key: str, attr: str, label: str, description: str) -> Metric:
    return Metric(
        key=key,
        label=label,
        description=description,
        func=lambda s, _attr=attr: getattr(s, _attr),
    )


#: String-keyed registry of every scalar metric.  The four paper metrics
#: come first under their paper-style keys; every other scalar field of
#: :class:`FgBgSolution` is exposed under its field name.
METRICS: dict[str, Metric] = {
    m.key: m
    for m in (
        _metric(
            "qlen_fg", "fg_queue_length", "FG mean queue length",
            "Mean number of foreground jobs in system (paper QLEN_FG).",
        ),
        _metric(
            "qlen_bg", "bg_queue_length", "BG mean queue length",
            "Mean number of background jobs in system (paper QLEN_BG).",
        ),
        _metric(
            "waitp_fg", "fg_delayed_fraction", "fraction of FG delayed",
            "P(background job holds the server | FG present) "
            "(paper WaitP_FG).",
        ),
        _metric(
            "comp_bg", "bg_completion_rate", "BG completion rate",
            "Fraction of spawned background jobs admitted "
            "(paper Comp_BG; NaN when bg_probability ~ 0).",
        ),
        _metric(
            "fg_arrival_delayed_fraction", "fg_arrival_delayed_fraction",
            "fraction of FG arrivals delayed",
            "Fraction of FG arrivals that find a BG job in service.",
        ),
        _metric(
            "fg_server_share", "fg_server_share", "FG server share",
            "Long-run fraction of time the server works on FG jobs.",
        ),
        _metric(
            "bg_server_share", "bg_server_share", "BG server share",
            "Long-run fraction of time the server works on BG jobs.",
        ),
        _metric(
            "idle_probability", "idle_probability", "idle probability",
            "Long-run fraction of time the server is idle (incl. "
            "idle-wait).",
        ),
        _metric(
            "fg_throughput", "fg_throughput", "FG throughput",
            "Foreground completions per ms (equals the arrival rate).",
        ),
        _metric(
            "bg_throughput", "bg_throughput", "BG throughput",
            "Background completions per ms.",
        ),
        _metric(
            "bg_spawn_rate", "bg_spawn_rate", "BG spawn rate",
            "Background jobs spawned per ms (admitted or not).",
        ),
        _metric(
            "bg_drop_rate", "bg_drop_rate", "BG drop rate",
            "Background jobs dropped (buffer full) per ms.",
        ),
        _metric(
            "fg_response_time", "fg_response_time", "FG response time (ms)",
            "Mean foreground response time via Little's law.",
        ),
        _metric(
            "bg_response_time", "bg_response_time", "BG response time (ms)",
            "Mean background response time over admitted jobs.",
        ),
        _metric(
            "fg_utilization", "fg_utilization", "FG utilization",
            "Offered foreground load lambda / mu.",
        ),
    )
}


def resolve_metric(
    metric: str | Callable[[FgBgSolution], float],
) -> Callable[[FgBgSolution], float]:
    """Turn a registry key or a plain callable into a metric callable."""
    if callable(metric):
        return metric
    try:
        return METRICS[metric]
    except KeyError:
        raise KeyError(
            f"unknown metric {metric!r}; choose from {sorted(METRICS)} "
            "or pass a callable"
        ) from None
