"""Extension: phase-type service and idle wait (the paper's footnote 3).

The paper assumes exponential service but notes that "a similar method and
Kronecker products can be used to generate the auxiliary matrices F, B, W,
and L when [using] a MMPP (or MAP) for the service and idle waiting
processes".  This module implements exactly that lifting: serving states
carry the product phase (arrival phase x service phase), idle-wait states
with buffered background work carry (arrival phase x wait phase), and the
empty state carries only the arrival phase.

With ``PhaseType.exponential(...)`` for both the model reduces to
:class:`~repro.core.model.FgBgModel` (verified in the test-suite).  Erlang
services model the low-variability disks of the paper's trace table
(service CV < 1), hyperexponential ones stress the opposite regime, and an
Erlang idle wait approximates the *deterministic* timers real firmware
uses.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.blocks import BgServiceMode
from repro.core.states import StateKind, StateSpace
from repro.processes.map_process import MarkovianArrivalProcess
from repro.processes.ph import PhaseType
from repro.qbd.stationary import QBDStationaryDistribution, solve_qbd
from repro.qbd.structure import QBDProcess

__all__ = ["PhServiceFgBgModel", "PhServiceSolution"]


@dataclass(frozen=True)
class PhServiceSolution:
    """Stationary metrics of the PH-service model."""

    #: Mean number of foreground jobs in system.
    fg_queue_length: float
    #: Mean number of background jobs in system.
    bg_queue_length: float
    #: P(background job in service | foreground present).
    fg_delayed_fraction: float
    #: Fraction of spawned background jobs admitted.
    bg_completion_rate: float
    #: Fraction of time the server works on foreground jobs.
    fg_server_share: float
    #: Fraction of time the server works on background jobs.
    bg_server_share: float
    #: Mean foreground response time (Little's law).
    fg_response_time: float
    #: The underlying QBD solution.
    qbd_solution: QBDStationaryDistribution


@dataclass(frozen=True)
class PhServiceFgBgModel:
    """FG/BG model with phase-type service times.

    Parameters
    ----------
    arrival:
        Foreground arrival MAP.
    service:
        PH distribution of the (shared) service time.
    bg_probability:
        Probability that a completing foreground job spawns a background
        job.
    bg_buffer:
        Background buffer size ``X >= 1``.
    idle_wait_rate:
        Rate of an *exponential* idle wait; ``None`` uses
        ``1 / service.mean`` (the paper's "mean idle wait equals the mean
        service time").  Mutually exclusive with ``idle_wait_ph``.
    idle_wait_ph:
        PH distribution of the idle wait, samples in ms (e.g.
        ``PhaseType.erlang(8, ...)`` for a near-deterministic firmware
        timer).  Mutually exclusive with ``idle_wait_rate``.
    bg_mode:
        Background scheduling within an idle period.
    """

    arrival: MarkovianArrivalProcess
    service: PhaseType
    bg_probability: float
    bg_buffer: int = 5
    idle_wait_rate: float | None = None
    idle_wait_ph: PhaseType | None = None
    bg_mode: BgServiceMode = BgServiceMode.BACK_TO_BACK

    def __post_init__(self) -> None:
        if not isinstance(self.arrival, MarkovianArrivalProcess):
            raise TypeError(
                f"arrival must be a MarkovianArrivalProcess, got {type(self.arrival).__name__}"
            )
        if not isinstance(self.service, PhaseType):
            raise TypeError(
                f"service must be a PhaseType, got {type(self.service).__name__}"
            )
        if not 0 < self.bg_probability <= 1:
            raise ValueError(
                "bg_probability must lie in (0, 1] for the PH-service model "
                f"(use FgBgModel with p = 0), got {self.bg_probability}"
            )
        if self.bg_buffer < 1:
            raise ValueError(f"bg_buffer must be >= 1, got {self.bg_buffer}")
        if self.idle_wait_rate is not None and self.idle_wait_rate <= 0:
            raise ValueError(
                f"idle_wait_rate must be positive, got {self.idle_wait_rate}"
            )
        if self.idle_wait_rate is not None and self.idle_wait_ph is not None:
            raise ValueError("pass idle_wait_rate or idle_wait_ph, not both")
        if self.idle_wait_ph is not None and not isinstance(self.idle_wait_ph, PhaseType):
            raise TypeError(
                f"idle_wait_ph must be a PhaseType, got {type(self.idle_wait_ph).__name__}"
            )

    @property
    def wait_distribution(self) -> PhaseType:
        """The idle-wait distribution actually used.

        Defaults to an exponential whose mean equals the mean service time
        (the paper's choice).
        """
        if self.idle_wait_ph is not None:
            return self.idle_wait_ph
        if self.idle_wait_rate is not None:
            return PhaseType.exponential(self.idle_wait_rate)
        return PhaseType.exponential(1.0 / self.service.mean)

    @property
    def fg_utilization(self) -> float:
        """Offered foreground load ``lambda * E[S]``."""
        return self.arrival.mean_rate * self.service.mean

    # ------------------------------------------------------------------
    # State layout: same groups as the exponential model, but serving
    # groups are A*S wide and idle groups A wide.
    # ------------------------------------------------------------------
    @cached_property
    def _space(self) -> StateSpace:
        return StateSpace(self.bg_buffer, self.arrival.order)

    def _group_width(self, kind: StateKind, bg: int) -> int:
        a = self.arrival.order
        if kind is StateKind.IDLE:
            # The empty state has no timer; waiting states carry its phase.
            return a if bg == 0 else a * self.wait_distribution.order
        return a * self.service.order

    @cached_property
    def _boundary_offsets(self) -> list[int]:
        offsets = []
        pos = 0
        for g in self._space.boundary_groups:
            offsets.append(pos)
            pos += self._group_width(g.kind, g.bg)
        offsets.append(pos)
        return offsets

    @cached_property
    def _qbd(self) -> QBDProcess:
        space = self._space
        a = self.arrival.order
        s = self.service.order
        d0, d1 = self.arrival.d0, self.arrival.d1
        t = self.service.t
        t0 = self.service.exit_vector  # column of absorption rates
        alpha_vec = self.service.alpha  # row: initial service phase
        wait_dist = self.wait_distribution
        w = wait_dist.order
        t_w = wait_dist.t
        t0_w = wait_dist.exit_vector
        alpha_w = wait_dist.alpha
        eye_s = np.eye(s)
        eye_a = np.eye(a)
        eye_w = np.eye(w)
        p = self.bg_probability
        x_max = space.bg_buffer
        back_to_back = self.bg_mode is BgServiceMode.BACK_TO_BACK

        # Building blocks of the Kronecker lifting.
        local_serving = np.kron(d0, eye_s) + np.kron(eye_a, t)
        arrive_serving = np.kron(d1, eye_s)
        arrive_idle_start = np.kron(d1, np.atleast_2d(alpha_vec))  # A x AS
        restart = np.kron(eye_a, np.outer(t0, alpha_vec))  # AS x AS
        finish = np.kron(eye_a, t0.reshape(-1, 1))  # AS x A (into the empty state)
        finish_wait = np.kron(eye_a, np.outer(t0, alpha_w))  # AS x AW
        local_waiting = np.kron(d0, eye_w) + np.kron(eye_a, t_w)  # AW x AW
        wait_start = np.kron(eye_a, np.outer(t0_w, alpha_vec))  # AW x AS
        # An arrival during the wait cancels the timer and starts service.
        arrive_cancel_wait = np.kron(
            d1, np.ones((w, 1)) @ np.atleast_2d(alpha_vec)
        )  # AW x AS

        offsets = self._boundary_offsets
        n_b = offsets[-1]
        m_groups = space.repeating_groups
        width = a * s
        m = len(m_groups) * width

        b00 = np.zeros((n_b, n_b))
        b01 = np.zeros((n_b, m))
        b10 = np.zeros((m, n_b))

        def bsl(kind: StateKind, bg: int, fg: int) -> slice:
            i = space.boundary_group_index(kind, bg, fg)
            return slice(offsets[i], offsets[i] + self._group_width(kind, bg))

        def rsl(kind: StateKind, bg: int) -> slice:
            i = space.repeating_group_index(kind, bg)
            return slice(i * width, (i + 1) * width)

        for g in space.boundary_groups:
            sl = bsl(g.kind, g.bg, g.fg)
            if g.kind is StateKind.IDLE:
                if g.bg == 0:
                    b00[sl, sl] += d0
                    arrive = arrive_idle_start
                else:
                    b00[sl, sl] += local_waiting
                    b00[sl, bsl(StateKind.BG, g.bg, 0)] += wait_start
                    arrive = arrive_cancel_wait
                if g.level + 1 <= x_max:
                    b00[sl, bsl(StateKind.FG, g.bg, 1)] += arrive
                else:
                    b01[sl, rsl(StateKind.FG, g.bg)] += arrive
            elif g.kind is StateKind.FG:
                b00[sl, sl] += local_serving
                if g.level + 1 <= x_max:
                    b00[sl, bsl(StateKind.FG, g.bg, g.fg + 1)] += arrive_serving
                else:
                    b01[sl, rsl(StateKind.FG, g.bg)] += arrive_serving
                x_up = min(g.bg + 1, x_max)
                if g.fg >= 2:
                    b00[sl, bsl(StateKind.FG, g.bg, g.fg - 1)] += (1 - p) * restart
                    b00[sl, bsl(StateKind.FG, x_up, g.fg - 1)] += p * restart
                else:
                    into_here = finish if g.bg == 0 else finish_wait
                    b00[sl, bsl(StateKind.IDLE, g.bg, 0)] += (1 - p) * into_here
                    # x_up >= 1 always: the spawn lands on a waiting state.
                    b00[sl, bsl(StateKind.IDLE, x_up, 0)] += p * finish_wait
            else:  # BG serving
                b00[sl, sl] += local_serving
                if g.level + 1 <= x_max:
                    b00[sl, bsl(StateKind.BG, g.bg, g.fg + 1)] += arrive_serving
                else:
                    b01[sl, rsl(StateKind.BG, g.bg)] += arrive_serving
                if g.fg >= 1:
                    b00[sl, bsl(StateKind.FG, g.bg - 1, g.fg)] += restart
                elif back_to_back and g.bg >= 2:
                    b00[sl, bsl(StateKind.BG, g.bg - 1, 0)] += restart
                elif g.bg == 1:
                    b00[sl, bsl(StateKind.IDLE, 0, 0)] += finish
                else:  # rewait mode with work left: draw a fresh timer
                    b00[sl, bsl(StateKind.IDLE, g.bg - 1, 0)] += finish_wait

        a0 = np.kron(np.eye(len(m_groups)), arrive_serving)
        a1 = np.zeros((m, m))
        a2 = np.zeros((m, m))
        for g in m_groups:
            sl = rsl(g.kind, g.bg)
            a1[sl, sl] += local_serving
            if g.kind is StateKind.FG:
                if g.bg < x_max:
                    a1[sl, rsl(StateKind.FG, g.bg + 1)] += p * restart
                    a2[sl, rsl(StateKind.FG, g.bg)] += (1 - p) * restart
                else:
                    a2[sl, rsl(StateKind.FG, g.bg)] += restart
            else:
                a2[sl, rsl(StateKind.FG, g.bg - 1)] += restart

        for g in m_groups:
            sl = rsl(g.kind, g.bg)
            y = x_max + 1 - g.bg
            if g.kind is StateKind.FG:
                if g.bg < x_max:
                    b10[sl, bsl(StateKind.FG, g.bg, y - 1)] += (1 - p) * restart
                else:
                    # bg_buffer >= 1, so I(X) is a waiting state.
                    b10[sl, bsl(StateKind.IDLE, x_max, 0)] += finish_wait
            else:
                b10[sl, bsl(StateKind.FG, g.bg - 1, y)] += restart

        return QBDProcess(b00=b00, b01=b01, b10=b10, a0=a0, a1=a1, a2=a2)

    # ------------------------------------------------------------------
    def solve(self, algorithm: str = "logarithmic-reduction") -> PhServiceSolution:
        """Solve the PH-service model and return its stationary metrics."""
        if self.fg_utilization >= 1.0:
            raise ValueError(
                f"model is unstable: foreground utilization "
                f"{self.fg_utilization:.4g} >= 1"
            )
        sol = solve_qbd(self._qbd, algorithm=algorithm)
        return self._metrics(sol)

    def _metrics(self, sol: QBDStationaryDistribution) -> PhServiceSolution:
        space = self._space
        lam = self.arrival.mean_rate
        x_max = space.bg_buffer
        groups_b = space.boundary_groups
        groups_r = space.repeating_groups

        def expand_b(values_per_group: Sequence[float]) -> np.ndarray:
            parts = [
                np.full(self._group_width(g.kind, g.bg), float(v))
                for g, v in zip(groups_b, values_per_group)
            ]
            return np.concatenate(parts)

        def expand_r(values_per_group: Sequence[float] | np.ndarray) -> np.ndarray:
            width = self.arrival.order * self.service.order
            return np.repeat(np.asarray(values_per_group, dtype=float), width)

        pi_b = sol.boundary
        rep_mass = sol.repeating_mass
        rep_weighted = sol.repeating_level_weighted

        fg_b = expand_b([1.0 if g.kind is StateKind.FG else 0.0 for g in groups_b])
        bg_b = expand_b([1.0 if g.kind is StateKind.BG else 0.0 for g in groups_b])
        blocked_b = expand_b(
            [1.0 if (g.kind is StateKind.BG and g.fg >= 1) else 0.0 for g in groups_b]
        )
        fg_r = expand_r([1.0 if g.kind is StateKind.FG else 0.0 for g in groups_r])
        bg_r = expand_r([1.0 if g.kind is StateKind.BG else 0.0 for g in groups_r])
        full_r = expand_r(
            [
                1.0 if (g.kind is StateKind.FG and g.bg == x_max) else 0.0
                for g in groups_r
            ]
        )

        prob_fg = float(pi_b @ fg_b + rep_mass @ fg_r)
        prob_bg = float(pi_b @ bg_b + rep_mass @ bg_r)
        prob_full = float(rep_mass @ full_r)

        y_b = expand_b([g.fg for g in groups_b])
        x_b = expand_b([g.bg for g in groups_b])
        x_r = expand_r([g.bg for g in groups_r])
        fg_qlen = float(pi_b @ y_b + rep_mass @ (x_max - x_r) + rep_weighted.sum())
        bg_qlen = float(pi_b @ x_b + rep_mass @ x_r)

        fg_present = float(pi_b @ (fg_b + blocked_b) + rep_mass.sum())
        delayed = float(pi_b @ blocked_b + rep_mass @ bg_r)

        return PhServiceSolution(
            fg_queue_length=fg_qlen,
            bg_queue_length=bg_qlen,
            fg_delayed_fraction=delayed / fg_present if fg_present > 0 else 0.0,
            bg_completion_rate=1.0 - prob_full / prob_fg if prob_fg > 0 else float("nan"),
            fg_server_share=prob_fg,
            bg_server_share=prob_bg,
            fg_response_time=fg_qlen / lam,
            qbd_solution=sol,
        )
