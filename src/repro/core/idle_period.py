"""Idle-period analysis of the FG/BG model.

The paper reasons about idle periods qualitatively ("a background job will
get served only ... during idle periods", "background tasks do not start
service immediately after the end of a foreground busy period").  This
module makes that reasoning quantitative: an *idle period* is a maximal
interval with no foreground job in the system; during it the chain moves
through the idle-wait states ``I(x)`` and background-serving states
``B(x, 0)``, and it ends at the next foreground arrival.

Treating the arrival as absorption yields closed forms via the fundamental
matrix ``(-T)^{-1}``:

* the mean idle-period length (equals the mean time to the next arrival
  from the phase mix at busy-period ends -- independent of background
  dynamics, a useful consistency check);
* the expected number of background completions *within* an idle period
  (a background job cut short by an arrival finishes during the following
  busy period, outside the idle window);
* the probability that no background job even starts during an idle
  period (the idle wait outlives it).

Consistency: (background completions per idle period) x (idle-period rate)
equals ``mu * P(background serving, no foreground present)``, and
``rate * mean_length`` equals ``P(no foreground in system)``; the
test-suite verifies both against the stationary solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import BgServiceMode
from repro.core.model import FgBgModel
from repro.core.result import FgBgSolution
from repro.core.states import StateKind
from repro.markov.deviation import fundamental_matrix

__all__ = ["IdlePeriodAnalysis", "analyze_idle_periods"]


@dataclass(frozen=True)
class IdlePeriodAnalysis:
    """Closed-form descriptors of the model's idle periods."""

    #: Idle periods started per unit time.
    rate: float
    #: Mean length of an idle period.
    mean_length: float
    #: Expected background completions within an idle period.
    mean_bg_completions: float
    #: Probability that no background job starts during an idle period
    #: (the next foreground arrival beats the idle-wait timer, or no
    #: background work is buffered at all).
    prob_no_bg_service: float
    #: Long-run fraction of time the system is idle of foreground work.
    idle_fraction: float


def analyze_idle_periods(
    model: FgBgModel, solution: FgBgSolution | None = None
) -> IdlePeriodAnalysis:
    """Analyze the idle periods of a (stable) FG/BG model.

    Parameters
    ----------
    model:
        The model to analyze.
    solution:
        An existing solve of the same model, to avoid recomputing it.
    """
    if solution is None:
        solution = model.solve()
    space = model.state_space
    arrival = model.arrival
    a = arrival.order
    d0, d1 = arrival.d0, arrival.d1
    eye = np.eye(a)
    mu = model.service_rate
    p = model.bg_probability
    alpha = model.effective_idle_wait_rate
    x_max = space.bg_buffer
    back_to_back = model.bg_mode is BgServiceMode.BACK_TO_BACK

    # --- absorbing chain over the idle states -------------------------
    # Order: I(0..X), then B(1..X) (the y = 0 background-serving states).
    idle_states = [(StateKind.IDLE, x) for x in range(x_max + 1)] + [
        (StateKind.BG, x) for x in range(1, x_max + 1)
    ]
    index = {s: i for i, s in enumerate(idle_states)}
    n = len(idle_states) * a

    def sl(kind: StateKind, x: int) -> slice:
        i = index[(kind, x)]
        return slice(i * a, (i + 1) * a)

    t = np.zeros((n, n))
    bg_completion_rates = np.zeros(n)
    for kind, x in idle_states:
        s = sl(kind, x)
        t[s, s] += d0  # arrivals (D1) absorb: only D0 stays internal
        if kind is StateKind.IDLE:
            if x >= 1:
                t[s, s] -= alpha * eye
                t[s, sl(StateKind.BG, x)] += alpha * eye
        else:
            t[s, s] -= mu * eye
            bg_completion_rates[s] = mu
            if back_to_back and x >= 2:
                t[s, sl(StateKind.BG, x - 1)] += mu * eye
            else:
                t[s, sl(StateKind.IDLE, x - 1)] += mu * eye

    # --- entry distribution: flows into I(x) at busy-period ends ------
    # A foreground completion with y = 1 in F(x, 1) enters I(x) at rate
    # mu(1-p) and I(min(x+1, X)) at rate mu*p, carrying its arrival phase.
    qbd_solution = solution.qbd_solution
    pi_b = qbd_solution.boundary
    entry = np.zeros(n)
    for g in space.boundary_groups:
        if g.kind is not StateKind.FG or g.fg != 1:
            continue
        i = space.boundary_group_index(g.kind, g.bg, g.fg)
        mass = pi_b[i * a : (i + 1) * a]
        entry[sl(StateKind.IDLE, g.bg)] += mu * (1 - p) * mass
        if p > 0:
            entry[sl(StateKind.IDLE, min(g.bg + 1, x_max))] += mu * p * mass
    # F(X, 1) lives in the first repeating level and drops its spawn.
    level1 = qbd_solution.level(1)
    i = space.repeating_group_index(StateKind.FG, x_max)
    entry[sl(StateKind.IDLE, x_max)] += mu * level1[i * a : (i + 1) * a]

    rate = float(entry.sum())
    if rate <= 0:
        raise ValueError(
            "no idle periods occur (is the model saturated or degenerate?)"
        )
    entry_dist = entry / rate

    # --- fundamental-matrix metrics ------------------------------------
    fundamental = fundamental_matrix(t)
    mean_length = float(entry_dist @ fundamental @ np.ones(n))
    mean_bg = float(entry_dist @ fundamental @ bg_completion_rates)

    # P(no background job even starts): restrict to the idle-wait states
    # I(x) with two absorbing exits -- the foreground arrival (rates D1 e)
    # vs the idle-wait expiry (rate alpha, only when work is buffered).
    # An entry at I(0) can never start a background job (nothing is
    # buffered, and none arrives while the system is idle of FG work).
    n_i = (x_max + 1) * a
    t_wait = np.zeros((n_i, n_i))
    wait_rates = np.zeros(n_i)
    for x in range(x_max + 1):
        s = slice(x * a, (x + 1) * a)
        t_wait[s, s] += d0
        if x >= 1:
            t_wait[s, s] -= alpha * eye
            wait_rates[s] = alpha
    arrival_rates = np.tile(d1 @ np.ones(a), x_max + 1)
    from repro.markov.deviation import absorption_probabilities

    absorb = absorption_probabilities(
        t_wait, np.column_stack([arrival_rates, wait_rates])
    )
    entry_i = entry_dist[:n_i]  # idle states precede B states in the layout
    prob_no_bg = float(entry_i @ absorb[:, 0])

    return IdlePeriodAnalysis(
        rate=rate,
        mean_length=mean_length,
        mean_bg_completions=mean_bg,
        prob_no_bg_service=prob_no_bg,
        idle_fraction=rate * mean_length,
    )
