"""State-space enumeration of the foreground/background Markov chain.

This reproduces the chain of the paper's Figure 3.  States are triples:

* ``IDLE``  -- ``I(x)``: no foreground job; ``x`` background jobs buffered;
  for ``x >= 1`` an idle-wait timer runs.
* ``FG``    -- ``F(x, y)``: a foreground job in service, ``y >= 1``
  foreground jobs in system, ``x`` background jobs buffered.
* ``BG``    -- ``B(x, y)``: a background job in service (``x >= 1``
  background jobs in system including it), ``y >= 0`` foreground jobs
  waiting (service is non-preemptive).

Levels are ``j = x + y`` (paper Eq. 5).  Levels ``0..X`` (``X`` = background
buffer size) form the boundary; levels ``j > X`` repeat with ``2X + 1``
state groups.  Every group expands into ``A`` sub-states, one per phase of
the arrival MAP (Figure 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["StateKind", "BoundaryGroup", "RepeatingGroup", "StateSpace"]


class StateKind(enum.Enum):
    """Who holds the server (or nobody, for idle-wait states)."""

    IDLE = "idle"
    FG = "fg"
    BG = "bg"


@dataclass(frozen=True)
class BoundaryGroup:
    """One state group (a set of ``A`` phase sub-states) in the boundary.

    ``level == bg + fg`` always holds.
    """

    level: int
    kind: StateKind
    bg: int
    fg: int

    def __post_init__(self) -> None:
        if self.level != self.bg + self.fg:
            raise ValueError(
                f"level {self.level} != bg {self.bg} + fg {self.fg}"
            )


@dataclass(frozen=True)
class RepeatingGroup:
    """One state group of the repeating portion.

    The foreground count is level-dependent: at physical level ``j`` it is
    ``j - bg``.
    """

    kind: StateKind
    bg: int


class StateSpace:
    """Indexes of the FG/BG chain for a given buffer size and MAP order.

    Parameters
    ----------
    bg_buffer:
        Background buffer size ``X >= 0``.
    phases:
        Order ``A`` of the arrival MAP.
    """

    def __init__(self, bg_buffer: int, phases: int) -> None:
        if bg_buffer < 0:
            raise ValueError(f"bg_buffer must be >= 0, got {bg_buffer}")
        if phases < 1:
            raise ValueError(f"phases must be >= 1, got {phases}")
        self._x_max = bg_buffer
        self._phases = phases

    @property
    def bg_buffer(self) -> int:
        """Background buffer size X."""
        return self._x_max

    @property
    def phases(self) -> int:
        """Number of arrival phases A."""
        return self._phases

    # ------------------------------------------------------------------
    # Group enumeration
    # ------------------------------------------------------------------
    @cached_property
    def boundary_groups(self) -> tuple[BoundaryGroup, ...]:
        """All boundary groups, level by level (levels ``0..X``).

        Within level ``j`` the order is ``F(0, j)``, then
        ``F(x, j-x), B(x, j-x)`` for ``x = 1..j-1``, then ``B(j, 0)``,
        then ``I(j)``.
        """
        groups: list[BoundaryGroup] = []
        for j in range(self._x_max + 1):
            if j >= 1:
                groups.append(BoundaryGroup(j, StateKind.FG, 0, j))
            for x in range(1, j):
                groups.append(BoundaryGroup(j, StateKind.FG, x, j - x))
                groups.append(BoundaryGroup(j, StateKind.BG, x, j - x))
            if j >= 1:
                groups.append(BoundaryGroup(j, StateKind.BG, j, 0))
            groups.append(BoundaryGroup(j, StateKind.IDLE, j, 0))
        return tuple(groups)

    @cached_property
    def repeating_groups(self) -> tuple[RepeatingGroup, ...]:
        """Groups of one repeating level: ``F(0), F(1), B(1), ..., F(X), B(X)``."""
        groups: list[RepeatingGroup] = [RepeatingGroup(StateKind.FG, 0)]
        for x in range(1, self._x_max + 1):
            groups.append(RepeatingGroup(StateKind.FG, x))
            groups.append(RepeatingGroup(StateKind.BG, x))
        return tuple(groups)

    @cached_property
    def _boundary_lookup(self) -> dict[tuple[StateKind, int, int], int]:
        return {
            (g.kind, g.bg, g.fg): i for i, g in enumerate(self.boundary_groups)
        }

    @cached_property
    def _repeating_lookup(self) -> dict[tuple[StateKind, int], int]:
        return {(g.kind, g.bg): i for i, g in enumerate(self.repeating_groups)}

    def boundary_group_index(self, kind: StateKind, bg: int, fg: int) -> int:
        """Index of a boundary group in :attr:`boundary_groups`."""
        key = (kind, bg, fg)
        if key not in self._boundary_lookup:
            raise KeyError(f"no boundary group {kind.value}(bg={bg}, fg={fg})")
        return self._boundary_lookup[key]

    def repeating_group_index(self, kind: StateKind, bg: int) -> int:
        """Index of a repeating group in :attr:`repeating_groups`."""
        key = (kind, bg)
        if key not in self._repeating_lookup:
            raise KeyError(f"no repeating group {kind.value}(bg={bg})")
        return self._repeating_lookup[key]

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def boundary_group_count(self) -> int:
        """Number of boundary groups: ``(X + 1)^2``."""
        return len(self.boundary_groups)

    @property
    def repeating_group_count(self) -> int:
        """Number of groups per repeating level: ``2X + 1``."""
        return len(self.repeating_groups)

    @property
    def boundary_state_count(self) -> int:
        """Number of boundary states: ``(X + 1)^2 * A``."""
        return self.boundary_group_count * self._phases

    @property
    def repeating_state_count(self) -> int:
        """States per repeating level: ``(2X + 1) * A``."""
        return self.repeating_group_count * self._phases

    # ------------------------------------------------------------------
    # Per-state metric vectors (expanded over phases)
    # ------------------------------------------------------------------
    def _expand(self, per_group: np.ndarray) -> np.ndarray:
        return np.repeat(np.asarray(per_group, dtype=float), self._phases)

    @cached_property
    def boundary_fg_counts(self) -> np.ndarray:
        """Foreground job count ``y`` per boundary state."""
        return self._expand([g.fg for g in self.boundary_groups])

    @cached_property
    def boundary_bg_counts(self) -> np.ndarray:
        """Background job count ``x`` per boundary state."""
        return self._expand([g.bg for g in self.boundary_groups])

    def boundary_kind_mask(self, kind: StateKind) -> np.ndarray:
        """Indicator vector of boundary states of the given kind."""
        return self._expand([1.0 if g.kind is kind else 0.0 for g in self.boundary_groups])

    @cached_property
    def boundary_bg_busy_fg_waiting_mask(self) -> np.ndarray:
        """Indicator of boundary states where a BG job holds the server while
        at least one FG job waits (the paper's WaitP numerator)."""
        return self._expand(
            [
                1.0 if (g.kind is StateKind.BG and g.fg >= 1) else 0.0
                for g in self.boundary_groups
            ]
        )

    @cached_property
    def repeating_bg_counts(self) -> np.ndarray:
        """Background job count ``x`` per repeating state."""
        return self._expand([g.bg for g in self.repeating_groups])

    def repeating_kind_mask(self, kind: StateKind) -> np.ndarray:
        """Indicator vector of repeating states of the given kind."""
        return self._expand(
            [1.0 if g.kind is kind else 0.0 for g in self.repeating_groups]
        )

    @cached_property
    def repeating_bg_full_fg_mask(self) -> np.ndarray:
        """Indicator of repeating states where FG is in service with a full
        BG buffer (spawned background jobs are dropped there)."""
        return self._expand(
            [
                1.0 if (g.kind is StateKind.FG and g.bg == self._x_max) else 0.0
                for g in self.repeating_groups
            ]
        )

    def __repr__(self) -> str:
        return (
            f"StateSpace(bg_buffer={self._x_max}, phases={self._phases}, "
            f"boundary={self.boundary_state_count}, "
            f"per_level={self.repeating_state_count})"
        )
