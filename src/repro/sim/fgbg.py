"""Discrete-event simulator of the foreground/background queue.

This is an *independent* implementation of the system of the paper's
Section 3.2 -- same semantics as the analytic chain, but built on an event
calendar and random variates.  It exists to validate the analytic model and
to measure quantities the chain does not expose (e.g. per-job response-time
distributions).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.blocks import BgServiceMode
from repro.core.model import FgBgModel
from repro.processes.ph import PhaseType
from repro.processes.sampling import MAPSampler
from repro.sim.engine import EventHandle, Simulator
from repro.sim.stats import TimeWeightedAverage

__all__ = ["FgBgSimulator", "FgBgSimulationResult"]


@dataclass(frozen=True)
class FgBgSimulationResult:
    """Point estimates from one simulation run (post warm-up)."""

    #: Time-average number of foreground jobs in system.
    fg_queue_length: float
    #: Time-average number of background jobs in system.
    bg_queue_length: float
    #: P(background job in service | >= 1 foreground job present).
    fg_delayed_fraction: float
    #: Fraction of foreground arrivals that found a background job serving.
    fg_arrival_delayed_fraction: float
    #: Fraction of spawned background jobs that were admitted.
    bg_completion_rate: float
    #: Fraction of time the server held a foreground job.
    fg_server_share: float
    #: Fraction of time the server held a background job.
    bg_server_share: float
    #: Mean foreground response time (arrival to departure).
    fg_response_time: float
    #: Foreground jobs completed per unit time.
    fg_throughput: float
    #: Number of foreground completions observed.
    fg_completions: int
    #: Number of background jobs spawned.
    bg_spawned: int
    #: Number of background jobs dropped (buffer full).
    bg_dropped: int
    #: Number of background jobs completed.
    bg_completions: int
    #: Measurement horizon (post warm-up).
    horizon: float
    #: Per-job foreground response times (arrival to departure), only when
    #: the run was started with ``collect_response_times=True``; else None.
    fg_response_samples: np.ndarray | None = None

    def fg_response_quantile(self, q: float) -> float:
        """Empirical quantile of the foreground response time.

        Requires the run to have collected samples.
        """
        if self.fg_response_samples is None:
            raise ValueError(
                "run the simulation with collect_response_times=True to "
                "query response-time quantiles"
            )
        if not 0 < q < 1:
            raise ValueError(f"q must lie in (0, 1), got {q}")
        return float(np.quantile(self.fg_response_samples, q))


class FgBgSimulator:
    """Simulates the exact system of an :class:`~repro.core.model.FgBgModel`.

    Parameters
    ----------
    model:
        The analytic model whose system should be simulated.  All its
        parameters (arrival MAP, service rate, spawn probability, buffer,
        idle-wait rate, scheduling mode) are honoured.
    service:
        Optional phase-type service-time distribution overriding the
        model's exponential service (used to validate the
        :class:`~repro.core.ph_service.PhServiceFgBgModel` extension).  Its
        mean need not equal ``1 / model.service_rate``; whatever is passed
        is simulated.
    arrival_trace:
        Optional 1-D array of inter-arrival times replayed instead of
        sampling the model's arrival MAP (trace-driven simulation).  The
        requested horizon must fit inside the trace's total duration.
    batch_probabilities:
        Optional batch-size distribution ``(q_1, ..., q_B)``: each arrival
        event then delivers ``b`` foreground jobs with probability ``q_b``
        (used to validate the :class:`~repro.core.batch.BatchFgBgModel`
        extension).
    idle_wait_ph:
        Optional phase-type idle-wait distribution (samples in ms)
        overriding the model's exponential timer (used to validate the
        PH-idle-wait extension).
    """

    def __init__(
        self,
        model: FgBgModel,
        service: PhaseType | None = None,
        arrival_trace: np.ndarray | None = None,
        batch_probabilities: tuple[float, ...] | None = None,
        idle_wait_ph: PhaseType | None = None,
    ) -> None:
        self._idle_wait = idle_wait_ph
        self._model = model
        self._service = service
        if batch_probabilities is not None:
            probs = tuple(float(q) for q in batch_probabilities)
            if not probs or any(q < 0 for q in probs) or abs(sum(probs) - 1.0) > 1e-9:
                raise ValueError(
                    "batch probabilities must be non-negative and sum to 1, "
                    f"got {batch_probabilities}"
                )
            batch_probabilities = probs
        self._batch_probabilities = batch_probabilities
        if arrival_trace is not None:
            arrival_trace = np.asarray(arrival_trace, dtype=float)
            if arrival_trace.ndim != 1 or arrival_trace.shape[0] < 1:
                raise ValueError("arrival_trace must be a non-empty 1-D array")
            if np.any(arrival_trace < 0):
                raise ValueError("inter-arrival times must be non-negative")
        self._arrival_trace = arrival_trace

    @property
    def model(self) -> FgBgModel:
        """The model being simulated."""
        return self._model

    def run(
        self,
        horizon: float,
        rng: np.random.Generator,
        warmup_fraction: float = 0.2,
        collect_response_times: bool = False,
    ) -> FgBgSimulationResult:
        """Run one replication.

        Parameters
        ----------
        horizon:
            Total simulated time, including warm-up.
        rng:
            Random generator (pass distinct seeds for replications).
        warmup_fraction:
            Leading fraction of the horizon discarded before measuring.
        collect_response_times:
            Record every foreground job's response time so the result can
            report empirical quantiles (costs memory proportional to the
            number of completions).
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if not 0 <= warmup_fraction < 1:
            raise ValueError(
                f"warmup_fraction must lie in [0, 1), got {warmup_fraction}"
            )
        if self._arrival_trace is not None and float(self._arrival_trace.sum()) < horizon:
            raise ValueError(
                f"horizon {horizon} exceeds the trace duration "
                f"{float(self._arrival_trace.sum()):g}"
            )
        run = _Run(
            self._model, rng, self._service, self._arrival_trace,
            self._batch_probabilities, self._idle_wait,
        )
        run.collect_response_times = collect_response_times
        return run.execute(horizon, warmup_fraction)

    def run_replications(
        self,
        horizon: float,
        replications: int,
        seed: int,
        warmup_fraction: float = 0.2,
    ) -> list[FgBgSimulationResult]:
        """Run several independent replications with derived seeds."""
        if replications < 1:
            raise ValueError(f"replications must be >= 1, got {replications}")
        seeds = np.random.SeedSequence(seed).spawn(replications)
        return [
            self.run(horizon, np.random.default_rng(s), warmup_fraction)
            for s in seeds
        ]


class _Run:
    """State of a single simulation replication."""

    def __init__(
        self,
        model: FgBgModel,
        rng: np.random.Generator,
        service: PhaseType | None = None,
        arrival_trace: np.ndarray | None = None,
        batch_probabilities: tuple[float, ...] | None = None,
        idle_wait_ph: PhaseType | None = None,
    ) -> None:
        self.batch_thresholds = (
            np.cumsum(batch_probabilities) if batch_probabilities is not None else None
        )
        if idle_wait_ph is None:
            self.draw_idle_wait = lambda: rng.exponential(
                1.0 / model.effective_idle_wait_rate
            )
        else:
            self.draw_idle_wait = lambda: float(idle_wait_ph.sample(rng, size=1)[0])
        self.model = model
        self.rng = rng
        if service is None:
            self.draw_service = lambda: rng.exponential(1.0 / model.service_rate)
        else:
            self.draw_service = lambda: float(service.sample(rng, size=1)[0])
        self.sim = Simulator()
        if arrival_trace is None:
            self.arrivals = MAPSampler(model.arrival, rng)
        else:
            self.arrivals = _TraceReplay(arrival_trace)
        self.mu = model.service_rate
        self.p = model.bg_probability
        self.x_max = model.bg_buffer if model.bg_probability > 0 else 0
        self.alpha = model.effective_idle_wait_rate
        self.back_to_back = model.bg_mode is BgServiceMode.BACK_TO_BACK

        self.fg_queue: deque[float] = deque()  # arrival times of waiting FG
        self.bg_queue = 0
        self.serving: str | None = None  # None | "fg" | "bg"
        self.serving_fg_arrival_time = 0.0
        self.idle_wait: EventHandle | None = None

        # Accumulators (reset at end of warm-up).
        self.fg_count_avg = TimeWeightedAverage()
        self.bg_count_avg = TimeWeightedAverage()
        self.fg_share_avg = TimeWeightedAverage()
        self.bg_share_avg = TimeWeightedAverage()
        self.blocked_avg = TimeWeightedAverage()  # BG serving and FG waiting
        self.fg_present_avg = TimeWeightedAverage()
        self.fg_arrivals = 0
        self.fg_arrivals_delayed = 0
        self.fg_completions = 0
        self.fg_response_total = 0.0
        self.bg_spawned = 0
        self.bg_dropped = 0
        self.bg_completions = 0
        self.collect_response_times = False
        self.response_samples: list[float] = []

    # -- bookkeeping ----------------------------------------------------
    def _fg_in_system(self) -> int:
        return len(self.fg_queue) + (1 if self.serving == "fg" else 0)

    def _bg_in_system(self) -> int:
        return self.bg_queue + (1 if self.serving == "bg" else 0)

    def _record_state(self) -> None:
        now = self.sim.now
        fg = self._fg_in_system()
        self.fg_count_avg.update(now, fg)
        self.bg_count_avg.update(now, self._bg_in_system())
        self.fg_share_avg.update(now, 1.0 if self.serving == "fg" else 0.0)
        self.bg_share_avg.update(now, 1.0 if self.serving == "bg" else 0.0)
        self.blocked_avg.update(now, 1.0 if (self.serving == "bg" and fg >= 1) else 0.0)
        self.fg_present_avg.update(now, 1.0 if fg >= 1 else 0.0)

    # -- event handlers ---------------------------------------------------
    def _schedule_arrival(self) -> None:
        try:
            delay = self.arrivals.next_interarrival()
        except StopIteration:
            return  # trace exhausted: no further arrivals
        self.sim.schedule(delay, self._on_arrival)

    def _start_fg_service(self) -> None:
        self.serving = "fg"
        self.serving_fg_arrival_time = self.fg_queue.popleft()
        self.sim.schedule(self.draw_service(), self._on_fg_completion)

    def _start_bg_service(self) -> None:
        self.serving = "bg"
        self.bg_queue -= 1
        self.sim.schedule(self.draw_service(), self._on_bg_completion)

    def _start_idle_wait(self) -> None:
        self.idle_wait = self.sim.schedule(
            self.draw_idle_wait(), self._on_idle_wait_expired
        )

    def _on_arrival(self) -> None:
        batch = 1
        if self.batch_thresholds is not None:
            batch = int(np.searchsorted(self.batch_thresholds, self.rng.random(), side="right")) + 1
        self.fg_arrivals += batch
        if self.serving == "bg":
            self.fg_arrivals_delayed += batch
        for _ in range(batch):
            self.fg_queue.append(self.sim.now)
        if self.serving is None:
            if self.idle_wait is not None:
                self.idle_wait.cancel()
                self.idle_wait = None
            self._start_fg_service()
        self._record_state()
        self._schedule_arrival()

    def _on_fg_completion(self) -> None:
        self.fg_completions += 1
        response = self.sim.now - self.serving_fg_arrival_time
        self.fg_response_total += response
        if self.collect_response_times:
            self.response_samples.append(response)
        self.serving = None
        if self.p > 0 and self.rng.random() < self.p:
            self.bg_spawned += 1
            if self.bg_queue < self.x_max:
                self.bg_queue += 1
            else:
                self.bg_dropped += 1
        if self.fg_queue:
            self._start_fg_service()
        elif self.bg_queue > 0:
            self._start_idle_wait()
        self._record_state()

    def _on_bg_completion(self) -> None:
        self.bg_completions += 1
        self.serving = None
        if self.fg_queue:
            self._start_fg_service()
        elif self.bg_queue > 0:
            if self.back_to_back:
                self._start_bg_service()
            else:
                self._start_idle_wait()
        self._record_state()

    def _on_idle_wait_expired(self) -> None:
        self.idle_wait = None
        # An arrival would have cancelled this event, so the server is idle
        # and at least one background job is queued.
        self._start_bg_service()
        self._record_state()

    # -- driver -----------------------------------------------------------
    def execute(self, horizon: float, warmup_fraction: float) -> FgBgSimulationResult:
        self._schedule_arrival()
        warmup = horizon * warmup_fraction
        if warmup > 0:
            self.sim.run_until(warmup)
            self._record_state()
            for avg in (
                self.fg_count_avg,
                self.bg_count_avg,
                self.fg_share_avg,
                self.bg_share_avg,
                self.blocked_avg,
                self.fg_present_avg,
            ):
                avg.reset(warmup)
            self.fg_arrivals = 0
            self.fg_arrivals_delayed = 0
            self.fg_completions = 0
            self.fg_response_total = 0.0
            self.bg_spawned = 0
            self.bg_dropped = 0
            self.bg_completions = 0
            self.response_samples.clear()
        self.sim.run_until(horizon)
        now = self.sim.now
        measured = now - warmup
        fg_present = self.fg_present_avg.mean(now)
        return FgBgSimulationResult(
            fg_queue_length=self.fg_count_avg.mean(now),
            bg_queue_length=self.bg_count_avg.mean(now),
            fg_delayed_fraction=(
                self.blocked_avg.mean(now) / fg_present if fg_present > 0 else 0.0
            ),
            fg_arrival_delayed_fraction=(
                self.fg_arrivals_delayed / self.fg_arrivals
                if self.fg_arrivals
                else 0.0
            ),
            bg_completion_rate=(
                1.0 - self.bg_dropped / self.bg_spawned
                if self.bg_spawned
                else float("nan")
            ),
            fg_server_share=self.fg_share_avg.mean(now),
            bg_server_share=self.bg_share_avg.mean(now),
            fg_response_time=(
                self.fg_response_total / self.fg_completions
                if self.fg_completions
                else float("nan")
            ),
            fg_throughput=self.fg_completions / measured if measured > 0 else 0.0,
            fg_completions=self.fg_completions,
            bg_spawned=self.bg_spawned,
            bg_dropped=self.bg_dropped,
            bg_completions=self.bg_completions,
            horizon=measured,
            fg_response_samples=(
                np.asarray(self.response_samples)
                if self.collect_response_times
                else None
            ),
        )


class _TraceReplay:
    """Arrival source replaying a recorded inter-arrival sequence."""

    def __init__(self, interarrivals: np.ndarray) -> None:
        self._trace = interarrivals
        self._index = 0

    def next_interarrival(self) -> float:
        if self._index >= self._trace.shape[0]:
            raise StopIteration("arrival trace exhausted")
        value = float(self._trace[self._index])
        self._index += 1
        return value
