"""Discrete-event simulator of the multiclass FG/BG queue.

Independent validation of
:class:`~repro.core.multiclass.MulticlassFgBgModel`: a shared background
buffer, one FIFO queue per class, class 1 served first whenever background
work is granted the server.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.blocks import BgServiceMode
from repro.core.multiclass import MulticlassFgBgModel
from repro.processes.sampling import MAPSampler
from repro.sim.engine import EventHandle, Simulator
from repro.sim.stats import TimeWeightedAverage

__all__ = ["MulticlassSimulator", "MulticlassSimulationResult"]


@dataclass(frozen=True)
class MulticlassSimulationResult:
    """Point estimates from one multiclass simulation run (post warm-up)."""

    #: Time-average number of foreground jobs in system.
    fg_queue_length: float
    #: Time-average number of background jobs in system, per class.
    bg_queue_lengths: tuple[float, ...]
    #: P(any background job in service | foreground present).
    fg_delayed_fraction: float
    #: Fraction of spawned background jobs admitted (all classes).
    bg_completion_rate: float
    #: Background completions per unit time, per class.
    bg_throughputs: tuple[float, ...]
    #: Mean background response time (admission to completion), per class.
    bg_response_times: tuple[float, ...]
    #: Fraction of time the server held a foreground job.
    fg_server_share: float
    #: Number of background jobs spawned (all classes).
    bg_spawned: int
    #: Number of background jobs dropped (buffer full).
    bg_dropped: int

    @property
    def bg_queue_length(self) -> float:
        """Total background queue length over all classes."""
        return float(sum(self.bg_queue_lengths))


class MulticlassSimulator:
    """Simulates the system of a :class:`MulticlassFgBgModel`."""

    def __init__(self, model: MulticlassFgBgModel) -> None:
        self._model = model

    @property
    def model(self) -> MulticlassFgBgModel:
        """The model being simulated."""
        return self._model

    def run(
        self,
        horizon: float,
        rng: np.random.Generator,
        warmup_fraction: float = 0.2,
    ) -> MulticlassSimulationResult:
        """Run one replication over ``horizon`` time units."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if not 0 <= warmup_fraction < 1:
            raise ValueError(
                f"warmup_fraction must lie in [0, 1), got {warmup_fraction}"
            )
        return _MulticlassRun(self._model, rng).execute(horizon, warmup_fraction)


class _MulticlassRun:
    """State of a single multiclass replication."""

    FG = -1

    def __init__(self, model: MulticlassFgBgModel, rng: np.random.Generator) -> None:
        self.model = model
        self.rng = rng
        self.sim = Simulator()
        self.arrivals = MAPSampler(model.arrival, rng)
        self.k = model.classes
        self.mu = model.service_rate
        self.spawn_thresholds = np.cumsum(model.bg_probabilities)
        self.alpha = model.effective_idle_wait_rate
        self.x_max = model.bg_buffer
        self.back_to_back = model.bg_mode is BgServiceMode.BACK_TO_BACK

        self.fg_queue = 0
        self.bg_queues: list[deque[float]] = [deque() for _ in range(self.k)]
        self.serving: int | None = None  # FG (-1) or a class index
        self.bg_service_started_from = 0.0
        self.idle_wait: EventHandle | None = None

        self.fg_avg = TimeWeightedAverage()
        self.bg_avgs = [TimeWeightedAverage() for _ in range(self.k)]
        self.blocked_avg = TimeWeightedAverage()
        self.fg_present_avg = TimeWeightedAverage()
        self.fg_share_avg = TimeWeightedAverage()
        self.bg_spawned = 0
        self.bg_dropped = 0
        self.bg_completions = [0] * self.k
        self.bg_response_totals = [0.0] * self.k

    # -- bookkeeping ------------------------------------------------------
    def _record(self) -> None:
        now = self.sim.now
        fg = self.fg_queue + (1 if self.serving == self.FG else 0)
        self.fg_avg.update(now, fg)
        for c in range(self.k):
            in_service = 1 if self.serving == c else 0
            self.bg_avgs[c].update(now, len(self.bg_queues[c]) + in_service)
        bg_busy = self.serving is not None and self.serving >= 0
        self.blocked_avg.update(now, 1.0 if (bg_busy and fg >= 1) else 0.0)
        self.fg_present_avg.update(now, 1.0 if fg >= 1 else 0.0)
        self.fg_share_avg.update(now, 1.0 if self.serving == self.FG else 0.0)

    def _bg_buffered(self) -> int:
        return sum(len(q) for q in self.bg_queues)

    # -- events -------------------------------------------------------------
    def _schedule_arrival(self) -> None:
        self.sim.schedule(self.arrivals.next_interarrival(), self._on_arrival)

    def _start_fg(self) -> None:
        self.serving = self.FG
        self.fg_queue -= 1
        self.sim.schedule(self.rng.exponential(1.0 / self.mu), self._on_fg_done)

    def _start_bg(self) -> None:
        for c in range(self.k):
            if self.bg_queues[c]:
                self.serving = c
                self.bg_service_started_from = self.bg_queues[c].popleft()
                self.sim.schedule(
                    self.rng.exponential(1.0 / self.mu), self._on_bg_done
                )
                return
        raise RuntimeError("_start_bg called with empty background queues")

    def _start_idle_wait(self) -> None:
        self.idle_wait = self.sim.schedule(
            self.rng.exponential(1.0 / self.alpha), self._on_idle_expired
        )

    def _on_arrival(self) -> None:
        self.fg_queue += 1
        if self.serving is None:
            if self.idle_wait is not None:
                self.idle_wait.cancel()
                self.idle_wait = None
            self._start_fg()
        self._record()
        self._schedule_arrival()

    def _on_fg_done(self) -> None:
        self.serving = None
        u = self.rng.random()
        for c in range(self.k):
            if u < self.spawn_thresholds[c]:
                self.bg_spawned += 1
                if self._bg_buffered() < self.x_max:
                    self.bg_queues[c].append(self.sim.now)
                else:
                    self.bg_dropped += 1
                break
        if self.fg_queue > 0:
            self._start_fg()
        elif self._bg_buffered() > 0:
            self._start_idle_wait()
        self._record()

    def _on_bg_done(self) -> None:
        c = self.serving
        self.serving = None
        self.bg_completions[c] += 1
        self.bg_response_totals[c] += self.sim.now - self.bg_service_started_from
        if self.fg_queue > 0:
            self._start_fg()
        elif self._bg_buffered() > 0:
            if self.back_to_back:
                self._start_bg()
            else:
                self._start_idle_wait()
        self._record()

    def _on_idle_expired(self) -> None:
        self.idle_wait = None
        self._start_bg()
        self._record()

    # -- driver -------------------------------------------------------------
    def execute(self, horizon: float, warmup_fraction: float) -> MulticlassSimulationResult:
        self._schedule_arrival()
        warmup = horizon * warmup_fraction
        if warmup > 0:
            self.sim.run_until(warmup)
            self._record()
            for avg in (
                self.fg_avg,
                self.blocked_avg,
                self.fg_present_avg,
                self.fg_share_avg,
                *self.bg_avgs,
            ):
                avg.reset(warmup)
            self.bg_spawned = 0
            self.bg_dropped = 0
            self.bg_completions = [0] * self.k
            self.bg_response_totals = [0.0] * self.k
        self.sim.run_until(horizon)
        now = self.sim.now
        measured = now - warmup
        fg_present = self.fg_present_avg.mean(now)
        return MulticlassSimulationResult(
            fg_queue_length=self.fg_avg.mean(now),
            bg_queue_lengths=tuple(avg.mean(now) for avg in self.bg_avgs),
            fg_delayed_fraction=(
                self.blocked_avg.mean(now) / fg_present if fg_present > 0 else 0.0
            ),
            bg_completion_rate=(
                1.0 - self.bg_dropped / self.bg_spawned
                if self.bg_spawned
                else float("nan")
            ),
            bg_throughputs=tuple(c / measured for c in self.bg_completions),
            bg_response_times=tuple(
                total / count if count else float("nan")
                for total, count in zip(self.bg_response_totals, self.bg_completions)
            ),
            fg_server_share=self.fg_share_avg.mean(now),
            bg_spawned=self.bg_spawned,
            bg_dropped=self.bg_dropped,
        )
