"""Estimators for simulation output analysis."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as sp_stats

__all__ = ["TimeWeightedAverage", "BatchMeans", "confidence_interval"]


class TimeWeightedAverage:
    """Time-weighted average of a piecewise-constant process.

    Call :meth:`update` *before* each change of the tracked value and
    :meth:`finalize` (or read :attr:`mean`) at the end of the run.
    """

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0) -> None:
        self._value = float(initial_value)
        self._last_time = float(start_time)
        self._area = 0.0
        self._start = float(start_time)

    @property
    def value(self) -> float:
        """Current value of the process."""
        return self._value

    def update(self, now: float, new_value: float) -> None:
        """Record that the process changes to ``new_value`` at time ``now``."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = float(new_value)

    def mean(self, now: float) -> float:
        """Time average over ``[start, now]``."""
        elapsed = now - self._start
        if elapsed <= 0:
            return self._value
        return (self._area + self._value * (now - self._last_time)) / elapsed

    def reset(self, now: float) -> None:
        """Restart the averaging window at ``now`` (end of warm-up)."""
        self._area = 0.0
        self._last_time = now
        self._start = now


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval ``mean +- half_width``."""

    mean: float
    half_width: float
    level: float

    @property
    def low(self) -> float:
        """Lower endpoint."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper endpoint."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __repr__(self) -> str:
        return f"{self.mean:.6g} +- {self.half_width:.3g} ({self.level:.0%})"


def confidence_interval(
    samples: np.ndarray, level: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of i.i.d. samples."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1 or samples.shape[0] < 2:
        raise ValueError("need a 1-D array of at least 2 samples")
    if not 0 < level < 1:
        raise ValueError(f"level must lie in (0, 1), got {level}")
    n = samples.shape[0]
    mean = float(samples.mean())
    sem = float(samples.std(ddof=1)) / math.sqrt(n)
    t = float(sp_stats.t.ppf(0.5 + level / 2.0, df=n - 1))
    return ConfidenceInterval(mean=mean, half_width=t * sem, level=level)


class BatchMeans:
    """Batch-means estimator for a (possibly autocorrelated) output series.

    Splits the observation stream into ``batches`` contiguous batches and
    treats the batch means as approximately independent.
    """

    def __init__(self, batches: int = 20) -> None:
        if batches < 2:
            raise ValueError(f"need at least 2 batches, got {batches}")
        self._batches = batches
        self._values: list[float] = []

    def add(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        """Number of recorded observations."""
        return len(self._values)

    def interval(self, level: float = 0.95) -> ConfidenceInterval:
        """Confidence interval from the batch means."""
        if len(self._values) < 2 * self._batches:
            raise ValueError(
                f"need at least {2 * self._batches} observations for "
                f"{self._batches} batches, have {len(self._values)}"
            )
        usable = len(self._values) - len(self._values) % self._batches
        arr = np.asarray(self._values[:usable]).reshape(self._batches, -1)
        return confidence_interval(arr.mean(axis=1), level=level)
