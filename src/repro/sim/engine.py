"""A minimal discrete-event simulation engine.

Events are callbacks scheduled at absolute times on a binary-heap calendar.
Cancellation is supported through :class:`EventHandle` (lazy deletion: the
heap entry stays but is skipped when popped).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["EventHandle", "Simulator"]


@dataclass(order=True)
class _HeapEntry:
    time: float
    sequence: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("callback", "cancelled", "time")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True


class Simulator:
    """Event-calendar simulator with a monotone clock."""

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events."""
        return sum(1 for e in self._heap if not e.handle.cancelled)

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to fire ``delay_ms`` milliseconds from now."""
        if delay_ms < 0:
            raise ValueError(f"delay must be non-negative, got {delay_ms}")
        handle = EventHandle(self._now + delay_ms, callback)
        heapq.heappush(self._heap, _HeapEntry(handle.time, next(self._counter), handle))
        return handle

    def step(self) -> bool:
        """Fire the next pending event.  Returns False when none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.handle.cancelled:
                continue
            self._now = entry.time
            entry.handle.callback()
            return True
        return False

    def run_until(self, t: float) -> None:
        """Fire events in order until the clock would pass ``t``.

        The clock is left exactly at ``t``; events scheduled at times
        ``> t`` stay pending.
        """
        if t < self._now:
            raise ValueError(f"cannot run backwards: now={self._now}, t={t}")
        while self._heap:
            entry = self._heap[0]
            if entry.handle.cancelled:
                heapq.heappop(self._heap)
                continue
            if entry.time > t:
                break
            heapq.heappop(self._heap)
            self._now = entry.time
            entry.handle.callback()
        self._now = t
