"""A disk service-time model: seek + rotational latency + transfer.

The paper justifies non-preemptive service by the mechanics of disk drives:
"the service process consists of three distinct operations, i.e., seek to
the correct disk track, position to the correct sector, and transfer data.
The seek portion of the service time accounts on average for 50% of the
service time and is a non-preemptive operation."

This module provides a small physical model that produces per-request
service times with exactly that decomposition.  It is used (a) by the
examples to derive a realistic mean service time and (b) by the tests to
confirm that the resulting service-time distribution is reasonably
approximated by the exponential assumption of the analytic chain (low CV,
as the paper's trace table reports).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DiskModel", "DiskRequest"]


@dataclass(frozen=True)
class DiskRequest:
    """One disk request: target cylinder fraction and transfer size."""

    cylinder: float  # in [0, 1], fraction of the full stroke
    size_kib: float


@dataclass(frozen=True)
class DiskModel:
    """Seek/rotation/transfer timing model of a single disk drive.

    Defaults approximate a mid-2000s enterprise drive (the paper's context):
    10k RPM, ~4.5 ms average seek, ~60 MiB/s media rate, giving ~6 ms mean
    service time for small random requests -- the paper's service mean.

    Seek time follows the standard concave model
    ``seek(d) = seek_min + (seek_max - seek_min) * sqrt(d)`` for a stroke
    fraction ``d``; rotational latency is uniform over one revolution;
    transfer time is ``size / media_rate``.
    """

    rpm: float = 10_000.0
    seek_min_ms: float = 0.5
    seek_max_ms: float = 9.0
    media_rate_mib_s: float = 60.0

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise ValueError(f"rpm must be positive, got {self.rpm}")
        if not 0 <= self.seek_min_ms <= self.seek_max_ms:
            raise ValueError(
                f"need 0 <= seek_min <= seek_max, got {self.seek_min_ms}, {self.seek_max_ms}"
            )
        if self.media_rate_mib_s <= 0:
            raise ValueError(f"media_rate must be positive, got {self.media_rate_mib_s}")

    @property
    def revolution_ms(self) -> float:
        """Duration of one platter revolution in ms."""
        return 60_000.0 / self.rpm

    def seek_time_ms(self, distance: float) -> float:
        """Seek time for a stroke fraction ``distance`` in [0, 1]."""
        if not 0 <= distance <= 1:
            raise ValueError(f"distance must lie in [0, 1], got {distance}")
        if distance == 0:
            return 0.0
        return self.seek_min_ms + (self.seek_max_ms - self.seek_min_ms) * np.sqrt(distance)

    def transfer_time_ms(self, size_kib: float) -> float:
        """Media transfer time for ``size_kib`` KiB."""
        if size_kib < 0:
            raise ValueError(f"size must be non-negative, got {size_kib}")
        return size_kib / 1024.0 / self.media_rate_mib_s * 1000.0

    def service_time_ms(
        self, request: DiskRequest, head_position: float, rng: np.random.Generator
    ) -> float:
        """Total service time: seek + rotational latency + transfer."""
        seek = self.seek_time_ms(abs(request.cylinder - head_position))
        rotation = rng.uniform(0.0, self.revolution_ms)
        return seek + rotation + self.transfer_time_ms(request.size_kib)

    def sample_random_workload(
        self, rng: np.random.Generator, n: int, size_kib: float = 8.0
    ) -> np.ndarray:
        """Service times of ``n`` uniformly random requests of a fixed size.

        The head starts mid-stroke and follows the request sequence (FCFS,
        no scheduling optimization -- the paper's model).
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        times = np.empty(n)
        head = 0.5
        for i in range(n):
            req = DiskRequest(cylinder=float(rng.uniform(0.0, 1.0)), size_kib=size_kib)
            times[i] = self.service_time_ms(req, head, rng)
            head = req.cylinder
        return times

    def mean_service_time_ms(self, size_kib: float = 8.0) -> float:
        """Analytic mean service time for uniform random requests.

        Mean seek over two independent uniforms (E[sqrt|U-V|] = 8/15) plus
        half a revolution plus the transfer time.
        """
        mean_seek = self.seek_min_ms + (self.seek_max_ms - self.seek_min_ms) * 8.0 / 15.0
        return mean_seek + self.revolution_ms / 2.0 + self.transfer_time_ms(size_kib)
