"""Discrete-event simulation substrate.

An independent implementation of the paper's system used to cross-validate
every analytic metric:

* :mod:`~repro.sim.engine` -- a minimal event-calendar simulator core.
* :mod:`~repro.sim.fgbg` -- the foreground/background queue simulator.
* :mod:`~repro.sim.stats` -- time-weighted accumulators and batch-means
  confidence intervals.
* :mod:`~repro.sim.disk` -- a seek/rotation/transfer disk service-time
  model (the physical justification for the paper's non-preemptive
  exponential service assumption).
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.fgbg import FgBgSimulationResult, FgBgSimulator
from repro.sim.multiclass import MulticlassSimulationResult, MulticlassSimulator
from repro.sim.stats import BatchMeans, TimeWeightedAverage, confidence_interval
from repro.sim.disk import DiskModel

__all__ = [
    "EventHandle",
    "Simulator",
    "FgBgSimulationResult",
    "FgBgSimulator",
    "MulticlassSimulationResult",
    "MulticlassSimulator",
    "BatchMeans",
    "TimeWeightedAverage",
    "confidence_interval",
    "DiskModel",
]
