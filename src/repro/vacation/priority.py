"""Non-preemptive two-class M/M/1 priority queue (Cobham's formula).

The strict-priority alternative to the paper's idle-wait design: low-
priority (background-like) work is admitted unconditionally and served
whenever no high-priority job waits, with services never preempted.
Cobham (1954) gives the per-class waiting times:

``W_q(1) = R / (1 - rho_1)``
``W_q(2) = R / ((1 - rho_1)(1 - rho_1 - rho_2))``

where ``R = (lam_1 + lam_2) E[S^2] / 2`` is the mean residual service seen
on arrival (``E[S^2] = 2 / mu^2`` for exponential service).

Contrast with the paper's model: there the low-priority stream is *not*
independent (spawned by completions), is buffer-limited, and waits out an
idle timer -- this baseline shows what unconditional admission would cost
the foreground class.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NonPreemptivePriorityQueue"]


@dataclass(frozen=True)
class NonPreemptivePriorityQueue:
    """M/M/1 with two Poisson classes under non-preemptive priority.

    Parameters
    ----------
    lam_high:
        Arrival rate of the high-priority (foreground) class.
    lam_low:
        Arrival rate of the low-priority (background) class.
    mu:
        Exponential service rate shared by both classes.
    """

    lam_high: float
    lam_low: float
    mu: float

    def __post_init__(self) -> None:
        if self.lam_high <= 0 or self.lam_low < 0 or self.mu <= 0:
            raise ValueError(
                "need lam_high > 0, lam_low >= 0, mu > 0; got "
                f"{self.lam_high}, {self.lam_low}, {self.mu}"
            )
        if self.lam_high + self.lam_low >= self.mu:
            raise ValueError(
                f"queue is unstable: total load "
                f"{(self.lam_high + self.lam_low) / self.mu:.4g} >= 1"
            )

    @property
    def rho_high(self) -> float:
        """High-priority utilization."""
        return self.lam_high / self.mu

    @property
    def rho_low(self) -> float:
        """Low-priority utilization."""
        return self.lam_low / self.mu

    @property
    def _mean_residual(self) -> float:
        # R = (lam_1 + lam_2) E[S^2] / 2 with E[S^2] = 2 / mu^2.
        return (self.lam_high + self.lam_low) / self.mu**2

    @property
    def high_waiting_time(self) -> float:
        """Mean queueing delay of the high-priority class."""
        return self._mean_residual / (1.0 - self.rho_high)

    @property
    def low_waiting_time(self) -> float:
        """Mean queueing delay of the low-priority class."""
        return self._mean_residual / (
            (1.0 - self.rho_high) * (1.0 - self.rho_high - self.rho_low)
        )

    @property
    def high_response_time(self) -> float:
        """Waiting plus one service for the high-priority class."""
        return self.high_waiting_time + 1.0 / self.mu

    @property
    def low_response_time(self) -> float:
        """Waiting plus one service for the low-priority class."""
        return self.low_waiting_time + 1.0 / self.mu

    @property
    def high_queue_length(self) -> float:
        """Mean high-priority jobs in system (Little's law)."""
        return self.lam_high * self.high_response_time

    @property
    def low_queue_length(self) -> float:
        """Mean low-priority jobs in system (Little's law)."""
        return self.lam_low * self.low_response_time
