"""The N-policy M/M/1 queue.

The server sleeps when the system empties and resumes only once ``N`` jobs
have accumulated.  A classical threshold alternative to idle-wait timers
for shielding low-priority work; compared against the paper's idle-wait
design in the ablation benchmarks.

The stationary delay decomposes as
``E[W] = W_{M/M/1} + (N - 1) / (2 lam)``
(each position within the accumulation cycle is equally likely).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MM1NPolicy"]


@dataclass(frozen=True)
class MM1NPolicy:
    """M/M/1 queue under an N-policy.

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    mu:
        Exponential service rate.
    threshold:
        Number of jobs ``N >= 1`` that must accumulate before the server
        starts a busy period.  ``N = 1`` is the plain M/M/1 queue.
    """

    lam: float
    mu: float
    threshold: int

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.mu <= 0:
            raise ValueError(
                f"rates must be positive, got lam={self.lam}, mu={self.mu}"
            )
        if self.lam >= self.mu:
            raise ValueError(f"queue is unstable: lam={self.lam} >= mu={self.mu}")
        if self.threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {self.threshold}")

    @property
    def utilization(self) -> float:
        """Traffic intensity ``rho = lam / mu``."""
        return self.lam / self.mu

    @property
    def mean_waiting_time(self) -> float:
        """``W_{M/M/1} + (N - 1) / (2 lam)``."""
        mm1_wait = self.utilization / (self.mu - self.lam)
        return mm1_wait + (self.threshold - 1) / (2.0 * self.lam)

    @property
    def mean_response_time(self) -> float:
        """Waiting time plus one service."""
        return self.mean_waiting_time + 1.0 / self.mu

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system (Little's law)."""
        return self.lam * self.mean_response_time

    @property
    def server_sleep_fraction(self) -> float:
        """Fraction of time the server is accumulating (not serving).

        Equals the idle probability ``1 - rho`` of the work-conserving
        queue -- the N-policy reshapes *when* the idleness happens, not how
        much of it there is.
        """
        return 1.0 - self.utilization
