"""Analytic vacation-queue baselines.

The paper positions its model against the vacation-model literature
(Takagi; Bachmat & Schindler).  This package provides the classical closed
forms used as sanity baselines and for the related-work comparisons:

* :mod:`~repro.vacation.mm1` -- the plain M/M/1 queue;
* :mod:`~repro.vacation.multiple_vacations` -- M/G/1-style multiple
  exponential vacations (decomposition result);
* :mod:`~repro.vacation.npolicy` -- the N-policy M/M/1 queue;
* :mod:`~repro.vacation.priority` -- the non-preemptive two-class priority
  queue (Cobham), the strict-priority alternative to idle-wait admission.
"""

from repro.vacation.mm1 import MM1Queue
from repro.vacation.multiple_vacations import MM1MultipleVacations
from repro.vacation.npolicy import MM1NPolicy
from repro.vacation.priority import NonPreemptivePriorityQueue

__all__ = [
    "MM1Queue",
    "MM1MultipleVacations",
    "MM1NPolicy",
    "NonPreemptivePriorityQueue",
]
