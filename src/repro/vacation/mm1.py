"""Closed-form M/M/1 results."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MM1Queue"]


@dataclass(frozen=True)
class MM1Queue:
    """The M/M/1 queue with arrival rate ``lam`` and service rate ``mu``.

    The degenerate baseline of the paper's model: Poisson arrivals and no
    background work (``p = 0``).
    """

    lam: float
    mu: float

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.mu <= 0:
            raise ValueError(
                f"rates must be positive, got lam={self.lam}, mu={self.mu}"
            )
        if self.lam >= self.mu:
            raise ValueError(
                f"queue is unstable: lam={self.lam} >= mu={self.mu}"
            )

    @property
    def utilization(self) -> float:
        """Traffic intensity ``rho = lam / mu``."""
        return self.lam / self.mu

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system: ``rho / (1 - rho)``."""
        rho = self.utilization
        return rho / (1.0 - rho)

    @property
    def mean_waiting_time(self) -> float:
        """Mean time in queue (excluding service)."""
        return self.utilization / (self.mu - self.lam)

    @property
    def mean_response_time(self) -> float:
        """Mean time in system: ``1 / (mu - lam)``."""
        return 1.0 / (self.mu - self.lam)

    def queue_length_pmf(self, n: int) -> np.ndarray:
        """P(N = 0..n): the geometric distribution ``(1-rho) rho^k``."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        rho = self.utilization
        return (1.0 - rho) * rho ** np.arange(n + 1)

    def response_time_quantile(self, q: float) -> float:
        """Quantile of the exponential response-time distribution."""
        if not 0 < q < 1:
            raise ValueError(f"q must lie in (0, 1), got {q}")
        return -np.log(1.0 - q) * self.mean_response_time
