"""M/M/1 with multiple exponential vacations.

When the queue empties, the server leaves for an exponentially distributed
vacation; if the queue is still empty on return it leaves again ("multiple
vacations").  The classical decomposition result (Takagi, *Queueing
Analysis* Vol. 1) states that the stationary waiting time is the M/G/1
waiting time plus an independent term distributed as the equilibrium
residual vacation:

``E[W] = lam E[S^2] / (2 (1 - rho)) + E[V^2] / (2 E[V])``.

This is the classical model closest to the paper's system when background
work is abundant (the server "vacations" into background jobs); the paper's
chain differs by its finite background buffer and the idle-wait timer.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MM1MultipleVacations"]


@dataclass(frozen=True)
class MM1MultipleVacations:
    """M/M/1 queue with multiple exponential vacations.

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    mu:
        Exponential service rate.
    vacation_rate:
        Rate of the exponential vacation length ``V`` (``E[V]`` is its
        inverse).
    """

    lam: float
    mu: float
    vacation_rate: float

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.mu <= 0 or self.vacation_rate <= 0:
            raise ValueError(
                "rates must be positive, got "
                f"lam={self.lam}, mu={self.mu}, vacation_rate={self.vacation_rate}"
            )
        if self.lam >= self.mu:
            raise ValueError(f"queue is unstable: lam={self.lam} >= mu={self.mu}")

    @property
    def utilization(self) -> float:
        """Traffic intensity ``rho = lam / mu``."""
        return self.lam / self.mu

    @property
    def mean_vacation(self) -> float:
        """Mean vacation length ``E[V]``."""
        return 1.0 / self.vacation_rate

    @property
    def mean_waiting_time(self) -> float:
        """Decomposition: M/M/1 waiting time plus residual vacation.

        For exponential S and V: ``rho / (mu - lam) + 1 / vacation_rate``.
        """
        mm1_wait = self.utilization / (self.mu - self.lam)
        residual_vacation = self.mean_vacation  # exponential: E[V^2]/2E[V] = E[V]
        return mm1_wait + residual_vacation

    @property
    def mean_response_time(self) -> float:
        """Waiting time plus one service."""
        return self.mean_waiting_time + 1.0 / self.mu

    @property
    def mean_queue_length(self) -> float:
        """Mean number in system (Little's law)."""
        return self.lam * self.mean_response_time
