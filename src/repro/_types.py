"""Shared type aliases for the strictly typed packages.

``FloatArray`` is the repo-wide spelling of a dense float64 numpy array;
``ArrayLike`` covers everything the validators accept on input.  Keeping
the aliases in one module lets ``mypy --strict`` see concrete generic
parameters everywhere without repeating ``npt.NDArray[np.float64]``.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
import numpy.typing as npt

__all__ = ["ArrayLike", "FloatArray"]

FloatArray: TypeAlias = npt.NDArray[np.float64]
ArrayLike: TypeAlias = npt.ArrayLike
