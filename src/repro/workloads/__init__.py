"""The paper's workloads and their comparators.

* :mod:`~repro.workloads.paper` -- the three trace-derived 2-state MMPPs of
  Figures 1-2 (E-mail, Software Development, User Accounts) and the 6 ms
  exponential service process.
* :mod:`~repro.workloads.comparators` -- the Section 5.4 processes matched
  to the E-mail workload: high-ACF MMPP, low-ACF MMPP, IPP, Poisson.
* :mod:`~repro.workloads.scaling` -- utilization sweeps.
* :mod:`~repro.workloads.traces` -- synthetic trace generation and I/O.
"""

from repro.workloads.paper import (
    SERVICE_RATE_PER_MS,
    SERVICE_TIME_MS,
    WORKLOADS,
    WorkloadSpec,
    email,
    software_development,
    user_accounts,
)
from repro.workloads.comparators import (
    COMPARATOR_NAMES,
    dependence_comparators,
)
from repro.workloads.scaling import utilization_sweep
from repro.workloads.traces import (
    generate_trace,
    load_trace,
    save_trace,
    trace_summary,
)

__all__ = [
    "SERVICE_RATE_PER_MS",
    "SERVICE_TIME_MS",
    "WORKLOADS",
    "WorkloadSpec",
    "email",
    "software_development",
    "user_accounts",
    "COMPARATOR_NAMES",
    "dependence_comparators",
    "utilization_sweep",
    "generate_trace",
    "load_trace",
    "save_trace",
    "trace_summary",
]
