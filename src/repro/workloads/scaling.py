"""Utilization sweeps over arrival processes.

The paper sweeps foreground load by rescaling the MMPP mean rate ("we scale
the mean of the two MMPPs ... to obtain different foreground utilizations"),
which leaves the CV and the lag-k ACF untouched.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.processes.map_process import MarkovianArrivalProcess

__all__ = ["utilization_sweep"]


def utilization_sweep(
    arrival: MarkovianArrivalProcess,
    utilizations: Iterable[float],
    service_rate: float,
) -> Iterator[tuple[float, MarkovianArrivalProcess]]:
    """Yield ``(utilization, rescaled process)`` pairs.

    Parameters
    ----------
    arrival:
        Template process whose dependence structure is preserved.
    utilizations:
        Target values of ``lambda / service_rate``; each must lie in (0, 1)
        for the resulting model to be stable.
    service_rate:
        Service rate that defines utilization.
    """
    if service_rate <= 0:
        raise ValueError(f"service_rate must be positive, got {service_rate}")
    for util in utilizations:
        if util <= 0:
            raise ValueError(f"utilizations must be positive, got {util}")
        yield util, arrival.scaled_to_utilization(util, service_rate)
