"""Synthetic trace generation and I/O.

The measured Seagate traces behind the paper's Figure 1 are proprietary;
this module generates statistically equivalent synthetic traces from the
fitted MMPPs (the substitution documented in DESIGN.md) and provides the
trace summary (count / mean / CV / ACF) the figure's table reports.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.processes.map_process import MarkovianArrivalProcess
from repro.processes.sampling import MAPSampler
from repro.processes.statistics import SampleSummary, describe_sample

__all__ = ["generate_trace", "save_trace", "load_trace", "trace_summary"]


def generate_trace(
    process: MarkovianArrivalProcess,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Generate ``n`` inter-arrival times from the given process."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return MAPSampler(process, rng).interarrival_times(n)


def save_trace(path: str | Path, interarrivals: np.ndarray) -> None:
    """Save a trace of inter-arrival times as a single-column text file.

    The format is one float per line (milliseconds), the common
    denominator of disk-trace tooling.
    """
    arr = np.asarray(interarrivals, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"trace must be 1-D, got shape {arr.shape}")
    if np.any(arr < 0):
        raise ValueError("inter-arrival times must be non-negative")
    np.savetxt(path, arr, fmt="%.9g")


def load_trace(path: str | Path) -> np.ndarray:
    """Load a trace saved by :func:`save_trace`."""
    arr = np.loadtxt(path, dtype=float, ndmin=1)
    if arr.ndim != 1:
        raise ValueError(f"trace file {path} is not single-column")
    if np.any(arr < 0):
        raise ValueError(f"trace file {path} contains negative inter-arrival times")
    return arr


def trace_summary(interarrivals: np.ndarray, lags: int = 100) -> SampleSummary:
    """Count / mean / CV / ACF summary of a trace (Figure 1's table)."""
    return describe_sample(np.asarray(interarrivals, dtype=float), lags=lags)
