"""The three paper workloads as fitted 2-state MMPPs.

The paper fits one MMPP(2) per measured trace (Figure 2).  The printed
parameter table in the available copy of the paper is partially corrupted,
so the workloads here are re-fitted with :func:`repro.processes.fit_mmpp2`
to the *stated* characteristics (see DESIGN.md section 5):

========================  ===========  =====  ==========  =================
workload                  utilization  SCV    ACF decay   dependence label
========================  ===========  =====  ==========  =================
E-mail                    8%           2.40   0.995       high ACF (LRD-ish)
Software Development      6%           1.40   0.85        low ACF (SRD)
User Accounts             2%           2.05   0.99        strong ACF, light
========================  ===========  =====  ==========  =================

All three share the paper's 6 ms exponential service process.  Time is in
milliseconds throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.processes.fitting import fit_mmpp2
from repro.processes.mmpp import MMPP

__all__ = [
    "SERVICE_TIME_MS",
    "SERVICE_RATE_PER_MS",
    "WorkloadSpec",
    "WORKLOADS",
    "email",
    "software_development",
    "user_accounts",
]

#: The paper's mean service time ("an exponential distribution with mean
#: service time of 6 ms").
SERVICE_TIME_MS = 6.0

#: The corresponding service rate, in jobs per millisecond.
SERVICE_RATE_PER_MS = 1.0 / SERVICE_TIME_MS


@dataclass(frozen=True)
class WorkloadSpec:
    """Fitting targets of one trace-derived workload."""

    name: str
    #: Foreground utilization of the measured system (lambda / mu).
    base_utilization: float
    #: Squared coefficient of variation of inter-arrival times.
    scv: float
    #: Geometric decay factor of the inter-arrival ACF.
    acf_decay: float

    @property
    def base_rate(self) -> float:
        """Mean arrival rate (per ms) at the measured utilization."""
        return self.base_utilization * SERVICE_RATE_PER_MS

    def fit(self) -> MMPP:
        """Fit the MMPP(2) for this workload."""
        return fit_mmpp2(rate=self.base_rate, scv=self.scv, decay=self.acf_decay)


#: The three workloads of the paper's Figure 1/Figure 2.
WORKLOADS: dict[str, WorkloadSpec] = {
    "email": WorkloadSpec(
        name="E-mail", base_utilization=0.08, scv=2.40, acf_decay=0.995
    ),
    "software_development": WorkloadSpec(
        name="Software Development", base_utilization=0.06, scv=1.40, acf_decay=0.85
    ),
    "user_accounts": WorkloadSpec(
        name="User Accounts", base_utilization=0.02, scv=2.05, acf_decay=0.99
    ),
}


@lru_cache(maxsize=None)
def _fitted(key: str) -> MMPP:
    return WORKLOADS[key].fit()


def email() -> MMPP:
    """The E-mail workload: strongly autocorrelated, slowly decaying ACF."""
    return _fitted("email")


def software_development() -> MMPP:
    """The Software Development workload: weak, fast-decaying ACF."""
    return _fitted("software_development")


def user_accounts() -> MMPP:
    """The User Accounts workload: strong ACF at a very light load."""
    return _fitted("user_accounts")
