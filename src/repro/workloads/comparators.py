"""The Section 5.4 arrival-process comparators.

To isolate the effect of *dependence* from *variability*, the paper
compares four processes that share the E-mail workload's mean rate:

* ``high_acf`` -- the E-mail MMPP itself (strong, slowly decaying ACF);
* ``low_acf``  -- an MMPP with the same mean and CV but a fast-decaying ACF;
* ``ipp``      -- an interrupted Poisson process with the same mean and CV
  but *zero* autocorrelation (renewal);
* ``expo``     -- a Poisson process with the same mean only.
"""

from __future__ import annotations

from functools import lru_cache

from repro.processes.fitting import fit_ipp, fit_mmpp2
from repro.processes.map_process import MarkovianArrivalProcess
from repro.processes.poisson import PoissonProcess
from repro.workloads.paper import WORKLOADS

__all__ = ["COMPARATOR_NAMES", "dependence_comparators"]

#: Display order of the four processes, matching the paper's legends.
COMPARATOR_NAMES = ("high_acf", "low_acf", "ipp", "expo")

#: Decay factor used for the fast-decaying ("Low ACF") comparator.
LOW_ACF_DECAY = 0.85


@lru_cache(maxsize=None)
def dependence_comparators(
    reference: str = "email",
) -> dict[str, MarkovianArrivalProcess]:
    """The four comparator processes, keyed by :data:`COMPARATOR_NAMES`.

    Parameters
    ----------
    reference:
        Key into :data:`repro.workloads.paper.WORKLOADS` whose mean rate
        (and, except for ``expo``, SCV) the comparators match.
    """
    if reference not in WORKLOADS:
        raise ValueError(
            f"unknown workload {reference!r}; choose from {sorted(WORKLOADS)}"
        )
    spec = WORKLOADS[reference]
    rate = spec.base_rate
    return {
        "high_acf": fit_mmpp2(rate=rate, scv=spec.scv, decay=spec.acf_decay),
        "low_acf": fit_mmpp2(rate=rate, scv=spec.scv, decay=LOW_ACF_DECAY),
        "ipp": fit_ipp(mean=1.0 / rate, scv=spec.scv),
        "expo": PoissonProcess(rate),
    }
