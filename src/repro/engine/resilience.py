"""Failure isolation for the solve/sweep pipeline.

A 40-point sweep must not lose 39 healthy points to one divergent
R-matrix, singular boundary solve, crashed worker or corrupt cache entry.
This module defines the vocabulary the engine uses to degrade gracefully:

* the ``on_error`` modes of :class:`~repro.engine.SweepEngine`,
  :func:`~repro.experiments.sweeps.sweep` and ``sweep_many``:

  - ``"raise"`` (default) -- propagate the first failure, the historical
    behavior;
  - ``"skip"`` -- failed points become NaN in the series; each failure
    emits a :class:`ResilienceWarning`, and :class:`ContractViolation`
    failures are *additionally* recorded in
    :attr:`~repro.engine.stats.EngineStats.failures` (a contract
    violation is never silently swallowed);
  - ``"collect"`` -- failed points become NaN and *every* failure is
    recorded as a structured :class:`FailedSolve` in ``EngineStats``;

* :class:`FailedSolve`, the structured failure record: which model (by
  fingerprint), which pipeline stage, what went wrong, the solver
  attempt log (escalation-ladder rungs, worker retries) and whatever
  :class:`~repro.qbd.rmatrix.SolveStats` the failed solve produced.

Failures never turn into numbers: a failed point is NaN in every series,
and the record states why.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.contracts.errors import ContractViolation
from repro.qbd.rmatrix import SolveStats

__all__ = [
    "ON_ERROR_MODES",
    "FailedSolve",
    "ResilienceWarning",
    "SweepCancelled",
    "failure_from_exception",
    "validate_on_error",
]

#: Valid ``on_error`` modes of the sweep pipeline.
ON_ERROR_MODES = ("raise", "skip", "collect")

#: Pipeline stages a :class:`FailedSolve` can originate from.
FAILURE_STAGES = (
    "solve",  # a sequential model solve (R matrix, boundary, metrics)
    "batched",  # an item of a batched kernel call
    "cache-load",  # a corrupt on-disk cache entry (quarantined, re-solved)
    "worker",  # a crashed or hung worker process
)


class ResilienceWarning(RuntimeWarning):  # noqa: RL007 -- plain warning category; carries no data to validate
    """Warns that a sweep point was skipped or degraded (``on_error="skip"``)."""


class SweepCancelled(RuntimeError):  # noqa: RL007 -- plain exception type; carries no data to validate
    """A sweep was cancelled cooperatively through the engine's ``cancel`` hook.

    Deliberately *not* one of the failure types ``on_error`` isolates: a
    cancellation must stop the whole sweep, never degrade into a NaN
    point.  The background-job layer (:mod:`repro.jobs`) raises and
    catches this to implement cooperative job cancellation.
    """


def validate_on_error(value: str) -> str:
    """Validate and return an ``on_error`` mode.

    Raises
    ------
    ValueError
        For anything outside :data:`ON_ERROR_MODES`.
    """
    if value not in ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_MODES}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class FailedSolve:
    """One isolated failure of the sweep pipeline.

    Attributes
    ----------
    fingerprint:
        Content hash of the model that failed (see
        :meth:`~repro.core.model.FgBgModel.fingerprint`).
    stage:
        Where in the pipeline the failure happened, one of
        :data:`FAILURE_STAGES`.
    error_type:
        Exception class name (``"QBDConvergenceError"``, ...).
    message:
        ``str(exception)`` -- the diagnostic a raise would have shown.
    contract_violation:
        True when the underlying exception was a
        :class:`~repro.contracts.ContractViolation` -- these are never
        silently swallowed, whatever the ``on_error`` mode.
    attempts:
        Attempt log: escalation-ladder rungs tried
        (``"logarithmic-reduction"``, ``"functional"``, ...), worker
        retries, quarantined cache paths -- whatever the stage recorded
        before giving up.
    solve_stats:
        Solver diagnostics of the failed solve, when any iteration got
        far enough to produce them.
    """

    fingerprint: str
    stage: str
    error_type: str
    message: str
    contract_violation: bool = False
    attempts: tuple[str, ...] = field(default=())
    solve_stats: SolveStats | None = None

    def __post_init__(self) -> None:
        if self.stage not in FAILURE_STAGES:
            raise ValueError(
                f"stage must be one of {FAILURE_STAGES}, got {self.stage!r}"
            )
        if not self.fingerprint:
            raise ValueError("fingerprint must be non-empty")

    def as_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "fingerprint": self.fingerprint,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "contract_violation": self.contract_violation,
            "attempts": list(self.attempts),
            "solve_stats": (
                None if self.solve_stats is None else self.solve_stats.as_dict()
            ),
        }

    def __str__(self) -> str:
        return (
            f"FailedSolve({self.fingerprint[:12]}, stage={self.stage}, "
            f"{self.error_type}: {self.message})"
        )


def failure_from_exception(  # noqa: RL007 -- validation delegated to FailedSolve.__post_init__
    fingerprint: str,
    exc: BaseException,
    stage: str = "solve",
    attempts: tuple[str, ...] = (),
) -> FailedSolve:
    """Build a :class:`FailedSolve` from a caught exception.

    Merges the exception's own attempt log (the ``attempts`` attribute
    :class:`~repro.qbd.rmatrix.QBDConvergenceError` carries after the
    escalation ladder is exhausted) with any caller-side attempts.
    """
    exc_attempts = tuple(getattr(exc, "attempts", ()))
    return FailedSolve(
        fingerprint=fingerprint,
        stage=stage,
        error_type=type(exc).__name__,
        message=str(exc),
        contract_violation=isinstance(exc, ContractViolation),
        attempts=tuple(attempts) + exc_attempts,
    )
