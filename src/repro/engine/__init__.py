"""Sweep execution engine: parallel solves, caching, R-matrix warm starts.

* :mod:`~repro.engine.engine` -- :class:`SweepEngine`, the executor.
* :mod:`~repro.engine.config` -- :class:`EngineConfig`, the frozen,
  serializable configuration the executor (and the job specs of
  :mod:`repro.jobs`) run under.
* :mod:`~repro.engine.cache` -- :class:`SolveCache`, the content-addressed
  two-level (memory + optional disk) solution cache.
* :mod:`~repro.engine.stats` -- :class:`EngineStats`, aggregation of the
  per-solve :class:`~repro.qbd.rmatrix.SolveStats` for benchmarking.
* :mod:`~repro.engine.resilience` -- the ``on_error`` failure-isolation
  vocabulary: :class:`FailedSolve`, :class:`ResilienceWarning`.

See :func:`repro.experiments.sweeps.sweep` for the high-level API that
drives this engine over a parameter axis.
"""

from repro.engine.cache import SolveCache, solve_key
from repro.engine.config import EngineConfig
from repro.engine.engine import SweepEngine
from repro.engine.resilience import (
    ON_ERROR_MODES,
    FailedSolve,
    ResilienceWarning,
    SweepCancelled,
    failure_from_exception,
    validate_on_error,
)
from repro.engine.stats import BatchGroupRecord, EngineStats, SolveRecord
from repro.qbd.rmatrix import SolveStats

__all__ = [
    "ON_ERROR_MODES",
    "BatchGroupRecord",
    "EngineConfig",
    "EngineStats",
    "FailedSolve",
    "ResilienceWarning",
    "SolveCache",
    "SolveRecord",
    "SolveStats",
    "SweepCancelled",
    "SweepEngine",
    "failure_from_exception",
    "solve_key",
    "validate_on_error",
]
