"""Sweep execution engine: parallel solves, caching, R-matrix warm starts.

* :mod:`~repro.engine.engine` -- :class:`SweepEngine`, the executor.
* :mod:`~repro.engine.cache` -- :class:`SolveCache`, the content-addressed
  two-level (memory + optional disk) solution cache.
* :mod:`~repro.engine.stats` -- :class:`EngineStats`, aggregation of the
  per-solve :class:`~repro.qbd.rmatrix.SolveStats` for benchmarking.

See :func:`repro.experiments.sweeps.sweep` for the high-level API that
drives this engine over a parameter axis.
"""

from repro.engine.cache import SolveCache, solve_key
from repro.engine.engine import SweepEngine
from repro.engine.stats import BatchGroupRecord, EngineStats, SolveRecord
from repro.qbd.rmatrix import SolveStats

__all__ = [
    "BatchGroupRecord",
    "EngineStats",
    "SolveCache",
    "SolveRecord",
    "SolveStats",
    "SweepEngine",
    "solve_key",
]
