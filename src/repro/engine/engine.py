"""The sweep engine: cached, warm-started, optionally parallel solves.

A parameter sweep solves many nearby :class:`~repro.core.model.FgBgModel`
instances.  :class:`SweepEngine` exploits that structure three ways:

* **caching** -- solutions are stored under a content hash of the model
  (see :meth:`FgBgModel.fingerprint`), so repeated points (across figures,
  or across runs with an on-disk cache) are never solved twice;
* **warm-starting** -- within a chain of models that differ by one
  parameter step, the R matrix of the previous point seeds the next solve
  (Newton's method converts the closeness into a handful of iterations);
* **parallelism** -- independent chains run across worker processes;
* **batching** -- with ``batched=True`` the cache-miss models of a whole
  sweep are grouped by QBD block shape and each group is solved in one
  stacked kernel call (:mod:`repro.qbd.batched`), replacing N Python-level
  solver loops with batched ``np.linalg`` primitives.

Warm-started results agree with cold solves to solver tolerance; cached
results are bit-identical to the solve that populated the entry; batched
results agree with sequential results to solver tolerance (bitwise for
the R matrices in practice).

Resilience (see :mod:`repro.engine.resilience`): ``on_error`` isolates
per-point solve failures instead of sinking the sweep, ``escalate``
enables the truncated dense-chain rung of the solver escalation ladder,
corrupt cache entries are quarantined and re-solved, crashed or hung
worker processes are retried with backoff, bounded-requeued, and finally
replaced by an in-parent serial solve -- so a sweep either finishes with
every healthy point intact or raises, never silently drops work.
"""

from __future__ import annotations

import os
import signal
import time
import warnings
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

import numpy as np

from repro.contracts.errors import ContractViolation
from repro.core.batched import solve_models_batched
from repro.core.model import FgBgModel
from repro.core.result import FgBgSolution
from repro.engine.cache import SolveCache, solve_key
from repro.engine.config import EngineConfig
from repro.engine.resilience import (
    FailedSolve,
    ResilienceWarning,
    SweepCancelled,
    failure_from_exception,
    validate_on_error,
)
from repro.engine.stats import BatchGroupRecord, EngineStats, SolveRecord
from repro.faults import fire as _fault_fire
from repro.qbd.rmatrix import QBDConvergenceError

__all__ = ["SweepEngine"]

#: Solve failures ``on_error`` isolates: solver divergence, a singular
#: boundary system, an invalid/unstable model, a contract violation.
#: Anything else (a TypeError, a genuine bug) always propagates.
_SOLVE_FAILURES = (
    QBDConvergenceError,
    np.linalg.LinAlgError,
    ContractViolation,
    ValueError,
)


def _run_chain_worker(
    config: dict, models: list[FgBgModel]
) -> tuple[list[FgBgSolution | None], list[SolveRecord], list[FailedSolve]]:
    """Solve one chain in a worker process (must be module-level to pickle).

    Workers share the parent's on-disk cache directory (if any); in-memory
    entries are merged back by the parent from the returned solutions, and
    isolated failures ride back next to the records.
    """
    if _fault_fire("worker_kill"):
        # Chaos probe: die the way an OOM-killed worker dies -- no Python
        # teardown, the parent sees a BrokenProcessPool and must requeue.
        os.kill(os.getpid(), signal.SIGKILL)
    cache_dir = config["cache_dir"]
    engine = SweepEngine(
        jobs=1,
        cache=SolveCache(cache_dir) if cache_dir is not None else None,
        warm_start=config["warm_start"],
        algorithm=config["algorithm"],
        tol=config["tol"],
        on_error=config["on_error"],
        escalate=config["escalate"],
    )
    solutions = engine.run_chain(models)
    return solutions, engine.stats.records, engine.stats.failures


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Force-kill a pool's workers so a hung chain cannot block shutdown.

    Reaches into the executor's process table (stable across supported
    CPython versions); guarded so a missing attribute degrades to the
    plain non-blocking shutdown.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead worker
            pass


class SweepEngine:
    """Executes model solves for parameter sweeps.

    Parameters
    ----------
    config:
        An :class:`~repro.engine.config.EngineConfig` supplying every
        keyword below in one validated, serializable object.  Explicit
        keyword arguments override the matching config field, so
        ``SweepEngine(config=cfg, jobs=4)`` is ``cfg`` with four workers.
        The resolved configuration is exposed as :attr:`config`.
    jobs:
        Worker processes for :meth:`run_chains`.  ``1`` (default) stays
        serial; chains are the unit of parallelism because warm-starting
        is sequential within a chain.
    cache:
        ``None`` (default) for no caching, a :class:`SolveCache`, or a
        directory path for an on-disk cache shared across runs/processes.
    warm_start:
        Seed each solve in a chain with the previous point's R matrix.
        Off by default: the default logarithmic-reduction solver is so
        fast on the paper's chains that cold solves win on wall time;
        warm Newton wins on iteration count (see ``benchmarks/bench_engine.py``).
    batched:
        Solve the cache-miss models of each :meth:`run_chain` /
        :meth:`run_chains` call through the stacked kernel
        (:mod:`repro.qbd.batched`): pending models are grouped by QBD
        block shape and each group becomes one batched solve, recorded as
        a :class:`~repro.engine.stats.BatchGroupRecord`.  Batched results
        agree with sequential results to solver tolerance.  Requires the
        default ``logarithmic-reduction`` algorithm; ``warm_start`` seeds
        are not used on the batched path (stacked solves are cold by
        construction -- and cold logred is the fast configuration here
        anyway).  Caching composes: hits are served per model, only
        misses enter a batch.  ``jobs`` is ignored while batching -- the
        stacked BLAS calls replace process parallelism for the solve
        stage.
    algorithm, tol:
        Passed through to :meth:`FgBgModel.solve`.
    on_error:
        ``"raise"`` (default) propagates the first solve failure --
        the historical behavior.  ``"skip"`` and ``"collect"`` isolate
        failures per point: the failed point's solution slot is ``None``
        (NaN in any derived series) and every healthy point still solves.
        ``"skip"`` emits a :class:`~repro.engine.resilience.ResilienceWarning`
        per failure and records :class:`ContractViolation` failures in
        :attr:`stats` ``.failures`` (a contract violation is never
        silently swallowed); ``"collect"`` records *every* failure as a
        structured :class:`~repro.engine.resilience.FailedSolve` and
        warns about none of them.
    escalate:
        Enable the truncated dense-chain rung of the solver escalation
        ladder (see :func:`repro.qbd.stationary.solve_qbd`); escalated
        solves are flagged ``degraded`` in their
        :class:`~repro.qbd.rmatrix.SolveStats`.
    max_retries:
        How many times a crashed or hung worker chain is re-submitted
        (with backoff) before the parent solves it serially in-process.
        ``0`` goes straight to the in-parent fallback.
    retry_backoff_ms:
        Backoff before the first re-submission; doubles per retry round.
    chain_timeout_ms:
        Optional wall-time limit per worker chain; a chain that exceeds
        it is treated like a crashed worker (requeue, then in-parent).
        ``None`` (default) trusts the solver's own iteration/time budget
        (``REPRO_SOLVER_BUDGET_MS``) to bound every solve.
    progress:
        Optional callback ``progress(points)`` invoked with the number of
        points just served (fresh solve, cache hit, or isolated failure).
        Per-point on the sequential path; per batch / per completed chain
        on the batched and parallel paths (worker processes cannot call
        back into the parent).  The background-job layer uses this to
        report per-point job progress.
    cancel:
        Optional callback ``cancel() -> bool`` polled between solves (and
        before each batch / worker round); returning True raises
        :class:`~repro.engine.resilience.SweepCancelled`.  Cooperative:
        a solve already in flight finishes first.
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        jobs: int | None = None,
        cache: SolveCache | str | os.PathLike | None = None,
        warm_start: bool | None = None,
        batched: bool | None = None,
        algorithm: str | None = None,
        tol: float | None = None,
        on_error: str | None = None,
        escalate: bool | None = None,
        max_retries: int | None = None,
        retry_backoff_ms: float | None = None,
        chain_timeout_ms: float | None = None,
        progress: Callable[[int], None] | None = None,
        cancel: Callable[[], bool] | None = None,
    ) -> None:
        overrides = {
            name: value
            for name, value in (
                ("jobs", jobs),
                ("warm_start", warm_start),
                ("batched", batched),
                ("algorithm", algorithm),
                ("tol", tol),
                ("on_error", on_error),
                ("escalate", escalate),
                ("max_retries", max_retries),
                ("retry_backoff_ms", retry_backoff_ms),
                ("chain_timeout_ms", chain_timeout_ms),
            )
            if value is not None
        }
        if cache is not None and not isinstance(cache, SolveCache):
            cache = SolveCache(cache)
        if cache is not None:
            directory = cache.directory
            overrides["cache_dir"] = (
                None if directory is None else str(directory)
            )
            overrides["cache_memory"] = directory is None
        base = config if config is not None else EngineConfig()
        # replace() re-runs EngineConfig validation over the merged fields.
        self.config = base.replace(**overrides) if overrides else base
        self.cache = cache if cache is not None else self.config.build_cache()
        self.jobs = self.config.jobs
        self.warm_start = self.config.warm_start
        self.batched = self.config.batched
        self.algorithm = self.config.algorithm
        self.tol = self.config.tol
        self.on_error = validate_on_error(self.config.on_error)
        self.escalate = self.config.escalate
        self.max_retries = self.config.max_retries
        self.retry_backoff_ms = self.config.retry_backoff_ms
        self.chain_timeout_ms = self.config.chain_timeout_ms
        self.progress = progress
        self.cancel = cancel
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Progress and cancellation hooks
    # ------------------------------------------------------------------
    def _tick(self, points: int = 1) -> None:
        """Report ``points`` served to the progress hook, if any."""
        if self.progress is not None and points:
            self.progress(points)

    def _check_cancelled(self) -> None:
        """Raise :class:`SweepCancelled` when the cancel hook says stop."""
        if self.cancel is not None and self.cancel():
            raise SweepCancelled("sweep cancelled by the engine's cancel hook")

    # ------------------------------------------------------------------
    # Failure bookkeeping
    # ------------------------------------------------------------------
    def _record_failure(self, failure: FailedSolve) -> None:
        """Apply the ``on_error`` policy to one isolated failure.

        Callers only reach this in ``"skip"``/``"collect"`` mode (or for
        always-recoverable stages like cache quarantine and worker
        crashes, which are isolated in every mode).
        """
        if self.on_error == "collect" or failure.contract_violation:
            self.stats.add_failure(failure)
        if self.on_error == "skip":
            warnings.warn(str(failure), ResilienceWarning, stacklevel=3)

    # ------------------------------------------------------------------
    # Single solves
    # ------------------------------------------------------------------
    def _cache_lookup(self, key: str, fingerprint: str) -> FgBgSolution | None:
        """Cache get with quarantine: a corrupt entry is moved aside,
        recorded as a ``"cache-load"`` failure (in *every* ``on_error``
        mode -- the point is re-solved, so nothing is lost), and treated
        as a miss."""
        if self.cache is None:
            return None
        try:
            return self.cache.get(key)
        except ContractViolation as exc:
            quarantined = self.cache.quarantine(key)
            attempts = (
                () if quarantined is None else (f"quarantined:{quarantined.name}",)
            )
            failure = failure_from_exception(
                fingerprint, exc, stage="cache-load", attempts=attempts
            )
            self.stats.add_failure(failure)
            if self.on_error == "skip":
                warnings.warn(
                    f"corrupt cache entry quarantined; re-solving: {failure}",
                    ResilienceWarning,
                    stacklevel=3,
                )
            return None

    def solve(
        self, model: FgBgModel, initial_r: np.ndarray | None = None
    ) -> FgBgSolution | None:
        """Solve one model, consulting the cache first.

        ``initial_r`` warm-starts the R iteration of a fresh solve; it is
        ignored on a cache hit (the cached solution is already exact).
        With ``on_error="skip"``/``"collect"`` a failed solve returns
        ``None`` instead of raising (see the class docstring); failed
        points get no :class:`~repro.engine.stats.SolveRecord` -- their
        :class:`~repro.engine.resilience.FailedSolve` is the record.
        """
        self._check_cancelled()
        fingerprint = model.fingerprint()
        key = solve_key(fingerprint, self.algorithm, self.tol)
        cached = self._cache_lookup(key, fingerprint)
        if cached is not None:
            self.stats.add(
                SolveRecord(fingerprint, cache_hit=True, stats=cached.solve_stats)
            )
            self._tick()
            return cached
        try:
            solution = model.solve(
                algorithm=self.algorithm,
                tol=self.tol,
                initial_r=initial_r,
                escalate=self.escalate,
            )
        except _SOLVE_FAILURES as exc:
            if self.on_error == "raise":
                raise
            self._record_failure(
                failure_from_exception(fingerprint, exc, stage="solve")
            )
            self._tick()
            return None
        if self.cache is not None:
            self.cache.put(key, solution)
        self.stats.add(
            SolveRecord(fingerprint, cache_hit=False, stats=solution.solve_stats)
        )
        self._tick()
        return solution

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def solve_batch(
        self, models: Iterable[FgBgModel]
    ) -> list[FgBgSolution | None]:
        """Solve many models through the batched kernel, cache first.

        Cache hits (and duplicate models) are served individually; the
        remaining misses are deduplicated, grouped by QBD block shape and
        solved by :func:`~repro.core.batched.solve_models_batched` -- one
        stacked kernel call per group, recorded in
        :attr:`stats` ``.batch_groups``.  Solutions come back in input
        order and fresh ones populate the cache, so a later sequential or
        batched run over the same models is all hits.  With
        ``on_error="skip"``/``"collect"``, a poisoned item is isolated to
        its own slot (``None``) per the kernel's item-level fallback --
        the rest of its shape group solves normally.
        """
        self._check_cancelled()
        models = list(models)
        if not models:
            return []
        keys = [
            solve_key(m.fingerprint(), self.algorithm, self.tol)
            for m in models
        ]
        served: dict[str, FgBgSolution | None] = {}
        pending: dict[str, FgBgModel] = {}
        for model, key in zip(models, keys):
            if key in served or key in pending:
                continue
            cached = self._cache_lookup(key, model.fingerprint())
            if cached is not None:
                served[key] = cached
                continue
            pending[key] = model
        if pending:
            pending_keys = list(pending)
            pending_models = list(pending.values())
            solutions, reports = solve_models_batched(
                pending_models,
                tol=self.tol,
                return_reports=True,
                on_error=self.on_error,
                escalate=self.escalate,
            )
            for report in reports:
                self.stats.add_batch_group(
                    BatchGroupRecord(
                        boundary_size=report.boundary_size,
                        phase_count=report.phase_count,
                        report=report,
                    )
                )
                for item in report.failures:
                    self._record_failure(
                        FailedSolve(
                            fingerprint=pending_models[item.index].fingerprint(),
                            stage="batched",
                            error_type=item.error_type,
                            message=item.message,
                            contract_violation=item.contract_violation,
                            attempts=item.attempts,
                        )
                    )
            for key, solution in zip(pending_keys, solutions):
                if solution is not None and self.cache is not None:
                    self.cache.put(key, solution)
                served[key] = solution
        fresh_remaining = set(pending)
        results: list[FgBgSolution | None] = []
        for model, key in zip(models, keys):
            solution = served[key]
            cache_hit = key not in fresh_remaining
            fresh_remaining.discard(key)
            if solution is not None:
                self.stats.add(
                    SolveRecord(
                        model.fingerprint(),
                        cache_hit=cache_hit,
                        stats=solution.solve_stats,
                    )
                )
            results.append(solution)
        self._tick(len(results))
        return results

    # ------------------------------------------------------------------
    # Chains
    # ------------------------------------------------------------------
    def run_chain(
        self, models: Iterable[FgBgModel]
    ) -> list[FgBgSolution | None]:
        """Solve a sequence of related models in order.

        With :attr:`warm_start` on, each solve is seeded with the previous
        solution's R matrix -- order the chain so neighbours are close in
        parameter space (a sweep axis already is).  With :attr:`batched`
        on, the chain is handed to :meth:`solve_batch` instead (output is
        identical to solver tolerance).  Failed points (isolated by
        ``on_error``) are ``None`` slots and never seed a warm start.
        """
        if self.batched:
            return self.solve_batch(models)
        solutions: list[FgBgSolution | None] = []
        prev_r: np.ndarray | None = None
        for model in models:
            solution = self.solve(model, initial_r=prev_r)
            if self.warm_start:
                prev_r = None if solution is None else solution.qbd_solution.r
            solutions.append(solution)
        return solutions

    def run_chains(
        self, chains: Sequence[Sequence[FgBgModel]]
    ) -> list[list[FgBgSolution | None]]:
        """Solve several independent chains, in parallel when ``jobs > 1``.

        Results are returned in chain order regardless of completion
        order, so parallel output is identical to serial output.

        With :attr:`batched` on, all chains pool into one
        :meth:`solve_batch` call (cross-chain duplicates are solved once)
        and the stacked kernel supplies the parallelism -- no worker
        processes are spawned.

        A worker that crashes (``BrokenProcessPool``) or exceeds
        :attr:`chain_timeout_ms` does not lose its chains: they are
        re-submitted to a fresh pool up to :attr:`max_retries` times with
        exponential backoff, then solved serially in the parent as a last
        resort.  Each recovery is recorded as a ``"worker"``-stage
        :class:`~repro.engine.resilience.FailedSolve` (the points
        themselves still get correct values) and counted in
        :attr:`stats` ``.worker_retries``.
        """
        chains = [list(chain) for chain in chains]
        if self.batched:
            flat = [model for chain in chains for model in chain]
            solutions = self.solve_batch(flat)
            results: list[list[FgBgSolution | None]] = []
            cursor = 0
            for chain in chains:
                results.append(solutions[cursor : cursor + len(chain)])
                cursor += len(chain)
            return results
        if self.jobs <= 1 or len(chains) <= 1:
            return [self.run_chain(chain) for chain in chains]
        # Chains fully present in the parent cache are served directly --
        # worker processes cannot see the parent's in-memory layer.
        pending = list(range(len(chains)))
        results_by_index: dict[int, list[FgBgSolution | None]] = {}
        if self.cache is not None:
            for index in list(pending):
                keys = [
                    solve_key(m.fingerprint(), self.algorithm, self.tol)
                    for m in chains[index]
                ]
                if all(key in self.cache for key in keys):
                    results_by_index[index] = self.run_chain(chains[index])
                    pending.remove(index)
        if not pending:
            return [results_by_index[i] for i in range(len(chains))]
        if len(pending) == 1:
            results_by_index[pending[0]] = self.run_chain(chains[pending[0]])
            return [results_by_index[i] for i in range(len(chains))]
        config = {
            "cache_dir": None if self.cache is None else self.cache.directory,
            "warm_start": self.warm_start,
            "algorithm": self.algorithm,
            "tol": self.tol,
            "on_error": self.on_error,
            "escalate": self.escalate,
        }
        attempts = dict.fromkeys(pending, 0)
        last_error: dict[int, BaseException] = {}
        queue = list(pending)
        while queue:
            self._check_cancelled()
            retry: list[int] = []
            retry.extend(self._run_worker_round(chains, config, queue,
                                                results_by_index, last_error))
            queue = []
            exhausted: list[int] = []
            for index in retry:
                attempts[index] += 1
                self.stats.worker_retries += 1
                if attempts[index] <= self.max_retries:
                    queue.append(index)
                else:
                    exhausted.append(index)
            for index in exhausted:
                # Bounded requeue exhausted: solve in the parent, where a
                # deterministic worker fault cannot reach, and record how
                # the chain was recovered.
                error = last_error[index]
                self.stats.add_failure(
                    FailedSolve(
                        fingerprint=chains[index][0].fingerprint(),
                        stage="worker",
                        error_type=type(error).__name__,
                        message=(
                            f"worker chain {index} failed "
                            f"{attempts[index]} time(s): {error}"
                        ),
                        attempts=tuple(
                            f"worker-attempt-{n + 1}"
                            for n in range(attempts[index])
                        )
                        + ("in-parent-serial",),
                    )
                )
                results_by_index[index] = self.run_chain(chains[index])
            if queue:
                backoff_ms = self.retry_backoff_ms * (
                    2 ** (min(attempts[i] for i in queue) - 1)
                )
                if backoff_ms > 0:
                    time.sleep(backoff_ms / 1000.0)
        return [results_by_index[i] for i in range(len(chains))]

    def _run_worker_round(
        self,
        chains: list[list[FgBgModel]],
        config: dict,
        queue: list[int],
        results_by_index: dict[int, list[FgBgSolution | None]],
        last_error: dict[int, BaseException],
    ) -> list[int]:
        """Submit one round of worker chains; return the indices to retry.

        Chains whose future breaks (``BrokenProcessPool`` takes the whole
        pool down, so one SIGKILLed worker can fail innocent siblings --
        they are simply requeued) or times out are returned for retry;
        completed chains are merged into stats, cache and results.  Solve
        exceptions raised *inside* a worker (``on_error="raise"``)
        propagate unchanged.
        """
        retry: list[int] = []
        timeout_s = (
            None if self.chain_timeout_ms is None
            else self.chain_timeout_ms / 1000.0
        )
        workers = min(self.jobs, len(queue))
        pool = ProcessPoolExecutor(max_workers=workers)
        timed_out = False
        try:
            futures: list[tuple[int, Future]] = [
                (index, pool.submit(_run_chain_worker, config, chains[index]))
                for index in queue
            ]
            for index, future in futures:
                try:
                    solutions, records, failures = future.result(
                        timeout=timeout_s  # noqa: RL003 -- stdlib Future.result takes seconds; converted from chain_timeout_ms above
                    )
                except (BrokenExecutor, FutureTimeoutError, OSError) as exc:
                    timed_out = timed_out or isinstance(
                        exc, FutureTimeoutError
                    )
                    last_error[index] = exc
                    retry.append(index)
                    continue
                self.stats.extend(records)
                self.stats.extend_failures(failures)
                if self.cache is not None:
                    for model, solution in zip(chains[index], solutions):
                        if solution is None:
                            continue
                        key = solve_key(
                            model.fingerprint(), self.algorithm, self.tol
                        )
                        if key not in self.cache:
                            self.cache.put(key, solution)
                results_by_index[index] = solutions
                self._tick(len(solutions))
        finally:
            if timed_out:
                # A hung worker would block the normal shutdown join.
                _kill_pool_processes(pool)
            pool.shutdown(wait=not timed_out, cancel_futures=True)
        return retry

    def __repr__(self) -> str:
        return (
            f"SweepEngine(jobs={self.jobs}, cache={self.cache!r}, "
            f"warm_start={self.warm_start}, batched={self.batched}, "
            f"algorithm={self.algorithm!r}, tol={self.tol:g}, "
            f"on_error={self.on_error!r}, escalate={self.escalate})"
        )
