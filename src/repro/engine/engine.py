"""The sweep engine: cached, warm-started, optionally parallel solves.

A parameter sweep solves many nearby :class:`~repro.core.model.FgBgModel`
instances.  :class:`SweepEngine` exploits that structure three ways:

* **caching** -- solutions are stored under a content hash of the model
  (see :meth:`FgBgModel.fingerprint`), so repeated points (across figures,
  or across runs with an on-disk cache) are never solved twice;
* **warm-starting** -- within a chain of models that differ by one
  parameter step, the R matrix of the previous point seeds the next solve
  (Newton's method converts the closeness into a handful of iterations);
* **parallelism** -- independent chains run across worker processes;
* **batching** -- with ``batched=True`` the cache-miss models of a whole
  sweep are grouped by QBD block shape and each group is solved in one
  stacked kernel call (:mod:`repro.qbd.batched`), replacing N Python-level
  solver loops with batched ``np.linalg`` primitives.

Warm-started results agree with cold solves to solver tolerance; cached
results are bit-identical to the solve that populated the entry; batched
results agree with sequential results to solver tolerance (bitwise for
the R matrices in practice).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.batched import solve_models_batched
from repro.core.model import FgBgModel
from repro.core.result import FgBgSolution
from repro.engine.cache import SolveCache, solve_key
from repro.engine.stats import BatchGroupRecord, EngineStats, SolveRecord

__all__ = ["SweepEngine"]


def _run_chain_worker(
    config: dict, models: list[FgBgModel]
) -> tuple[list[FgBgSolution], list[SolveRecord]]:
    """Solve one chain in a worker process (must be module-level to pickle).

    Workers share the parent's on-disk cache directory (if any); in-memory
    entries are merged back by the parent from the returned records.
    """
    cache_dir = config["cache_dir"]
    engine = SweepEngine(
        jobs=1,
        cache=SolveCache(cache_dir) if cache_dir is not None else None,
        warm_start=config["warm_start"],
        algorithm=config["algorithm"],
        tol=config["tol"],
    )
    solutions = engine.run_chain(models)
    return solutions, engine.stats.records


class SweepEngine:
    """Executes model solves for parameter sweeps.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`run_chains`.  ``1`` (default) stays
        serial; chains are the unit of parallelism because warm-starting
        is sequential within a chain.
    cache:
        ``None`` (default) for no caching, a :class:`SolveCache`, or a
        directory path for an on-disk cache shared across runs/processes.
    warm_start:
        Seed each solve in a chain with the previous point's R matrix.
        Off by default: the default logarithmic-reduction solver is so
        fast on the paper's chains that cold solves win on wall time;
        warm Newton wins on iteration count (see ``benchmarks/bench_engine.py``).
    batched:
        Solve the cache-miss models of each :meth:`run_chain` /
        :meth:`run_chains` call through the stacked kernel
        (:mod:`repro.qbd.batched`): pending models are grouped by QBD
        block shape and each group becomes one batched solve, recorded as
        a :class:`~repro.engine.stats.BatchGroupRecord`.  Batched results
        agree with sequential results to solver tolerance.  Requires the
        default ``logarithmic-reduction`` algorithm; ``warm_start`` seeds
        are not used on the batched path (stacked solves are cold by
        construction -- and cold logred is the fast configuration here
        anyway).  Caching composes: hits are served per model, only
        misses enter a batch.  ``jobs`` is ignored while batching -- the
        stacked BLAS calls replace process parallelism for the solve
        stage.
    algorithm, tol:
        Passed through to :meth:`FgBgModel.solve`.
    """

    def __init__(
        self,
        *,
        jobs: int = 1,
        cache: SolveCache | str | os.PathLike | None = None,
        warm_start: bool = False,
        batched: bool = False,
        algorithm: str = "logarithmic-reduction",
        tol: float = 1e-12,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if batched and algorithm != "logarithmic-reduction":
            raise ValueError(
                "batched solving supports only the logarithmic-reduction "
                f"algorithm, got {algorithm!r}"
            )
        self.jobs = jobs
        if cache is not None and not isinstance(cache, SolveCache):
            cache = SolveCache(cache)
        self.cache = cache
        self.warm_start = warm_start
        self.batched = batched
        self.algorithm = algorithm
        self.tol = tol
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Single solves
    # ------------------------------------------------------------------
    def solve(
        self, model: FgBgModel, initial_r: np.ndarray | None = None
    ) -> FgBgSolution:
        """Solve one model, consulting the cache first.

        ``initial_r`` warm-starts the R iteration of a fresh solve; it is
        ignored on a cache hit (the cached solution is already exact).
        """
        fingerprint = model.fingerprint()
        key = solve_key(fingerprint, self.algorithm, self.tol)
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.add(
                    SolveRecord(fingerprint, cache_hit=True, stats=cached.solve_stats)
                )
                return cached
        solution = model.solve(
            algorithm=self.algorithm, tol=self.tol, initial_r=initial_r
        )
        if self.cache is not None:
            self.cache.put(key, solution)
        self.stats.add(
            SolveRecord(fingerprint, cache_hit=False, stats=solution.solve_stats)
        )
        return solution

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def solve_batch(self, models: Iterable[FgBgModel]) -> list[FgBgSolution]:
        """Solve many models through the batched kernel, cache first.

        Cache hits (and duplicate models) are served individually; the
        remaining misses are deduplicated, grouped by QBD block shape and
        solved by :func:`~repro.core.batched.solve_models_batched` -- one
        stacked kernel call per group, recorded in
        :attr:`stats` ``.batch_groups``.  Solutions come back in input
        order and fresh ones populate the cache, so a later sequential or
        batched run over the same models is all hits.
        """
        models = list(models)
        if not models:
            return []
        keys = [
            solve_key(m.fingerprint(), self.algorithm, self.tol)
            for m in models
        ]
        served: dict[str, FgBgSolution] = {}
        pending: dict[str, FgBgModel] = {}
        for model, key in zip(models, keys):
            if key in served or key in pending:
                continue
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    served[key] = cached
                    continue
            pending[key] = model
        if pending:
            pending_keys = list(pending)
            solutions, reports = solve_models_batched(
                list(pending.values()), tol=self.tol, return_reports=True
            )
            # solve_models_batched groups by shape in first-appearance
            # order, so the reports align with the shapes in that order.
            group_shapes: list[tuple[int, int]] = []
            for model in pending.values():
                qbd = model.qbd
                shape = (qbd.boundary_size, qbd.phase_count)
                if shape not in group_shapes:
                    group_shapes.append(shape)
            for shape, report in zip(group_shapes, reports):
                self.stats.add_batch_group(
                    BatchGroupRecord(
                        boundary_size=shape[0],
                        phase_count=shape[1],
                        report=report,
                    )
                )
            for key, solution in zip(pending_keys, solutions):
                if self.cache is not None:
                    self.cache.put(key, solution)
                served[key] = solution
        fresh_remaining = set(pending)
        results: list[FgBgSolution] = []
        for model, key in zip(models, keys):
            solution = served[key]
            cache_hit = key not in fresh_remaining
            fresh_remaining.discard(key)
            self.stats.add(
                SolveRecord(
                    model.fingerprint(),
                    cache_hit=cache_hit,
                    stats=solution.solve_stats,
                )
            )
            results.append(solution)
        return results

    # ------------------------------------------------------------------
    # Chains
    # ------------------------------------------------------------------
    def run_chain(self, models: Iterable[FgBgModel]) -> list[FgBgSolution]:
        """Solve a sequence of related models in order.

        With :attr:`warm_start` on, each solve is seeded with the previous
        solution's R matrix -- order the chain so neighbours are close in
        parameter space (a sweep axis already is).  With :attr:`batched`
        on, the chain is handed to :meth:`solve_batch` instead (output is
        identical to solver tolerance).
        """
        if self.batched:
            return self.solve_batch(models)
        solutions: list[FgBgSolution] = []
        prev_r: np.ndarray | None = None
        for model in models:
            solution = self.solve(model, initial_r=prev_r)
            if self.warm_start:
                prev_r = solution.qbd_solution.r
            solutions.append(solution)
        return solutions

    def run_chains(
        self, chains: Sequence[Sequence[FgBgModel]]
    ) -> list[list[FgBgSolution]]:
        """Solve several independent chains, in parallel when ``jobs > 1``.

        Results are returned in chain order regardless of completion
        order, so parallel output is identical to serial output.

        With :attr:`batched` on, all chains pool into one
        :meth:`solve_batch` call (cross-chain duplicates are solved once)
        and the stacked kernel supplies the parallelism -- no worker
        processes are spawned.
        """
        chains = [list(chain) for chain in chains]
        if self.batched:
            flat = [model for chain in chains for model in chain]
            solutions = self.solve_batch(flat)
            results: list[list[FgBgSolution]] = []
            cursor = 0
            for chain in chains:
                results.append(solutions[cursor : cursor + len(chain)])
                cursor += len(chain)
            return results
        if self.jobs <= 1 or len(chains) <= 1:
            return [self.run_chain(chain) for chain in chains]
        # Chains fully present in the parent cache are served directly --
        # worker processes cannot see the parent's in-memory layer.
        pending = list(range(len(chains)))
        results_by_index: dict[int, list[FgBgSolution]] = {}
        if self.cache is not None:
            for index in list(pending):
                keys = [
                    solve_key(m.fingerprint(), self.algorithm, self.tol)
                    for m in chains[index]
                ]
                if all(key in self.cache for key in keys):
                    results_by_index[index] = self.run_chain(chains[index])
                    pending.remove(index)
        if not pending:
            return [results_by_index[i] for i in range(len(chains))]
        if len(pending) == 1:
            results_by_index[pending[0]] = self.run_chain(chains[pending[0]])
            return [results_by_index[i] for i in range(len(chains))]
        config = {
            "cache_dir": None if self.cache is None else self.cache.directory,
            "warm_start": self.warm_start,
            "algorithm": self.algorithm,
            "tol": self.tol,
        }
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_chain_worker, config, chains[index])
                for index in pending
            ]
            results = [future.result() for future in futures]
        for index, (solutions, records) in zip(pending, results):
            self.stats.extend(records)
            if self.cache is not None:
                for record, solution in zip(records, solutions):
                    key = solve_key(record.fingerprint, self.algorithm, self.tol)
                    if key not in self.cache:
                        self.cache.put(key, solution)
            results_by_index[index] = solutions
        return [results_by_index[i] for i in range(len(chains))]

    def __repr__(self) -> str:
        return (
            f"SweepEngine(jobs={self.jobs}, cache={self.cache!r}, "
            f"warm_start={self.warm_start}, batched={self.batched}, "
            f"algorithm={self.algorithm!r}, tol={self.tol:g})"
        )
