"""Aggregation of per-solve statistics across a sweep.

Every solve the engine performs -- fresh or served from cache -- appends a
:class:`SolveRecord`; :class:`EngineStats` aggregates them into the record
the benchmark harness writes to ``BENCH_sweeps.json``.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.resilience import FailedSolve
from repro.qbd.batched import BatchedSolveReport
from repro.qbd.rmatrix import SolveStats

__all__ = ["BatchGroupRecord", "EngineStats", "SolveRecord"]


@dataclass(frozen=True)
class BatchGroupRecord:
    """One batched kernel call: one shape group of cache-miss models.

    Wraps the kernel's :class:`~repro.qbd.batched.BatchedSolveReport`
    (batch size, masked iteration total, wall time, fallback indices)
    together with the engine-level shape key the group was formed under.
    """

    boundary_size: int
    phase_count: int
    report: BatchedSolveReport

    def __post_init__(self) -> None:
        if self.boundary_size < 0 or self.phase_count < 0:
            raise ValueError(
                f"block shape must be non-negative, got "
                f"({self.boundary_size}, {self.phase_count})"
            )

    def as_dict(self) -> dict:
        return {
            "boundary_size": self.boundary_size,
            "phase_count": self.phase_count,
            **self.report.as_dict(),
        }


@dataclass(frozen=True)
class SolveRecord:
    """One engine solve: which model, how it was obtained, at what cost."""

    fingerprint: str
    cache_hit: bool
    stats: SolveStats | None

    def __post_init__(self) -> None:
        if not self.fingerprint:
            raise ValueError("SolveRecord needs a model fingerprint")

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "stats": None if self.stats is None else self.stats.as_dict(),
        }


@dataclass
class EngineStats:
    """Aggregated solve statistics of a :class:`~repro.engine.SweepEngine`."""

    records: list[SolveRecord] = field(default_factory=list)
    batch_groups: list[BatchGroupRecord] = field(default_factory=list)
    #: Structured per-point failures isolated by ``on_error`` (see
    #: :mod:`repro.engine.resilience`); failed points have no
    #: :class:`SolveRecord` -- the :class:`FailedSolve` *is* their record.
    failures: list[FailedSolve] = field(default_factory=list)
    #: Crashed/hung worker chains that were re-queued (bounded requeue).
    worker_retries: int = 0

    def add(self, record: SolveRecord) -> None:
        self.records.append(record)

    def extend(self, records: list[SolveRecord]) -> None:
        self.records.extend(records)

    def add_batch_group(self, record: BatchGroupRecord) -> None:
        self.batch_groups.append(record)

    def add_failure(self, failure: FailedSolve) -> None:
        self.failures.append(failure)

    def extend_failures(self, failures: list[FailedSolve]) -> None:
        self.failures.extend(failures)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def solves(self) -> int:
        """Total models served (fresh solves plus cache hits)."""
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def solver_calls(self) -> int:
        """Fresh R-matrix solves actually performed."""
        return sum(1 for r in self.records if not r.cache_hit)

    @property
    def warm_started(self) -> int:
        """Fresh solves whose accepted R came from a warm start."""
        return sum(
            1
            for r in self.records
            if not r.cache_hit and r.stats is not None and r.stats.warm_started
        )

    @property
    def total_iterations(self) -> int:
        """R-matrix iterations summed over the fresh solves."""
        return sum(
            r.stats.iterations
            for r in self.records
            if not r.cache_hit and r.stats is not None
        )

    @property
    def total_wall_time_ms(self) -> float:
        """R-matrix solve wall time summed over the fresh solves."""
        return sum(
            r.stats.wall_time_ms
            for r in self.records
            if not r.cache_hit and r.stats is not None
        )

    @property
    def max_spectral_radius(self) -> float:
        """Largest ``sp(R)`` seen (tail heaviness of the hardest point)."""
        radii = [
            r.stats.spectral_radius
            for r in self.records
            if r.stats is not None
        ]
        return max(radii) if radii else float("nan")

    def algorithm_counts(self) -> dict[str, int]:
        """Fresh solves per accepted algorithm name."""
        return dict(
            Counter(
                r.stats.algorithm
                for r in self.records
                if not r.cache_hit and r.stats is not None
            )
        )

    @property
    def failed(self) -> int:
        """Points isolated as :class:`FailedSolve` records."""
        return len(self.failures)

    @property
    def degraded_solves(self) -> int:
        """Solves served by the truncated dense-chain escalation rung.

        ``getattr`` default: cache entries pickled before the escalation
        ladder carry :class:`SolveStats` without the ``degraded`` field.
        """
        return sum(
            1
            for r in self.records
            if r.stats is not None and getattr(r.stats, "degraded", False)
        )

    @property
    def cache_quarantined(self) -> int:
        """Corrupt cache entries quarantined and re-solved."""
        return sum(1 for f in self.failures if f.stage == "cache-load")

    def failure_stage_counts(self) -> dict[str, int]:
        """Isolated failures per pipeline stage."""
        return dict(Counter(f.stage for f in self.failures))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-serializable aggregate record (no per-solve detail)."""
        payload = {
            "solves": self.solves,
            "cache_hits": self.cache_hits,
            "solver_calls": self.solver_calls,
            "warm_started": self.warm_started,
            "total_iterations": self.total_iterations,
            "total_wall_time_ms": round(self.total_wall_time_ms, 3),
            "max_spectral_radius": self.max_spectral_radius,
            "algorithms": self.algorithm_counts(),
            # Recovered work is part of the solve accounting: a progress
            # line built from this summary must not under-report a sweep
            # that quarantined corrupt cache entries or requeued crashed
            # workers, so both counters are always present (zero included).
            "cache_quarantined": self.cache_quarantined,
            "worker_retries": self.worker_retries,
        }
        if self.batch_groups:
            payload["batch_groups"] = [g.as_dict() for g in self.batch_groups]
        if self.degraded_solves:
            payload["degraded_solves"] = self.degraded_solves
        if self.failures:
            payload["failed"] = self.failed
            payload["failure_stages"] = self.failure_stage_counts()
            payload["failures"] = [f.as_dict() for f in self.failures]
        return payload

    def write_json(
        self, path: str | os.PathLike, include_records: bool = False
    ) -> None:
        """Write the summary (optionally with per-solve records) to a file."""
        payload: dict = {"summary": self.summary()}
        if include_records:
            payload["records"] = [r.as_dict() for r in self.records]
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def clear(self) -> None:
        self.records.clear()
        self.batch_groups.clear()
        self.failures.clear()
        self.worker_retries = 0

    def __repr__(self) -> str:
        return (
            f"EngineStats(solves={self.solves}, cache_hits={self.cache_hits}, "
            f"warm_started={self.warm_started}, "
            f"total_iterations={self.total_iterations}, "
            f"failed={self.failed})"
        )
