"""Content-addressed cache of model solves.

Solutions are keyed by a SHA-256 of the model fingerprint (see
:meth:`repro.core.model.FgBgModel.fingerprint`) combined with the solver
parameters, so two structurally identical models -- however they were
constructed -- share one cache entry.  The cache is two-level: a plain
in-memory dictionary, plus an optional on-disk directory of pickled
solutions (one file per key) that persists across processes and runs and
is shared by the worker processes of a parallel sweep.

The on-disk layer uses :mod:`pickle`; only point it at directories you
trust, exactly as you would with numpy's ``allow_pickle``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
from pathlib import Path

from repro.contracts.errors import ContractViolation
from repro.contracts.solution import check_solution
from repro.core.model import FgBgModel
from repro.core.result import FgBgSolution
from repro.faults import fire as _fault_fire

__all__ = ["SolveCache", "solve_key"]

#: Suffix quarantined files get: corrupt entries become
#: ``<key>.pkl.corrupt``, orphaned temp files ``<name>.orphan``.  Neither
#: matches the ``<key>.pkl`` lookup pattern, so quarantined data can never
#: be served -- but it stays on disk for post-mortems.
CORRUPT_SUFFIX = ".corrupt"
ORPHAN_SUFFIX = ".orphan"


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid currently running?"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's process
        return True
    except OSError:  # pragma: no cover - platform oddity: assume alive
        return True
    return True


def solve_key(
    fingerprint: str, algorithm: str, tol: float
) -> str:
    """Cache key of one solve: model fingerprint + solver parameters."""
    if not fingerprint:
        raise ValueError("solve_key needs a non-empty model fingerprint")
    if not tol > 0.0:
        raise ValueError(f"solver tolerance must be positive, got {tol!r}")
    h = hashlib.sha256()
    h.update(fingerprint.encode())
    h.update(algorithm.encode())
    h.update(float(tol).hex().encode())
    return h.hexdigest()


class SolveCache:
    """Two-level (memory + optional disk) cache of :class:`FgBgSolution`.

    Parameters
    ----------
    directory:
        Optional directory for the persistent layer.  Created if missing.
        ``None`` (default) keeps the cache purely in-memory.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._memory: dict[str, FgBgSolution] = {}
        self._directory = Path(directory) if directory is not None else None
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Corrupt entries moved aside by :meth:`quarantine` (this process).
        self.quarantined = 0
        #: Orphaned ``*.tmp.<pid>`` files swept aside when the cache opened.
        self.stale_tmp_swept = self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Quarantine temp files abandoned by dead writers.

        :meth:`put` writes ``<key>.pkl.tmp.<pid>`` and atomically renames
        it into place; a writer killed mid-write leaves the temp file
        behind.  On open, any temp file whose writer pid is no longer
        alive (or whose name does not parse) is renamed to
        ``*.orphan`` -- it can never be served, but a torn write stays
        inspectable.  Temp files of live sibling writers are left alone.
        """
        if self._directory is None:
            return 0
        swept = 0
        for tmp in self._directory.glob("*.pkl.tmp.*"):
            if tmp.name.endswith(ORPHAN_SUFFIX):
                continue
            suffix = tmp.name.rsplit(".", 1)[-1]
            if suffix.isdigit() and _pid_alive(int(suffix)):
                continue
            os.replace(tmp, tmp.with_name(tmp.name + ORPHAN_SUFFIX))
            swept += 1
        return swept

    @property
    def directory(self) -> Path | None:
        """Directory of the persistent layer (``None`` when memory-only)."""
        return self._directory

    @staticmethod
    def key(
        model: FgBgModel,
        algorithm: str = "logarithmic-reduction",
        tol: float = 1e-12,
    ) -> str:
        """Cache key of ``model`` solved with the given parameters."""
        return solve_key(model.fingerprint(), algorithm, tol)

    def _path(self, key: str) -> Path:
        return self._directory / f"{key}.pkl"

    def get(self, key: str) -> FgBgSolution | None:
        """Look up a solution; counts a hit or a miss.

        Disk entries are re-validated on load (see
        :func:`repro.contracts.check_solution`): a truncated, bit-rotted
        or wrong-version pickle raises a
        :class:`~repro.contracts.ContractViolation` naming the entry
        instead of poisoning every downstream metric.  Set
        ``REPRO_CONTRACTS=off`` to skip the validation.
        """
        solution = self._memory.get(key)
        if solution is None and self._directory is not None:
            path = self._path(key)
            if path.exists():
                try:
                    with path.open("rb") as fh:
                        solution = pickle.load(fh)
                except ContractViolation:
                    raise
                except Exception as exc:
                    raise ContractViolation(
                        "check_solution",
                        f"cache entry {key[:16]}",
                        f"unreadable pickle at {path}: {exc}",
                    ) from exc
                check_solution(solution, name=f"cache entry {key[:16]}")
                self._memory[key] = solution
        if solution is None:
            self.misses += 1
            return None
        self.hits += 1
        return solution

    def quarantine(self, key: str) -> Path | None:
        """Move a corrupt entry aside so it is never served again.

        The on-disk file is renamed to ``<key>.pkl.corrupt`` (clobbering
        any earlier quarantine of the same key) and the in-memory copy is
        dropped.  Returns the quarantine path, or ``None`` when there was
        no on-disk entry to move.
        """
        self._memory.pop(key, None)
        self.quarantined += 1
        if self._directory is None:
            return None
        path = self._path(key)
        if not path.exists():
            return None
        target = path.with_name(path.name + CORRUPT_SUFFIX)
        os.replace(path, target)
        return target

    def put(self, key: str, solution: FgBgSolution) -> None:
        """Store a solution under ``key`` (atomically on disk)."""
        self._memory[key] = solution
        if self._directory is not None:
            path = self._path(key)
            tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
            with tmp.open("wb") as fh:
                pickle.dump(solution, fh, protocol=pickle.HIGHEST_PROTOCOL)
            if _fault_fire("cache_corrupt"):
                # Torn write / bit rot: keep only half the pickle, and
                # drop the memory copy so this very process re-reads the
                # truncated bytes (a real torn write implies the writer
                # died, so no process holds the good copy in memory).
                size = tmp.stat().st_size
                with tmp.open("ab") as fh:
                    fh.truncate(max(1, size // 2))
                self._memory.pop(key, None)
            os.replace(tmp, path)
            if _fault_fire("kill_run"):
                # Crash-safety probe: die *after* the entry landed, the
                # way a power cut ends a run -- resume tests replay from
                # exactly this state.
                os.kill(os.getpid(), signal.SIGKILL)

    def clear(self) -> None:
        """Drop the in-memory layer (on-disk entries are kept)."""
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self._directory is not None and self._path(key).exists()

    def __repr__(self) -> str:
        where = f"dir={str(self._directory)!r}" if self._directory else "memory"
        return (
            f"SolveCache({where}, entries={len(self._memory)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
