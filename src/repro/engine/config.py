"""One frozen configuration object for the sweep engine.

:class:`SweepEngine` grew one keyword argument per PR --
``jobs``/``cache``/``warm_start``/``batched``/``on_error``/``escalate``/
``chain_timeout_ms``/... -- and every caller that wants to *store* or
*transport* a configuration (the CLI, the background-job specs of
:mod:`repro.jobs`, a benchmark matrix) had to re-spell the sprawl.
:class:`EngineConfig` consolidates it: a frozen, validated, JSON-round-
trippable dataclass accepted by ``SweepEngine(config=...)``,
:func:`~repro.experiments.sweeps.sweep` and ``sweep_many``, and reused
verbatim as the ``engine`` section of a :class:`~repro.jobs.JobSpec`.

Legacy keyword arguments keep working everywhere and override the
matching config field; the two spellings are tested equivalent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.engine.resilience import validate_on_error

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.cache import SolveCache
    from repro.engine.engine import SweepEngine

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_RETRY_BACKOFF_MS",
    "EngineConfig",
]

#: Bounded-requeue depth: how many times a crashed/hung worker chain is
#: re-submitted to a fresh pool before the parent solves it in-process.
DEFAULT_MAX_RETRIES = 2

#: Backoff before the first chain re-submission; doubles per retry round.
DEFAULT_RETRY_BACKOFF_MS = 100.0


@dataclass(frozen=True)
class EngineConfig:
    """Everything that shapes how a :class:`SweepEngine` executes.

    The fields mirror the engine's keyword arguments one-to-one, except
    that the cache is described by where it lives (``cache_dir`` for an
    on-disk layer, ``cache_memory`` for a purely in-memory one) rather
    than by a live :class:`~repro.engine.cache.SolveCache` object, so a
    config can be serialized into a job spec or a manifest and rebuilt
    elsewhere.  Validation happens at construction; an ``EngineConfig``
    that exists is a valid engine configuration.
    """

    jobs: int = 1
    cache_dir: str | None = None
    cache_memory: bool = False
    warm_start: bool = False
    batched: bool = False
    algorithm: str = "logarithmic-reduction"
    tol: float = 1e-12
    on_error: str = "raise"
    escalate: bool = False
    max_retries: int = DEFAULT_MAX_RETRIES
    retry_backoff_ms: float = DEFAULT_RETRY_BACKOFF_MS
    chain_timeout_ms: float | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.batched and self.algorithm != "logarithmic-reduction":
            raise ValueError(
                "batched solving supports only the logarithmic-reduction "
                f"algorithm, got {self.algorithm!r}"
            )
        if not self.tol > 0:
            raise ValueError(f"tol must be positive, got {self.tol}")
        validate_on_error(self.on_error)
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff_ms < 0:
            raise ValueError(
                f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms}"
            )
        if self.chain_timeout_ms is not None and self.chain_timeout_ms <= 0:
            raise ValueError(
                f"chain_timeout_ms must be positive, got {self.chain_timeout_ms}"
            )

    # ------------------------------------------------------------------
    # Derived objects
    # ------------------------------------------------------------------
    def build_cache(self) -> "SolveCache | None":
        """The :class:`SolveCache` this config describes (or ``None``)."""
        from repro.engine.cache import SolveCache

        if self.cache_dir is not None:
            return SolveCache(self.cache_dir)
        if self.cache_memory:
            return SolveCache(None)
        return None

    def build_engine(self, **hooks: Any) -> "SweepEngine":
        """A fresh :class:`SweepEngine` running under this config.

        ``hooks`` pass through the engine's non-serializable runtime
        arguments (``progress``, ``cancel``).
        """
        from repro.engine.engine import SweepEngine

        return SweepEngine(config=self, **hooks)

    def replace(self, **changes: Any) -> "EngineConfig":
        """A copy with ``changes`` applied (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization (job specs, manifests)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-serializable representation (field name -> plain value)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineConfig":
        """Rebuild a config serialized by :meth:`as_dict`.

        Unknown keys raise: a config written by a newer schema must not
        silently lose settings on an older reader.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown EngineConfig field(s): {', '.join(unknown)}"
            )
        return cls(**payload)

    @property
    def is_default(self) -> bool:
        """True when every field still has its default value."""
        return self == EngineConfig()
