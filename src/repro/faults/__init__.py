"""Deterministic fault injection for the solve/sweep pipeline.

Enable via ``REPRO_FAULTS="point[:key=value]...,..."`` or the
:func:`inject` context manager; production hooks call :func:`fire` at the
named injection points (see :data:`KNOWN_FAULT_POINTS`).  Every decision
is process-deterministic and seedable, so chaos tests replay exactly.
``tests/faults/`` proves that each injected failure ends in either a
correct answer (after solver escalation / retry / re-solve) or a
structured :class:`~repro.engine.resilience.FailedSolve` record -- never
a silently wrong number.
"""

from repro.faults.injector import (
    ENV_FAULTS,
    KNOWN_FAULT_POINTS,
    FaultPlan,
    FaultRule,
    InjectedKill,
    active_plan,
    fire,
    fire_value,
    inject,
    parse_spec,
    reset,
)

__all__ = [
    "ENV_FAULTS",
    "KNOWN_FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedKill",
    "active_plan",
    "fire",
    "fire_value",
    "inject",
    "parse_spec",
    "reset",
]
