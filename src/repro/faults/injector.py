"""Deterministic, seedable fault injection for resilience testing.

The production solve/sweep pipeline carries named *injection points* --
one-line hooks of the form ``if faults.fire("logred_overflow"): ...`` at
exactly the places where real deployments wobble: solver overflow, a
singular boundary system, a crashed worker process, a corrupted cache
pickle, a stalled iteration.  With no plan active a hook is a dictionary
miss; with one active, whether a given check fires is a *pure function of
the plan and the per-process check counter* (a seeded ``random.Random``
supplies sub-unit rates), so every run with the same spec injects the
same faults in the same order -- no wall clock, no global entropy.

Plans come from two sources:

* the ``REPRO_FAULTS`` environment variable (inherited by worker
  processes, which is how worker-kill faults reach them), parsed once and
  re-parsed only when the value changes;
* the :func:`inject` context manager, which installs a plan for the
  dynamic extent of a ``with`` block (tests use this; it shadows the
  environment plan and restores the previous plan on exit).

Spec grammar (comma-separated clauses)::

    REPRO_FAULTS="logred_overflow,kill_run:after=10:limit=1,solver_stall:rate=0.5:seed=7"

Each clause is a point name followed by optional ``key=value`` parameters
separated by colons: ``rate`` (fire probability per eligible check,
default 1), ``seed`` (RNG seed for sub-unit rates, default 0), ``after``
(skip the first N checks, default 0) and ``limit`` (maximum fires per
process, default unlimited).
"""

from __future__ import annotations

import os
import random
from collections.abc import Iterable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "ENV_FAULTS",
    "KNOWN_FAULT_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedKill",
    "active_plan",
    "fire",
    "fire_value",
    "inject",
    "parse_spec",
    "reset",
]


class InjectedKill(BaseException):
    """A simulated process death at a fault point (``torn_write`` & co).

    Deliberately a ``BaseException``: a simulated SIGKILL must tear
    through ``except Exception`` handlers exactly like a real one tears
    through the whole process, so no recovery path can mistake a chaos
    kill for an ordinary solve failure and record it as one.  Only the
    chaos harness (which installed the plan) catches it.
    """

#: Environment variable holding the fault spec (empty/unset = no faults).
ENV_FAULTS = "REPRO_FAULTS"

#: Every injection point wired into the pipeline.  Specs naming anything
#: else are rejected -- a typo must not silently disable a chaos test.
KNOWN_FAULT_POINTS = frozenset(
    {
        # repro.qbd.rmatrix._logred_impl: raise the overflow
        # QBDConvergenceError nearly decomposable chains hit for real.
        "logred_overflow",
        # repro.qbd.boundary.solve_boundary: raise a singular-system
        # LinAlgError before the solve.
        "singular_boundary",
        # repro.engine.engine._run_chain_worker and
        # repro.jobs.worker.JobWorker.execute: SIGKILL the worker.
        "worker_kill",
        # repro.engine.cache.SolveCache.put: truncate the pickle just
        # written, simulating torn writes / bit rot.
        "cache_corrupt",
        # repro.qbd.rmatrix functional/natural loops: sleep on each
        # check so iteration/time budgets trip.
        "solver_stall",
        # repro.engine.cache.SolveCache.put: SIGKILL the *current*
        # process after the entry lands -- crash-safety / --resume tests.
        "kill_run",
        # repro.jobs.store.FileJobStore._write / SqliteJobStore durable
        # writes: simulated death between the tmp.<pid> write and the
        # os.replace (or inside the SQLite transaction, before commit) --
        # the record must keep its old value, never a torn one.  Raises
        # InjectedKill.
        "torn_write",
        # Same write paths: ENOSPC on the durable write (raises OSError
        # with errno ENOSPC before any byte lands).
        "disk_full",
        # repro.jobs.store.now_ms: per-process heartbeat clock offset of
        # ``param`` milliseconds (a worker whose clock runs ahead/behind
        # writes skewed heartbeats; the sweeper must not steal its job
        # on that evidence alone).
        "clock_skew",
        # repro.jobs.store lock release: the holder "dies" before
        # unlinking its O_EXCL lock file, orphaning it until broken by
        # age.
        "lock_orphan",
    }
)


@dataclass(frozen=True)
class FaultRule:
    """When one injection point fires.

    Attributes
    ----------
    point:
        Name of the injection point (must be in
        :data:`KNOWN_FAULT_POINTS`).
    rate:
        Probability of firing per eligible check, drawn from a seeded
        per-rule RNG (so the decision sequence is process-deterministic).
    seed:
        Seed of that RNG.
    after:
        Number of initial checks to let pass before the rule becomes
        eligible (``after=10`` arms the fault on the 11th check).
    limit:
        Maximum number of fires per process (``None`` = unlimited).
    param:
        Free payload for points that need a magnitude, not just a
        yes/no -- ``clock_skew:param=-45000`` offsets the process clock
        by -45 s.  Read via :func:`fire_value`.
    """

    point: str
    rate: float = 1.0
    seed: int = 0
    after: int = 0
    limit: int | None = None
    param: float | None = None

    def __post_init__(self) -> None:
        if self.point not in KNOWN_FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; choose from "
                f"{sorted(KNOWN_FAULT_POINTS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must lie in [0, 1], got {self.rate}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")


class FaultPlan:
    """A set of :class:`FaultRule` with per-point deterministic state."""

    def __init__(self, rules: Iterable[FaultRule]) -> None:
        self._rules: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.point in self._rules:
                raise ValueError(f"duplicate fault point {rule.point!r}")
            self._rules[rule.point] = rule
        self._checks: dict[str, int] = dict.fromkeys(self._rules, 0)
        self._fires: dict[str, int] = dict.fromkeys(self._rules, 0)
        # One RNG per rule, seeded from (point, seed) only: the decision
        # sequence is a pure function of the plan, never of the clock.
        self._rngs = {
            point: random.Random(f"{point}/{rule.seed}")
            for point, rule in self._rules.items()
        }

    @property
    def points(self) -> frozenset[str]:
        """The injection points this plan can fire."""
        return frozenset(self._rules)

    def checks(self, point: str) -> int:
        """How many times ``point`` has been checked under this plan."""
        return self._checks.get(point, 0)

    def fires(self, point: str) -> int:
        """How many times ``point`` has fired under this plan."""
        return self._fires.get(point, 0)

    def param(self, point: str) -> float | None:
        """The ``param`` payload of ``point``'s rule (``None`` if absent)."""
        rule = self._rules.get(point)
        return None if rule is None else rule.param

    def should_fire(self, point: str) -> bool:
        """Advance the deterministic state of ``point`` and decide."""
        rule = self._rules.get(point)
        if rule is None:
            return False
        self._checks[point] += 1
        if self._checks[point] <= rule.after:
            return False
        if rule.limit is not None and self._fires[point] >= rule.limit:
            return False
        if rule.rate < 1.0 and self._rngs[point].random() >= rule.rate:
            return False
        self._fires[point] += 1
        return True

    def __repr__(self) -> str:
        return f"FaultPlan({sorted(self._rules)})"


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`.

    Raises
    ------
    ValueError
        For unknown points, unknown parameters or malformed clauses.
    """
    rules = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        name, *params = clause.split(":")
        kwargs: dict[str, float | int] = {}
        for param in params:
            key, sep, value = param.partition("=")
            if not sep or not value:
                raise ValueError(
                    f"malformed fault parameter {param!r} in clause "
                    f"{clause!r}; expected key=value"
                )
            if key in ("rate", "param"):
                kwargs[key] = float(value)
            elif key in ("seed", "after", "limit"):
                kwargs[key] = int(value)
            else:
                raise ValueError(
                    f"unknown fault parameter {key!r} in clause {clause!r}; "
                    "choose from rate, seed, after, limit, param"
                )
        rules.append(FaultRule(point=name.strip(), **kwargs))  # type: ignore[arg-type]
    return FaultPlan(rules)


#: Plan installed by :func:`inject` (shadows the environment plan).
_context_plan: FaultPlan | None = None
#: Cache of the environment-derived plan, keyed by the raw spec string.
_env_spec: str | None = None
_env_plan: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The plan consulted by :func:`fire`, or ``None`` when faults are off.

    A plan installed by :func:`inject` wins over ``REPRO_FAULTS``; the
    environment spec is re-parsed only when its value changes, so the
    no-fault fast path of :func:`fire` is one environment lookup.
    """
    if _context_plan is not None:
        return _context_plan
    spec = os.environ.get(ENV_FAULTS, "")
    if not spec:
        return None
    global _env_spec, _env_plan
    if spec != _env_spec:
        _env_plan = parse_spec(spec)
        _env_spec = spec
    return _env_plan


def fire(point: str) -> bool:
    """Should the injection point ``point`` fire now?

    The one call production code makes.  With no plan active this is a
    single environment lookup returning False; with a plan active the
    decision advances that plan's deterministic per-point state.
    """
    plan = active_plan()
    return plan is not None and plan.should_fire(point)


def fire_value(point: str) -> float | None:
    """Like :func:`fire`, but returns the rule's ``param`` payload.

    ``None`` when the point does not fire (no plan, rate miss, limit
    reached) *or* when the firing rule carries no ``param`` -- callers
    treat both as "no perturbation".  Advances the same deterministic
    per-point state as :func:`fire`.
    """
    plan = active_plan()
    if plan is None or not plan.should_fire(point):
        return None
    return plan.param(point)


@contextmanager
def inject(spec: str | FaultPlan) -> Iterator[FaultPlan]:
    """Install a fault plan for the extent of a ``with`` block.

    ``spec`` is either a spec string (same grammar as ``REPRO_FAULTS``)
    or a prebuilt :class:`FaultPlan`.  The previous plan (context or
    environment) is shadowed and restored on exit; yields the installed
    plan so tests can assert on its check/fire counters.
    """
    plan = parse_spec(spec) if isinstance(spec, str) else spec
    global _context_plan
    previous = _context_plan
    _context_plan = plan
    try:
        yield plan
    finally:
        _context_plan = previous


def reset() -> None:
    """Drop all cached plans (tests that monkeypatch the environment)."""
    global _context_plan, _env_spec, _env_plan
    _context_plan = None
    _env_spec = None
    _env_plan = None
