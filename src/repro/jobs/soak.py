"""Deterministic chaos soak for the durable job queue.

One :class:`SoakHarness` iteration simulates a small fleet -- submitters,
workers, the stale-job sweeper, and the occasional zombie -- against a
*real* repository backend, entirely in one process on a *logical* clock,
with every nondeterministic choice drawn from one seeded RNG.  Kill
points (a worker "SIGKILLed" mid-solve via
:class:`~repro.faults.InjectedKill`), torn durable writes, disk-full
errors and requeue/claim interleavings are all replayable from the seed.

After every action the harness audits the queue against the safety
invariants the job layer promises:

* **conservation** -- no submitted job ever disappears;
* **monotonicity** -- a job's version only grows, its fencing epoch
  never regresses, and every observed state change is an edge of
  :data:`~repro.jobs.lifecycle.TRANSITIONS`;
* **single ownership** -- accepted writes for one (job, epoch) lease
  come from exactly one worker (a zombie's late write must be rejected
  with ``StaleJobError``, never absorbed);
* **terminal once** -- a terminal record never changes again (the one
  sanctioned exception: an operator releasing a QUARANTINED job);
* **exactly one result** -- every COMPLETED job carries exactly the
  deterministic result its spec implies.

Violations are collected (not raised) so a soak reports everything it
found; the driver (``tests/jobs/test_soak.py``, ``benchmarks``) asserts
the list is empty.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.resilience import SweepCancelled
from repro.faults import InjectedKill, inject
from repro.jobs.lifecycle import (
    PENDING,
    QUARANTINED,
    RUNNING,
    TERMINAL_STATES,
    TRANSITIONS,
    Job,
)
from repro.jobs.repository import (
    JobRepository,
    StaleJobError,
    UnknownJobError,
    open_repository,
)
from repro.jobs.spec import JobSpec
from repro.jobs.sweeper import LeaseClampWarning, StaleJobSweeper
from repro.jobs.worker import JobWorker

__all__ = ["SoakHarness", "SoakReport", "soak"]


def _reachable() -> dict[str, frozenset[str]]:
    """Transitive closure of TRANSITIONS: states reachable in >= 1 step.

    One harness action can cover several legal transitions (a worker
    claims *and* completes a job in a single ``run_once``), so the audit
    checks reachability, not single-step legality.
    """
    closure: dict[str, set[str]] = {s: set(t) for s, t in TRANSITIONS.items()}
    changed = True
    while changed:
        changed = False
        for state, targets in closure.items():
            grown = targets | {
                hop for target in targets for hop in closure[target]
            }
            if grown != targets:
                closure[state] = grown
                changed = True
    return {s: frozenset(t) for s, t in closure.items()}


_REACHABLE = _reachable()


@dataclass(frozen=True)
class SoakReport:
    """What a soak run observed.  ``violations`` empty == queue held up."""

    iterations: int
    backend: str
    seed: int
    jobs_submitted: int
    completed: int
    failed: int
    cancelled: int
    quarantined: int
    kills_injected: int
    torn_writes: int
    disk_fulls: int
    sweeps: int
    requeues: int
    zombie_writes_attempted: int
    zombie_writes_rejected: int
    releases: int
    violations: tuple[str, ...]

    def summary(self) -> str:
        status = "OK" if not self.violations else f"{len(self.violations)} VIOLATIONS"
        return (
            f"soak[{self.backend}] seed={self.seed} "
            f"iterations={self.iterations}: {status} -- "
            f"jobs={self.jobs_submitted} completed={self.completed} "
            f"failed={self.failed} quarantined={self.quarantined} "
            f"kills={self.kills_injected} torn={self.torn_writes} "
            f"zombie_rejected={self.zombie_writes_rejected}/"
            f"{self.zombie_writes_attempted}"
        )


@dataclass
class _Tally:
    """Mutable counters one iteration accumulates into the report."""

    jobs_submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    quarantined: int = 0
    kills_injected: int = 0
    torn_writes: int = 0
    disk_fulls: int = 0
    sweeps: int = 0
    requeues: int = 0
    zombie_writes_attempted: int = 0
    zombie_writes_rejected: int = 0
    releases: int = 0
    violations: list[str] = field(default_factory=list)


def _expected_result(job: Job) -> str:
    """The deterministic result every successful execution must produce."""
    return f"soak-result:{job.spec.figure}:{job.job_id}"


class SoakHarness:
    """One seeded chaos iteration against a fresh repository.

    Single-process and single-threaded by design: interleavings come
    from the RNG's choice of *which actor acts next*, not from thread
    scheduling, which is what makes a failing seed replayable.
    """

    def __init__(
        self,
        repository: JobRepository,
        seed: int,
        tally: _Tally,
        jobs: int = 3,
        workers: int = 3,
        points_per_job: int = 3,
        kill_rate: float = 0.25,
        lease_ms: float = 5_000.0,
        quarantine_after: int = 3,
        max_steps: int = 400,
    ) -> None:
        self.repo = repository
        self.rng = random.Random(seed)
        self.tally = tally
        self.jobs = jobs
        self.points_per_job = points_per_job
        self.kill_rate = kill_rate
        self.lease_ms = lease_ms
        self.max_steps = max_steps
        self.clock_ms = 1_000_000.0
        self.sweeper = StaleJobSweeper(
            repository,
            lease_ms=lease_ms,
            quarantine_after=quarantine_after,
            clock=lambda: self.clock_ms,
        )
        # Workers carry a host that is never this machine's, so staleness
        # is decided purely by heartbeat age on the logical clock.
        self.workers = [
            JobWorker(
                repository,
                worker_id=f"w{i}@soak-host",
                runner=self._make_runner(f"w{i}@soak-host"),
                clock=lambda: self.clock_ms,
            )
            for i in range(workers)
        ]
        # Audit state.
        self._last_seen: dict[str, Job] = {}
        self._terminal_seen: dict[str, Job] = {}
        self._lease_writers: dict[tuple[str, int], set[str]] = {}
        self._zombies: list[Job] = []
        self._submitted_ids: set[str] = set()

    # ------------------------------------------------------------------
    # Actors
    # ------------------------------------------------------------------
    def _make_runner(self, worker_id: str):
        def runner(job: Job, engine) -> str:
            for _ in range(self.points_per_job):
                if engine.cancel is not None and engine.cancel():
                    raise SweepCancelled(f"job {job.job_id} cancelled")
                if self.rng.random() < self.kill_rate:
                    # The worker dies holding its lease: remember the
                    # stale copy so a later step can play the zombie.
                    self._zombies.append(job)
                    self.tally.kills_injected += 1
                    raise InjectedKill(f"soak kill of {worker_id}")
                self.clock_ms += self.rng.uniform(50.0, 500.0)
                if engine.progress is not None:
                    engine.progress(1)
                # The progress write was *accepted*: this worker held the
                # (job, epoch) lease at that instant.
                self._lease_writers.setdefault(
                    (job.job_id, job.epoch), set()
                ).add(worker_id)
            return _expected_result(job)

        return runner

    def _act_worker(self) -> None:
        worker = self.rng.choice(self.workers)
        try:
            worker.run_once()
        except InjectedKill:
            pass  # simulated SIGKILL: the record stays RUNNING, orphaned
        except TimeoutError:
            pass  # lock contention: the claim/write retries on a later step
        except OSError:
            self.tally.disk_fulls += 1

    def _act_sweep(self) -> None:
        # Let leases expire sometimes, so the sweeper has orphans to find.
        if self.rng.random() < 0.6:
            self.clock_ms += self.lease_ms * self.rng.uniform(1.0, 2.5)
        try:
            swept = self.sweeper.sweep()
        except InjectedKill:
            return  # the sweeper died mid-write; its CAS either landed or not
        except TimeoutError:
            return
        except OSError:
            self.tally.disk_fulls += 1
            return
        self.tally.sweeps += 1
        self.tally.requeues += sum(1 for j in swept if j.state == PENDING)

    def _act_zombie(self) -> None:
        """A presumed-dead worker wakes up and writes with its stale lease."""
        if not self._zombies:
            return
        zombie = self._zombies.pop(self.rng.randrange(len(self._zombies)))
        try:
            stored = self.repo.get(zombie.job_id)
        except UnknownJobError:
            return
        if stored.epoch == zombie.epoch and stored.worker_id == zombie.worker_id:
            return  # not reassigned yet: the lease is still its own
        self.tally.zombie_writes_attempted += 1
        late_write = self.rng.choice(
            (
                lambda: zombie.heartbeat(self.clock_ms),
                lambda: zombie.progressed(1, self.clock_ms),
                lambda: zombie.completed("zombie result", self.clock_ms),
                lambda: zombie.failed("zombie failure", self.clock_ms),
            )
        )
        try:
            evolved = late_write()
        except Exception:
            return  # the stale copy's state forbids this write shape
        try:
            self.repo.update(evolved)
        except StaleJobError:
            self.tally.zombie_writes_rejected += 1
        except InjectedKill:
            self._zombies.append(zombie)  # died before the CAS decided
            self.tally.zombie_writes_attempted -= 1
        except OSError:
            self.tally.zombie_writes_attempted -= 1
        else:
            self.tally.violations.append(
                f"zombie write accepted: {zombie.worker_id} wrote "
                f"job {zombie.job_id} with stale epoch {zombie.epoch} "
                f"(stored epoch {stored.epoch})"
            )

    def _act_release(self) -> None:
        quarantined = self.repo.list_jobs(state=QUARANTINED)
        if not quarantined:
            return
        job = self.rng.choice(quarantined)
        try:
            # Through the lifecycle gate, like AdminService.quarantine_release,
            # but on the iteration's logical clock.
            released = self.repo.update(job.released(self.clock_ms))
        except (StaleJobError, InjectedKill, OSError):
            return
        self.tally.releases += 1
        # Sanctioned terminal exit: reset the terminal-once tracker.
        self._terminal_seen.pop(job.job_id, None)
        self._last_seen[job.job_id] = released

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _audit(self) -> None:
        try:
            jobs = {j.job_id: j for j in self.repo.list_jobs()}
        except InjectedKill:  # pragma: no cover - scan paths carry no faults
            return
        missing = self._submitted_ids - set(jobs)
        for job_id in sorted(missing):
            self.tally.violations.append(f"job lost: {job_id} vanished")
        for job_id, job in jobs.items():
            before = self._last_seen.get(job_id)
            if before is not None:
                if job.version < before.version:
                    self.tally.violations.append(
                        f"version regressed on {job_id}: "
                        f"{before.version} -> {job.version}"
                    )
                if job.epoch < before.epoch:
                    self.tally.violations.append(
                        f"epoch regressed on {job_id}: "
                        f"{before.epoch} -> {job.epoch}"
                    )
                if (
                    job.state != before.state
                    and job.state not in _REACHABLE[before.state]
                ):
                    self.tally.violations.append(
                        f"illegal transition on {job_id}: "
                        f"{before.state} -> {job.state}"
                    )
            self._last_seen[job_id] = job
            if job.state in TERMINAL_STATES:
                first = self._terminal_seen.get(job_id)
                if first is None:
                    self._terminal_seen[job_id] = job
                elif (job.state, job.result_text, job.error) != (
                    first.state,
                    first.result_text,
                    first.error,
                ):
                    self.tally.violations.append(
                        f"terminal record changed on {job_id}: "
                        f"{first.state!r} -> {job.state!r}"
                    )
        for (job_id, epoch), writers in self._lease_writers.items():
            if len(writers) > 1:
                self.tally.violations.append(
                    f"dual-owner execution on {job_id} epoch {epoch}: "
                    f"{sorted(writers)}"
                )

    def _final_audit(self) -> None:
        for job in self.repo.list_jobs():
            if job.state not in TERMINAL_STATES:
                self.tally.violations.append(
                    f"did not converge: {job.job_id} ended {job.state}"
                )
                continue
            if job.state == "completed":
                self.tally.completed += 1
                if job.result_text != _expected_result(job):
                    self.tally.violations.append(
                        f"wrong result on {job.job_id}: {job.result_text!r}"
                    )
            elif job.state == "failed":
                self.tally.failed += 1
            elif job.state == "cancelled":
                self.tally.cancelled += 1
            else:
                self.tally.quarantined += 1
                if not job.attempts:
                    self.tally.violations.append(
                        f"quarantined without forensics: {job.job_id}"
                    )

    # ------------------------------------------------------------------
    # The iteration
    # ------------------------------------------------------------------
    def run(self) -> None:
        for i in range(self.jobs):
            spec = JobSpec(figure=f"fig{2 + (i % 3)}")
            job = Job.new(spec, now_ms=self.clock_ms, max_retries=6)
            # Submission itself can hit an injected torn write or full
            # disk; the client's retry is part of the scenario.
            for _ in range(20):
                try:
                    self.repo.submit(job)
                except (InjectedKill, OSError):
                    continue
                except ValueError:
                    pass  # a torn submit that actually landed: fine
                break
            else:
                raise AssertionError("could not submit through the faults")
            self._submitted_ids.add(job.job_id)
            self.tally.jobs_submitted += 1
            self.clock_ms += 1.0

        actions = (
            (self._act_worker, 0.55),
            (self._act_sweep, 0.25),
            (self._act_zombie, 0.15),
            (self._act_release, 0.05),
        )
        weights = [w for _, w in actions]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", LeaseClampWarning)
            for step in range(self.max_steps):
                if all(
                    j.state in TERMINAL_STATES for j in self.repo.list_jobs()
                ) and not self.repo.list_jobs(state=PENDING):
                    break
                if step > self.max_steps // 2:
                    # Stop releasing near the end so the queue can drain.
                    weights = [0.6, 0.3, 0.1, 0.0]
                (action,) = self.rng.choices(
                    [a for a, _ in actions], weights=weights
                )
                action()
                self._audit()
        self._final_audit()


def soak(
    root,
    backend: str,
    iterations: int,
    seed: int = 0,
    torn_write_rate: float = 0.04,
    disk_full_rate: float = 0.02,
    **harness_kwargs,
) -> SoakReport:
    """Run ``iterations`` seeded chaos iterations against ``backend``.

    Each iteration gets a fresh queue under ``root`` and its own derived
    seed, with store-level ``torn_write``/``disk_full``/``clock_skew``
    faults armed for the durable backends; the per-iteration
    :class:`SoakHarness` injects worker kills and zombie writes on top.
    """
    tally = _Tally()
    for iteration in range(iterations):
        iter_seed = seed * 1_000_003 + iteration
        queue_root = Path(root) / f"iter-{iteration:04d}"
        repository = _open(queue_root, backend)
        # clock_skew shifts every wall-clock ``store.now_ms`` read (the
        # operator-facing paths); the harness actors themselves run on
        # the iteration's logical clock, so determinism is unaffected.
        spec = (
            f"torn_write:rate={torn_write_rate}:seed={iter_seed},"
            f"disk_full:rate={disk_full_rate}:seed={iter_seed},"
            f"clock_skew:rate=0.2:seed={iter_seed}:param=1500"
        )
        harness = SoakHarness(
            repository, seed=iter_seed, tally=tally, **harness_kwargs
        )
        try:
            with inject(spec) as plan:
                harness.run()
            tally.torn_writes += plan.fires("torn_write")
        finally:
            repository.close()
    return SoakReport(
        iterations=iterations,
        backend=backend,
        seed=seed,
        jobs_submitted=tally.jobs_submitted,
        completed=tally.completed,
        failed=tally.failed,
        cancelled=tally.cancelled,
        quarantined=tally.quarantined,
        kills_injected=tally.kills_injected,
        torn_writes=tally.torn_writes,
        disk_fulls=tally.disk_fulls,
        sweeps=tally.sweeps,
        requeues=tally.requeues,
        zombie_writes_attempted=tally.zombie_writes_attempted,
        zombie_writes_rejected=tally.zombie_writes_rejected,
        releases=tally.releases,
        violations=tuple(tally.violations),
    )


def _open(queue_root, backend: str) -> JobRepository:
    if backend == "memory":
        from repro.jobs.repository import MemoryJobRepository

        return MemoryJobRepository()
    if backend == "file":
        # Short lock-break ages keep orphaned locks (a holder killed
        # mid-write) from stalling the single-process soak on wall time.
        from repro.jobs.repository import FileJobRepository

        return FileJobRepository(
            queue_root, lock_timeout_ms=25.0, lock_acquire_timeout_ms=2_000.0
        )
    return open_repository(queue_root, backend=backend)
