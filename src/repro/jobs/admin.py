"""Administrative operations over a job queue: stats, bulk cancel, purge,
and the quarantine shelf (list / release poison jobs)."""

from __future__ import annotations

from collections import Counter

from repro.jobs.lifecycle import PENDING, QUARANTINED, RUNNING, STATES, Job
from repro.jobs.repository import JobRepository, now_ms
from repro.jobs.service import JobService

__all__ = ["AdminService"]


class AdminService:
    """Queue-wide operations the per-job :class:`JobService` has no view for."""

    def __init__(self, repository: JobRepository) -> None:
        self.repository = repository
        self._service = JobService(repository)

    def stats(self) -> dict:
        """JSON-serializable queue summary (counts, progress, retries)."""
        jobs = self.repository.list_jobs()
        by_state = Counter(j.state for j in jobs)
        return {
            "jobs": len(jobs),
            "states": {state: by_state.get(state, 0) for state in STATES},
            "points_done": sum(j.points_done for j in jobs),
            "retries": sum(j.retries for j in jobs),
            "cancel_requested": sum(1 for j in jobs if j.cancel_requested),
        }

    def cancel_all(self, state: str | None = None) -> list[Job]:
        """Cancel every non-terminal job (optionally only one state)."""
        states = (PENDING, RUNNING) if state is None else (state,)
        cancelled = []
        for target in states:
            for job in self.repository.list_jobs(state=target):
                cancelled.append(self._service.cancel(job.job_id))
        return cancelled

    def quarantine_list(self) -> list[Job]:
        """Every QUARANTINED job, oldest first, forensics attached."""
        return self.repository.list_jobs(state=QUARANTINED)

    def quarantine_release(self, job_id: str) -> Job:
        """QUARANTINED -> PENDING: deliberately re-admit a poison job.

        Refreshes the retry budget and breaks the consecutive-death
        streak (the circuit breaker counts only deaths after the
        release); raises
        :class:`~repro.jobs.lifecycle.InvalidTransition` for a job that
        is not quarantined.
        """
        job = self.repository.get(job_id)
        return self.repository.update(job.released(now_ms()))

    def purge(
        self,
        older_than_ms: float | None = None,
        include_quarantined: bool = False,
    ) -> list[str]:
        """Delete terminal job records; returns the removed ids.

        ``older_than_ms`` restricts the purge to jobs that finished more
        than that many milliseconds ago (``None`` purges every terminal
        job).  Non-terminal jobs are never purged -- cancel them first.
        QUARANTINED jobs are parked evidence, not garbage: they are kept
        unless ``include_quarantined`` is set.
        """
        cutoff_ms = None if older_than_ms is None else now_ms() - older_than_ms
        removed = []
        for job in self.repository.list_jobs():
            if not job.is_terminal:
                continue
            if job.state == QUARANTINED and not include_quarantined:
                continue
            finished_ms = (
                job.finished_ms if job.finished_ms is not None else job.updated_ms
            )
            if cutoff_ms is not None and finished_ms > cutoff_ms:
                continue
            try:
                self.repository.delete(job.job_id)
            except KeyError:
                continue  # already gone
            removed.append(job.job_id)
        return removed
