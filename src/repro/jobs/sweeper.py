"""The stale-job sweeper: requeue RUNNING jobs whose worker died.

A worker that is SIGKILLed (or whose machine vanishes) cannot transition
its job anywhere -- the record stays RUNNING with a heartbeat that
stops advancing.  :class:`StaleJobSweeper` detects those orphans and
puts them back on the queue (``RUNNING -> PENDING``, one retry
consumed), where the next worker picks them up and -- because the job's
engine cache outlives the dead worker -- finishes them byte-identical
to an uninterrupted run.  The requeue bumps the record's version, and
the next claim bumps its fencing epoch, so the old owner (if it was
merely asleep) finds every later write rejected with ``StaleJobError``.

Staleness has two independent signals:

* *dead owner*: the worker id is ``"<pid>@<host>"``; for owners on this
  host, a pid that no longer exists is conclusive (no lease wait);
* *stale heartbeat*: for remote or unverifiable owners, a heartbeat
  older than the lease (solving emits a heartbeat per sweep point, so
  the lease only needs to exceed the slowest single solve).

Heartbeat evidence is weaker than a dead pid: a lease shorter than the
slowest solve *steals* jobs from live workers (the documented gotcha).
The sweeper defends itself: when a job's own progress implies a
heartbeat interval within 2x of the configured lease, the effective
lease for that job is clamped to 2x the observed interval (with a
:class:`LeaseClampWarning`), and every heartbeat-evidence requeue is
counted as a *steal* in :class:`SweeperStats` -- a high steal count
with no dead pids is the operational signature of a lease set too
short.

Two escalations beyond the plain requeue:

* a job whose retry budget is spent is recorded FAILED (a poisoned job
  must eventually surface, not loop);
* a job whose workers *die* on ``quarantine_after`` consecutive
  attempts trips the poison-job circuit breaker first: it is moved to
  QUARANTINED with its attempt forensics attached, for an operator to
  inspect and deliberately release (``admin quarantine-release``).
  Worker-side failure requeues (exceptions, outcome ``"failed"``) do
  not count toward the breaker -- only deaths do.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Callable
from dataclasses import dataclass

from repro.jobs.lifecycle import RUNNING, Job
from repro.jobs.repository import JobRepository, StaleJobError, now_ms

__all__ = ["LeaseClampWarning", "StaleJobSweeper", "SweeperStats"]


class LeaseClampWarning(UserWarning):
    """The configured lease is dangerously short for an observed job.

    Emitted when a RUNNING job's own progress rate implies a heartbeat
    interval the configured ``lease_ms`` does not cover with a 2x
    margin; the sweeper clamps its effective lease for that job rather
    than steal it from a live worker.
    """


def _local_pid_dead(worker_id: str | None) -> bool:
    """Conclusively dead: a local worker whose pid is gone."""
    if not worker_id or "@" not in worker_id:
        return False
    pid_part, _, host = worker_id.partition("@")
    if host != os.uname().nodename:
        return False
    try:
        pid = int(pid_part)
    except ValueError:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False  # exists, owned by someone else
    return False


@dataclass
class SweeperStats:
    """Counters accumulated across :meth:`StaleJobSweeper.sweep` passes.

    ``steals`` counts requeues/quarantines justified by heartbeat age
    alone (the owner was not provably dead) -- with a sane lease this
    stays at zero, so a growing count means the lease is too short or a
    worker's clock is skewed.  ``lease_clamps`` counts the times the
    per-job lease clamp saved a live worker from being stolen from.
    """

    swept: int = 0
    requeued: int = 0
    failed: int = 0
    quarantined: int = 0
    steals: int = 0
    lease_clamps: int = 0

    def as_dict(self) -> dict:
        return {
            "swept": self.swept,
            "requeued": self.requeued,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "steals": self.steals,
            "lease_clamps": self.lease_clamps,
        }


class StaleJobSweeper:
    """Requeues (or fails, or quarantines) RUNNING jobs owned by dead workers.

    Parameters
    ----------
    repository:
        The queue to sweep.
    lease_ms:
        Heartbeat age beyond which an owner that is not provably dead is
        presumed dead.  Heartbeats tick once per solved point, so this
        must exceed the slowest single solve -- the per-job clamp (see
        module docstring) papers over a misconfiguration but is not a
        substitute for setting it right.
    quarantine_after:
        Consecutive worker *deaths* (not failures, not cancels) that
        trip the poison-job circuit breaker.  ``None`` disables it.
    clock:
        Millisecond clock used for staleness decisions; injectable so
        the chaos soak can drive the sweeper on logical time.
    """

    def __init__(
        self,
        repository: JobRepository,
        lease_ms: float = 30_000.0,
        quarantine_after: int | None = 3,
        clock: Callable[[], float] = now_ms,
    ) -> None:
        if lease_ms <= 0:
            raise ValueError(f"lease_ms must be positive, got {lease_ms}")
        if quarantine_after is not None and quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1 or None, got {quarantine_after}"
            )
        self.repository = repository
        self.lease_ms = float(lease_ms)
        self.quarantine_after = quarantine_after
        self.clock = clock
        self.stats = SweeperStats()

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------
    def observed_heartbeat_interval_ms(self, job: Job) -> float | None:
        """Mean time between this job's heartbeats, from its own progress.

        ``None`` when the job has not reported progress yet (nothing to
        observe).
        """
        if job.points_done <= 0:
            return None
        if job.heartbeat_ms is None or job.started_ms is None:
            return None
        # points_done counts the *current* attempt only (requeues reset
        # it), so the window must start at the current attempt's claim,
        # not the first one -- ``started_ms`` survives requeues, and
        # measuring a fresh attempt's few points against the whole job
        # age would inflate the estimate (and the clamp) without bound.
        attempt_start_ms = job.started_ms
        if job.attempts:
            attempt_start_ms = max(attempt_start_ms, job.attempts[-1].ended_ms)
        elapsed_ms = job.heartbeat_ms - attempt_start_ms
        if elapsed_ms <= 0:
            return None
        return elapsed_ms / job.points_done

    def effective_lease_ms(self, job: Job) -> float:
        """The lease actually applied to ``job``: configured, or clamped.

        When the configured lease is shorter than 2x the job's observed
        heartbeat interval, stealing on heartbeat age would take the job
        from a live-but-slow worker; the lease is clamped to 2x the
        observed interval and a :class:`LeaseClampWarning` is emitted.
        """
        observed_ms = self.observed_heartbeat_interval_ms(job)
        if observed_ms is None:
            return self.lease_ms
        clamped_ms = 2.0 * observed_ms
        if self.lease_ms >= clamped_ms:
            return self.lease_ms
        self.stats.lease_clamps += 1
        warnings.warn(
            f"job {job.job_id}: configured lease {self.lease_ms:g} ms is "
            f"shorter than 2x the observed heartbeat interval "
            f"({observed_ms:g} ms); clamping the effective lease to "
            f"{clamped_ms:g} ms to avoid stealing from a live worker",
            LeaseClampWarning,
            stacklevel=2,
        )
        return clamped_ms

    def is_stale(self, job: Job, at_ms: float) -> bool:
        """Should this RUNNING job be taken from its owner?"""
        if job.state != RUNNING:
            return False
        if _local_pid_dead(job.worker_id):
            return True
        last_ms = job.heartbeat_ms if job.heartbeat_ms is not None else job.updated_ms
        return (at_ms - last_ms) > self.effective_lease_ms(job)

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def sweep(self) -> list[Job]:
        """One pass over RUNNING jobs; returns the records it rewrote.

        Stale jobs go, in order of precedence: QUARANTINED when the
        consecutive-death breaker trips, back to PENDING while retry
        budget remains, FAILED otherwise.  Concurrent updates (the owner
        was alive after all, another sweeper won the race) make that job
        a no-op.
        """
        at_ms = self.clock()
        touched: list[Job] = []
        for job in self.repository.list_jobs(state=RUNNING):
            if not self.is_stale(job, at_ms):
                continue
            pid_dead = _local_pid_dead(job.worker_id)
            detail = (
                f"worker {job.worker_id} pid is gone"
                if pid_dead
                else f"worker {job.worker_id} heartbeat outlived the lease"
            )
            deaths_with_this_one = job.consecutive_worker_deaths + 1
            if (
                self.quarantine_after is not None
                and deaths_with_this_one >= self.quarantine_after
            ):
                evolved = job.quarantined(self.clock(), detail=detail)
                outcome = "quarantined"
            elif job.retries < job.max_retries:
                evolved = job.requeued(self.clock(), detail=detail)
                outcome = "requeued"
            else:
                evolved = job.failed(
                    f"worker {job.worker_id} died and the requeue budget "
                    f"is exhausted ({job.retries}/{job.max_retries})",
                    self.clock(),
                )
                outcome = "failed"
            try:
                touched.append(self.repository.update(evolved))
            except StaleJobError:
                continue  # someone else already handled it
            self.stats.swept += 1
            setattr(self.stats, outcome, getattr(self.stats, outcome) + 1)
            if not pid_dead:
                self.stats.steals += 1
        return touched
