"""The stale-job sweeper: requeue RUNNING jobs whose worker died.

A worker that is SIGKILLed (or whose machine vanishes) cannot transition
its job anywhere -- the record stays RUNNING with a heartbeat that
stops advancing.  :class:`StaleJobSweeper` detects those orphans and
puts them back on the queue (``RUNNING -> PENDING``, one retry
consumed), where the next worker picks them up and -- because the job's
engine cache outlives the dead worker -- finishes them byte-identical
to an uninterrupted run.

Staleness has two independent signals:

* *dead owner*: the worker id is ``"<pid>@<host>"``; for owners on this
  host, a pid that no longer exists is conclusive (no lease wait);
* *stale heartbeat*: for remote or unverifiable owners, a heartbeat
  older than ``lease_ms`` (solving emits a heartbeat per sweep point,
  so the lease only needs to exceed the slowest single solve).

A job whose retry budget is already spent is not recycled forever: the
sweeper records it FAILED with a diagnostic instead (a poisoned job
that kills every worker must eventually surface, not loop).
"""

from __future__ import annotations

import os

from repro.jobs.lifecycle import RUNNING, Job
from repro.jobs.repository import JobRepository, StaleJobError, now_ms

__all__ = ["StaleJobSweeper"]


def _local_pid_dead(worker_id: str | None) -> bool:
    """Conclusively dead: a local worker whose pid is gone."""
    if not worker_id or "@" not in worker_id:
        return False
    pid_part, _, host = worker_id.partition("@")
    if host != os.uname().nodename:
        return False
    try:
        pid = int(pid_part)
    except ValueError:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False  # exists, owned by someone else
    return False


class StaleJobSweeper:
    """Requeues (or fails) RUNNING jobs owned by dead workers."""

    def __init__(
        self, repository: JobRepository, lease_ms: float = 30_000.0
    ) -> None:
        if lease_ms <= 0:
            raise ValueError(f"lease_ms must be positive, got {lease_ms}")
        self.repository = repository
        self.lease_ms = float(lease_ms)

    def is_stale(self, job: Job, at_ms: float) -> bool:
        """Should this RUNNING job be taken from its owner?"""
        if job.state != RUNNING:
            return False
        if _local_pid_dead(job.worker_id):
            return True
        last_ms = job.heartbeat_ms if job.heartbeat_ms is not None else job.updated_ms
        return (at_ms - last_ms) > self.lease_ms

    def sweep(self) -> list[Job]:
        """One pass over RUNNING jobs; returns the records it rewrote.

        Stale jobs with retry budget left are requeued; exhausted ones
        are recorded FAILED.  Concurrent updates (the owner was alive
        after all, another sweeper won the race) make that job a no-op.
        """
        at_ms = now_ms()
        touched: list[Job] = []
        for job in self.repository.list_jobs(state=RUNNING):
            if not self.is_stale(job, at_ms):
                continue
            if job.retries < job.max_retries:
                evolved = job.requeued(now_ms())
            else:
                evolved = job.failed(
                    f"worker {job.worker_id} died and the requeue budget "
                    f"is exhausted ({job.retries}/{job.max_retries})",
                    now_ms(),
                )
            try:
                touched.append(self.repository.update(evolved))
            except StaleJobError:
                continue  # someone else already handled it
        return touched
