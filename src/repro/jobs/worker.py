"""The job worker: claims PENDING jobs and executes them through the engine.

One :meth:`JobWorker.run_once` call claims the oldest eligible PENDING
job, builds a :class:`~repro.engine.SweepEngine` from the job's own
:class:`~repro.engine.EngineConfig`, and runs the figure through
:func:`repro.experiments.runner.execute_figure` -- the *same* function
the blocking CLI uses, so a job's rendered result is byte-identical to
the blocking path by construction.

The engine's two runtime hooks tie execution back to the durable record:

* the ``progress`` hook writes ``points_done`` (doubling as the
  heartbeat the sweeper watches);
* the ``cancel`` hook re-reads the record each sweep point and stops
  cooperatively -- raising
  :class:`~repro.engine.resilience.SweepCancelled` inside the engine --
  when cancellation was requested or the job was requeued under us
  (another worker owns it now; we must not write anything).

Zombie fencing: the claim stamps a lease *epoch* on the record, and the
worker captures it.  Every write and every cancel poll checks the
stored epoch against the captured one; a mismatch proves the job was
requeued and re-claimed under us -- even by a worker that reused our
pid and id -- so we stand down (:class:`_Preempted`) without writing.
The repository enforces the same thing unconditionally: a stale-epoch
write raises ``StaleJobError`` no matter what the writer checked.

Chaos hook: the ``worker_kill`` fault point fires at the top of
:meth:`execute`, SIGKILLing the worker process mid-job exactly like the
engine's chain workers die -- the requeue tests drive it via
``REPRO_FAULTS=worker_kill:...``.  The in-process chaos soak instead
injects deaths through its *runner* (see ``runner=`` below), which
raises :class:`~repro.faults.InjectedKill` through the worker like a
SIGKILL tears through the process.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import socket
from collections.abc import Callable

from repro.engine.resilience import SweepCancelled
from repro.faults import fire as _fault_fire
from repro.jobs.lifecycle import RUNNING, Job
from repro.jobs.repository import (
    JobRepository,
    StaleJobError,
    UnknownJobError,
    now_ms,
)

__all__ = ["JobWorker", "default_worker_id"]


def default_worker_id() -> str:
    """``"<pid>@<host>"`` -- lets the sweeper liveness-check local owners."""
    return f"{os.getpid()}@{socket.gethostname()}"


class _Preempted(SweepCancelled):
    """The job was requeued/reassigned under this worker: stand down silently."""


class JobWorker:
    """Claims and executes jobs against a :class:`JobRepository`.

    Parameters
    ----------
    repository:
        The queue to claim from.
    worker_id:
        Defaults to ``"<pid>@<host>"``.
    runner:
        How to actually execute a claimed job: a callable
        ``(job, engine) -> result_text``.  Defaults to the production
        path (:func:`repro.experiments.runner.execute_figure`); the
        chaos soak substitutes a deterministic fake that drives the
        progress/cancel hooks and injects deaths.
    clock:
        Millisecond clock for heartbeats/timestamps; injectable so the
        soak runs on logical time.
    """

    def __init__(
        self,
        repository: JobRepository,
        worker_id: str | None = None,
        runner: Callable[[Job, object], str] | None = None,
        clock: Callable[[], float] = now_ms,
    ) -> None:
        self.repository = repository
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.runner = runner
        self.clock = clock

    # ------------------------------------------------------------------
    # Claim loop
    # ------------------------------------------------------------------
    def run_once(self) -> Job | None:
        """Claim and execute one job; ``None`` when the queue is drained."""
        job = self.repository.claim(self.worker_id, self.clock())
        if job is None:
            return None
        return self.execute(job)

    def run_until_drained(self, max_jobs: int | None = None) -> list[Job]:
        """Execute jobs until the queue has no PENDING work left."""
        done: list[Job] = []
        while max_jobs is None or len(done) < max_jobs:
            job = self.run_once()
            if job is None:
                break
            done.append(job)
        return done

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _default_runner(self, job: Job, engine) -> str:
        # Import here, not at module top: repro.experiments imports the
        # engine this package configures; keep the layering acyclic.
        from repro.experiments.runner import execute_figure

        return execute_figure(job.spec.figure, engine=engine, fast=job.spec.fast)

    def execute(self, job: Job) -> Job:
        """Execute an already-claimed RUNNING job; returns the final record.

        The returned job is terminal (COMPLETED/FAILED/CANCELLED) except
        after a failure requeue (retry budget left: RUNNING -> PENDING)
        or a preemption (another worker owns the record; returns our
        last consistent read without writing).
        """
        if _fault_fire("worker_kill"):
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover

        current = job
        claim_epoch = job.epoch

        def lost_ownership(fresh: Job) -> bool:
            return (
                fresh.state != RUNNING
                or fresh.worker_id != self.worker_id
                or fresh.epoch != claim_epoch
            )

        def write(evolved: Job) -> Job:
            """Store an evolved copy, surfacing preemption as _Preempted."""
            nonlocal current
            while True:
                try:
                    current = self.repository.update(evolved)
                    return current
                except StaleJobError:
                    fresh = self.repository.get(evolved.job_id)
                    if lost_ownership(fresh):
                        raise _Preempted(
                            f"job {evolved.job_id} reassigned to "
                            f"{fresh.worker_id} (epoch {fresh.epoch})"
                        ) from None
                    # Concurrent non-ownership change (a cancel request):
                    # reapply our delta on top of the fresh copy and retry.
                    evolved = _reapply(fresh, evolved)

        def progress(points: int) -> None:
            write(current.progressed(points, self.clock()))

        def cancel() -> bool:
            try:
                fresh = self.repository.get(current.job_id)
            except UnknownJobError:
                return True  # record purged under us: stop solving
            if lost_ownership(fresh):
                raise _Preempted(
                    f"job {current.job_id} reassigned to {fresh.worker_id} "
                    f"(epoch {fresh.epoch})"
                )
            return fresh.cancel_requested

        engine = job.spec.engine.build_engine(progress=progress, cancel=cancel)
        runner = self.runner if self.runner is not None else self._default_runner
        try:
            result_text = runner(job, engine)
        except _Preempted:
            return current  # new owner's record is authoritative; write nothing
        except SweepCancelled:
            try:
                return write(current.cancelled(self.clock()))
            except _Preempted:
                return current
        except Exception as exc:  # noqa: BLE001 -- a job must record any failure
            return self._record_failure(current, exc)
        try:
            return write(current.completed(result_text, self.clock()))
        except _Preempted:
            return current

    def _record_failure(self, current: Job, exc: Exception) -> Job:
        """FAILED, or RUNNING -> PENDING while retry budget remains.

        The requeue's forensics record carries outcome ``"failed"`` (the
        worker survived to report), so it never counts toward the
        sweeper's consecutive-death circuit breaker.
        """
        error = f"{type(exc).__name__}: {exc}"
        try:
            if current.retries < current.max_retries:
                return self.repository.update(
                    current.requeued(self.clock(), outcome="failed", detail=error)
                )
            return self.repository.update(current.failed(error, self.clock()))
        except StaleJobError:
            return self.repository.get(current.job_id)


def _reapply(fresh: Job, evolved: Job) -> Job:
    """Re-apply a worker-side delta on top of a concurrently updated record.

    Only fields the worker owns are carried over; concurrently written
    fields (``cancel_requested``) are taken from the fresh copy.  Only
    reached when the fresh copy still carries our worker id *and* our
    lease epoch, so the fresh record's ownership fields are ours too.
    """
    return dataclasses.replace(  # noqa: RL012 -- re-applies a delta already produced through _to() onto the concurrently updated record; no new transition is minted here
        fresh,
        state=evolved.state,
        points_done=evolved.points_done,
        points_total=evolved.points_total,
        heartbeat_ms=evolved.heartbeat_ms,
        updated_ms=evolved.updated_ms,
        finished_ms=evolved.finished_ms,
        result_text=evolved.result_text,
        error=evolved.error,
    )
