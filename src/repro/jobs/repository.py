"""Durable storage for jobs: the pluggable :class:`JobRepository`.

Two implementations ship:

* :class:`MemoryJobRepository` -- a lock-guarded dict; the unit-test and
  single-process substrate.
* :class:`FileJobRepository` -- one JSON document per job under
  ``<root>/jobs/``, written atomically (``tmp.<pid>`` + ``os.replace``,
  the same crash-safe idiom as
  :class:`~repro.experiments.manifest.RunManifest`), so a SIGKILL at any
  instant leaves either the old record or the new one, never a torn
  file.  Cross-process mutual exclusion uses a short-lived ``O_EXCL``
  lock file per job held only across a read-modify-write (microseconds;
  no solving happens under a lock); a lock orphaned by a kill inside
  that window is broken by age.

Both enforce *optimistic concurrency*: every stored job carries a
``version``, every update requires the writer's copy to match it, and a
mismatch raises :class:`StaleJobError`.  That is what keeps a worker
whose job was requeued under it (sweeper decided it was dead, another
worker took over) from overwriting the new owner's record.
"""

from __future__ import annotations

import json
import os
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import replace
from pathlib import Path

from repro.jobs.lifecycle import PENDING, Job

__all__ = [
    "FileJobRepository",
    "JobRepository",
    "MemoryJobRepository",
    "StaleJobError",
    "UnknownJobError",
]


class UnknownJobError(KeyError):
    """No job with the requested id exists in the repository."""


class StaleJobError(RuntimeError):
    """An update was based on an outdated copy (version mismatch).

    The canonical recovery is read-decide-retry: re-fetch the job, check
    whether the concurrent change (requeue, cancellation) makes the
    update moot, and either re-apply or stand down.
    """


def now_ms() -> float:
    """Wall-clock milliseconds since the epoch (heartbeats, timestamps)."""
    return time.time() * 1000.0


class JobRepository(ABC):
    """Storage contract the worker, sweeper and services run against."""

    @abstractmethod
    def submit(self, job: Job) -> Job:
        """Store a fresh job; returns the stored copy (version 0)."""

    @abstractmethod
    def get(self, job_id: str) -> Job:
        """The current stored copy; raises :class:`UnknownJobError`."""

    @abstractmethod
    def update(self, job: Job) -> Job:
        """Store an evolved copy.

        ``job.version`` must equal the stored version; the returned copy
        carries ``version + 1``.  Raises :class:`StaleJobError` on a
        mismatch and :class:`UnknownJobError` for a vanished job.
        """

    @abstractmethod
    def claim(self, worker_id: str, claim_now_ms: float) -> Job | None:
        """Atomically claim the oldest PENDING job, or ``None``.

        The claimed job is stored as RUNNING under ``worker_id`` before
        it is returned; no two workers can claim the same job.
        """

    @abstractmethod
    def list_jobs(self, state: str | None = None) -> list[Job]:
        """All jobs (optionally filtered by state), oldest first."""

    @abstractmethod
    def delete(self, job_id: str) -> None:
        """Remove a job record; raises :class:`UnknownJobError`."""


class MemoryJobRepository(JobRepository):
    """In-process repository: a dict behind a lock.

    Supports multi-threaded workers (the HTTP front end executes jobs on
    threads) but naturally not multi-process ones -- that is what
    :class:`FileJobRepository` is for.
    """

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()

    def submit(self, job: Job) -> Job:
        stored = replace(job, version=0)
        with self._lock:
            if job.job_id in self._jobs:
                raise ValueError(f"job {job.job_id} already exists")
            self._jobs[job.job_id] = stored
        return stored

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def update(self, job: Job) -> Job:
        with self._lock:
            current = self._jobs.get(job.job_id)
            if current is None:
                raise UnknownJobError(job.job_id)
            if current.version != job.version:
                raise StaleJobError(
                    f"job {job.job_id}: update based on version "
                    f"{job.version}, stored is {current.version}"
                )
            stored = replace(job, version=job.version + 1)
            self._jobs[job.job_id] = stored
        return stored

    def claim(self, worker_id: str, claim_now_ms: float) -> Job | None:
        with self._lock:
            pending = sorted(
                (j for j in self._jobs.values() if j.state == PENDING),
                key=lambda j: (j.created_ms, j.job_id),
            )
            for job in pending:
                if job.cancel_requested:
                    continue
                claimed = replace(
                    job.claimed(worker_id, claim_now_ms), version=job.version + 1
                )
                self._jobs[job.job_id] = claimed
                return claimed
        return None

    def list_jobs(self, state: str | None = None) -> list[Job]:
        with self._lock:
            jobs = list(self._jobs.values())
        if state is not None:
            jobs = [j for j in jobs if j.state == state]
        return sorted(jobs, key=lambda j: (j.created_ms, j.job_id))

    def delete(self, job_id: str) -> None:
        with self._lock:
            if self._jobs.pop(job_id, None) is None:
                raise UnknownJobError(job_id)


class FileJobRepository(JobRepository):
    """On-disk repository: one atomic JSON document per job.

    Layout under ``root``::

        root/jobs/<job_id>.json   the job record
        root/jobs/<job_id>.lock   short-lived read-modify-write lock
        root/cache/               the queue's shared solve cache
                                  (see JobService.cache_dir)

    Durability model: records are written with the ``tmp.<pid>`` +
    ``os.replace`` idiom, so readers always see a complete document.
    Locks only serialize the read-modify-write window; a lock file left
    behind by a killed process is broken once older than
    ``lock_timeout_ms``.
    """

    def __init__(self, root: str | os.PathLike, lock_timeout_ms: float = 5_000.0):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        if lock_timeout_ms <= 0:
            raise ValueError(
                f"lock_timeout_ms must be positive, got {lock_timeout_ms}"
            )
        self.lock_timeout_ms = float(lock_timeout_ms)

    @property
    def cache_dir(self) -> str:
        """The queue's shared on-disk solve cache directory.

        Pointing every job's engine here is what makes requeues resume:
        solves a dead worker finished are already on disk, so the next
        worker replays them as cache hits and the final result is
        byte-identical to an uninterrupted run.
        """
        return str(self.root / "cache")

    # ------------------------------------------------------------------
    # Record I/O
    # ------------------------------------------------------------------
    def _path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _read(self, path: Path) -> Job:
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise UnknownJobError(path.stem) from None
        return Job.from_dict(payload)

    def _write(self, job: Job) -> None:
        path = self._path(job.job_id)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(job.as_dict(), indent=2) + "\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Per-job RMW lock
    # ------------------------------------------------------------------
    def _lock_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.lock"

    def _acquire_lock(self, job_id: str) -> bool:
        lock = self._lock_path(job_id)
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            # Break locks orphaned by a kill inside the RMW window.
            try:
                age_ms = now_ms() - lock.stat().st_mtime * 1000.0
            except FileNotFoundError:
                return False  # holder just released; retry next attempt
            if age_ms > self.lock_timeout_ms:
                try:
                    lock.unlink()
                except FileNotFoundError:
                    pass
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{os.getpid()}\n")
        return True

    def _release_lock(self, job_id: str) -> None:
        try:
            self._lock_path(job_id).unlink()
        except FileNotFoundError:
            pass

    def _with_lock(self, job_id: str, attempts: int = 50):
        """Context manager: acquire the RMW lock, spinning briefly."""
        return _JobLock(self, job_id, attempts)

    # ------------------------------------------------------------------
    # JobRepository API
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> Job:
        stored = replace(job, version=0)
        path = self._path(job.job_id)
        if path.exists():
            raise ValueError(f"job {job.job_id} already exists")
        self._write(stored)
        return stored

    def get(self, job_id: str) -> Job:
        return self._read(self._path(job_id))

    def update(self, job: Job) -> Job:
        with self._with_lock(job.job_id):
            current = self.get(job.job_id)
            if current.version != job.version:
                raise StaleJobError(
                    f"job {job.job_id}: update based on version "
                    f"{job.version}, stored is {current.version}"
                )
            stored = replace(job, version=job.version + 1)
            self._write(stored)
        return stored

    def claim(self, worker_id: str, claim_now_ms: float) -> Job | None:
        for job in self.list_jobs(state=PENDING):
            if job.cancel_requested:
                continue
            try:
                with self._with_lock(job.job_id):
                    current = self.get(job.job_id)
                    if current.state != PENDING or current.cancel_requested:
                        continue
                    claimed = replace(
                        current.claimed(worker_id, claim_now_ms),
                        version=current.version + 1,
                    )
                    self._write(claimed)
                    return claimed
            except (UnknownJobError, TimeoutError):
                continue  # purged or contended underneath us; next candidate
        return None

    def list_jobs(self, state: str | None = None) -> list[Job]:
        jobs = []
        for path in self.jobs_dir.glob("*.json"):
            try:
                jobs.append(self._read(path))
            except UnknownJobError:
                continue  # deleted between glob and read
        if state is not None:
            jobs = [j for j in jobs if j.state == state]
        return sorted(jobs, key=lambda j: (j.created_ms, j.job_id))

    def delete(self, job_id: str) -> None:
        try:
            self._path(job_id).unlink()
        except FileNotFoundError:
            raise UnknownJobError(job_id) from None
        self._release_lock(job_id)


class _JobLock:
    """``with``-style wrapper around the repository's per-job RMW lock."""

    def __init__(self, repo: FileJobRepository, job_id: str, attempts: int):
        self.repo = repo
        self.job_id = job_id
        self.attempts = attempts

    def __enter__(self) -> None:
        delay_ms = 2.0
        for _ in range(self.attempts):
            if self.repo._acquire_lock(self.job_id):
                return
            time.sleep(delay_ms / 1000.0)
            delay_ms = min(delay_ms * 1.5, 100.0)
        raise TimeoutError(
            f"could not lock job {self.job_id} after {self.attempts} attempts"
        )

    def __exit__(self, exc_type, exc, tb) -> None:
        self.repo._release_lock(self.job_id)
