"""The queue protocol over a pluggable :class:`~repro.jobs.store.JobStore`.

:class:`JobRepository` implements the full claim/update protocol --
optimistic-concurrency updates, fencing-epoch stamping on claims,
oldest-first claim scans -- generically over any store backend, so the
queue semantics are written (and tested) exactly once:

* :class:`MemoryJobRepository` -- in-process dict store; unit tests and
  the thread-based HTTP front end.
* :class:`FileJobRepository` -- crash-safe JSON-dir store
  (:class:`~repro.jobs.store.FileJobStore`): ``tmp.<pid>`` +
  ``os.replace`` records plus short-lived ``O_EXCL`` RMW locks.
* :class:`SqliteJobRepository` -- WAL-mode SQLite store
  (:class:`~repro.jobs.sqlite_store.SqliteJobStore`): single-statement
  compare-and-swap, no lock files.

All of them enforce *optimistic concurrency*: every stored job carries a
``version``, every update requires the writer's copy to match it, and a
mismatch raises :class:`StaleJobError`.  Claims additionally stamp a
monotonically increasing *fencing epoch* on the lease, so a zombie
worker -- one whose job was requeued under it and claimed by someone
else -- is rejected by version *and* identifiable by epoch: the error
says whether the writer merely raced another update (re-read and
re-apply) or provably lost its lease (stand down).
"""

from __future__ import annotations

import os
from dataclasses import replace

from repro.jobs.lifecycle import PENDING, Job
from repro.jobs.sqlite_store import SqliteJobStore
from repro.jobs.store import (
    FileJobStore,
    JobStore,
    LockContentionError,
    MemoryJobStore,
    StaleJobError,
    UnknownJobError,
    now_ms,
)

__all__ = [
    "FileJobRepository",
    "JobRepository",
    "LockContentionError",
    "MemoryJobRepository",
    "SqliteJobRepository",
    "StaleJobError",
    "UnknownJobError",
    "open_repository",
]


class JobRepository:
    """The queue protocol, generic over a :class:`JobStore` backend."""

    def __init__(self, store: JobStore) -> None:
        self.store = store

    @property
    def cache_dir(self) -> str | None:
        """The queue's shared on-disk solve cache directory, if durable.

        Pointing every job's engine here is what makes requeues resume:
        solves a dead worker finished are already on disk, so the next
        worker replays them as cache hits and the final result is
        byte-identical to an uninterrupted run.
        """
        return self.store.cache_dir

    def close(self) -> None:
        """Release the backend's resources.  Idempotent."""
        self.store.close()

    def submit(self, job: Job) -> Job:
        """Store a fresh job; returns the stored copy (version 0)."""
        stored = replace(job, version=0)
        self.store.insert(stored)
        return stored

    def get(self, job_id: str) -> Job:
        """The current stored copy; raises :class:`UnknownJobError`."""
        return self.store.read(job_id)

    def update(self, job: Job) -> Job:
        """Store an evolved copy.

        ``job.version`` must equal the stored version; the returned copy
        carries ``version + 1``.  Raises :class:`StaleJobError` on a
        mismatch (annotated with the lease epochs when the writer's
        fencing token is stale -- the zombie-worker signature) and
        :class:`UnknownJobError` for a vanished job.
        """
        stored = replace(job, version=job.version + 1)
        try:
            self.store.replace(stored, expected_version=job.version)
        except StaleJobError as exc:
            current = self.store.read(job.job_id)
            if current.epoch != job.epoch:
                raise StaleJobError(
                    f"job {job.job_id}: write fenced off -- writer holds "
                    f"lease epoch {job.epoch}, stored is {current.epoch} "
                    f"(the job was requeued and re-claimed; stand down)"
                ) from None
            raise exc
        return stored

    def claim(self, worker_id: str, claim_now_ms: float) -> Job | None:
        """Atomically claim the oldest PENDING job, or ``None``.

        The claimed job is stored as RUNNING under ``worker_id`` with a
        freshly stamped fencing epoch (``stored.epoch + 1``) before it
        is returned; the store's compare-and-swap guarantees no two
        workers can win the same claim, and the epoch bump guarantees
        any previous leaseholder's copy is now provably stale.
        """
        for job in self.list_jobs(state=PENDING):
            if job.cancel_requested:
                continue
            try:
                current = self.store.read(job.job_id)
                if current.state != PENDING or current.cancel_requested:
                    continue
                claimed = current.claimed(
                    worker_id, claim_now_ms, epoch=current.epoch + 1
                )
                return self.update(claimed)
            except (UnknownJobError, StaleJobError, TimeoutError):
                continue  # purged, raced or contended underneath us
        return None

    def list_jobs(self, state: str | None = None) -> list[Job]:
        """All jobs (optionally filtered by state), oldest first."""
        jobs = self.store.scan()
        if state is not None:
            jobs = [j for j in jobs if j.state == state]
        return sorted(jobs, key=lambda j: (j.created_ms, j.job_id))

    def delete(self, job_id: str) -> None:
        """Remove a job record; raises :class:`UnknownJobError`."""
        self.store.remove(job_id)


class MemoryJobRepository(JobRepository):
    """In-process repository over a :class:`MemoryJobStore`.

    Supports multi-threaded workers (the HTTP front end executes jobs on
    threads) but naturally not multi-process ones -- that is what the
    durable backends are for.
    """

    def __init__(self) -> None:
        super().__init__(MemoryJobStore())


class FileJobRepository(JobRepository):
    """Crash-safe JSON-dir repository over a :class:`FileJobStore`.

    See the store for the durability model; ``jobs_dir``/``root`` and
    the lock knobs are re-exposed here for callers and tests.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        lock_timeout_ms: float = 5_000.0,
        lock_acquire_timeout_ms: float = 30_000.0,
    ):
        super().__init__(
            FileJobStore(
                root,
                lock_timeout_ms=lock_timeout_ms,
                lock_acquire_timeout_ms=lock_acquire_timeout_ms,
            )
        )

    @property
    def root(self):
        return self.store.root

    @property
    def jobs_dir(self):
        return self.store.jobs_dir

    @property
    def lock_timeout_ms(self) -> float:
        return self.store.lock_timeout_ms


class SqliteJobRepository(JobRepository):
    """WAL-mode SQLite repository over a :class:`SqliteJobStore`."""

    def __init__(self, root: str | os.PathLike, busy_timeout_ms: float = 10_000.0):
        super().__init__(SqliteJobStore(root, busy_timeout_ms=busy_timeout_ms))

    @property
    def root(self):
        return self.store.root

    @property
    def db_path(self):
        return self.store.db_path


def open_repository(root: str | os.PathLike, backend: str = "auto") -> JobRepository:
    """Open the durable repository at ``root`` with the chosen backend.

    ``backend`` is ``"file"`` (JSON-dir), ``"sqlite"``, or ``"auto"``:
    auto re-opens whatever backend already lives at ``root`` (an
    existing ``jobs.sqlite3`` wins over an existing ``jobs/`` dir) and
    defaults to the JSON-dir layout for a fresh root, so existing queues
    keep working untouched.
    """
    from pathlib import Path

    root = Path(root)
    if backend == "auto":
        if (root / "jobs.sqlite3").exists():
            backend = "sqlite"
        elif (root / "jobs").is_dir():
            backend = "file"
        else:
            backend = "file"
    if backend == "file":
        return FileJobRepository(root)
    if backend == "sqlite":
        return SqliteJobRepository(root)
    raise ValueError(
        f"unknown job-store backend {backend!r}; choose from auto, file, sqlite"
    )
