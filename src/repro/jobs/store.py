"""The pluggable :class:`JobStore` backend seam of the job queue.

A store is the *durable record* layer under
:class:`~repro.jobs.repository.JobRepository`: five primitive
operations -- insert, read, compare-and-swap replace, scan, remove --
each of which must be atomic and crash-consistent on its own.  All queue
semantics (claim ordering, fencing epochs, requeue, quarantine) are
built on top of the CAS in the repository, so a new backend only has to
get these five right to inherit the whole protocol, and the shared
conformance suite (``tests/jobs/test_store_conformance.py``) checks
exactly that.

Backends shipping here:

* :class:`MemoryJobStore` -- a lock-guarded dict; the unit-test and
  single-process substrate.
* :class:`FileJobStore` -- one JSON document per job under
  ``<root>/jobs/``, written atomically (``tmp.<pid>`` + ``os.replace``),
  so a SIGKILL at any instant leaves either the old record or the new
  one, never a torn file.  Cross-process mutual exclusion uses a
  short-lived ``O_EXCL`` lock file per job held only across a
  read-modify-write (microseconds; no solving happens under a lock),
  acquired with jittered exponential backoff under an explicit timeout
  (:class:`LockContentionError`); a lock orphaned by a kill inside that
  window is broken by age.

:class:`~repro.jobs.sqlite_store.SqliteJobStore` (WAL mode,
single-statement compare-and-swap) lives in its own module so importing
the queue never touches ``sqlite3`` unless that backend is chosen.

Chaos hooks: the durable-write path carries the ``disk_full`` (ENOSPC
before any byte lands) and ``torn_write`` (simulated death between the
tmp write and the replace) fault points, the lock release carries
``lock_orphan`` (holder dies before unlinking), and :func:`now_ms`
honours ``clock_skew`` (per-process heartbeat clock offset) -- all
driven by :mod:`repro.faults`.
"""

from __future__ import annotations

import errno
import json
import os
import random
import threading
import time
from abc import ABC, abstractmethod
from pathlib import Path

from repro.faults import InjectedKill, fire as _fault_fire, fire_value as _fault_value
from repro.jobs.lifecycle import Job

__all__ = [
    "FileJobStore",
    "JobStore",
    "LockContentionError",
    "MemoryJobStore",
    "StaleJobError",
    "UnknownJobError",
    "now_ms",
]


class UnknownJobError(KeyError):
    """No job with the requested id exists in the store."""


class StaleJobError(RuntimeError):
    """An update was based on an outdated copy (version or lease epoch).

    The canonical recovery is read-decide-retry: re-fetch the job, check
    whether the concurrent change (requeue, new lease epoch,
    cancellation) makes the update moot, and either re-apply or stand
    down.  A *zombie* worker -- one whose lease epoch has been
    superseded -- must always stand down: a rejected late write is
    fencing working as designed, not a solve failure.
    """


class LockContentionError(TimeoutError):
    """A per-job RMW lock could not be acquired within the timeout.

    Raised instead of spinning forever so a CLI caller gets a typed,
    actionable error; the repository's claim loop treats it as "skip
    this candidate".
    """


def now_ms() -> float:
    """Wall-clock milliseconds since the epoch (heartbeats, timestamps).

    Chaos hook: with a ``clock_skew`` fault armed, the reading is offset
    by the rule's ``param`` milliseconds -- the deterministic stand-in
    for a worker whose clock drifts from the fleet's.
    """
    skew_ms = _fault_value("clock_skew")
    return time.time() * 1000.0 + (skew_ms or 0.0)


class JobStore(ABC):
    """Durable record storage: the five primitives a backend must get right.

    Every operation is atomic.  ``replace`` is the linchpin: an atomic
    compare-and-swap on the stored version counter, which is what makes
    claims exclusive and zombie writes rejectable without any
    backend-specific claim logic.
    """

    @abstractmethod
    def insert(self, job: Job) -> None:
        """Store a fresh record; raises ``ValueError`` if the id exists."""

    @abstractmethod
    def read(self, job_id: str) -> Job:
        """The current stored copy; raises :class:`UnknownJobError`."""

    @abstractmethod
    def replace(self, job: Job, expected_version: int) -> None:
        """Atomic CAS: store ``job`` iff the stored version equals
        ``expected_version``; raises :class:`StaleJobError` on a
        mismatch and :class:`UnknownJobError` for a vanished job."""

    @abstractmethod
    def scan(self) -> list[Job]:
        """Every stored record (order unspecified; the repository sorts)."""

    @abstractmethod
    def remove(self, job_id: str) -> None:
        """Remove a record; raises :class:`UnknownJobError`."""

    @property
    def cache_dir(self) -> str | None:
        """The queue's shared on-disk solve cache directory, if durable."""
        return None

    def close(self) -> None:
        """Release backend resources (connections, fds).  Idempotent."""


class MemoryJobStore(JobStore):
    """In-process store: a dict behind a lock.

    Supports multi-threaded workers (the HTTP front end executes jobs on
    threads) but naturally not multi-process ones -- that is what the
    durable backends are for.
    """

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()

    def insert(self, job: Job) -> None:
        with self._lock:
            if job.job_id in self._jobs:
                raise ValueError(f"job {job.job_id} already exists")
            self._jobs[job.job_id] = job

    def read(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def replace(self, job: Job, expected_version: int) -> None:
        with self._lock:
            current = self._jobs.get(job.job_id)
            if current is None:
                raise UnknownJobError(job.job_id)
            if current.version != expected_version:
                raise StaleJobError(
                    f"job {job.job_id}: update based on version "
                    f"{expected_version}, stored is {current.version}"
                )
            self._jobs[job.job_id] = job

    def scan(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def remove(self, job_id: str) -> None:
        with self._lock:
            if self._jobs.pop(job_id, None) is None:
                raise UnknownJobError(job_id)


class FileJobStore(JobStore):
    """On-disk store: one atomic JSON document per job.

    Layout under ``root``::

        root/jobs/<job_id>.json   the job record
        root/jobs/<job_id>.lock   short-lived read-modify-write lock
        root/cache/               the queue's shared solve cache
                                  (see JobService.cache_dir)

    Durability model: records are written with the ``tmp.<pid>`` +
    ``os.replace`` idiom, so readers always see a complete document.
    Locks only serialize the read-modify-write window; acquisition backs
    off exponentially with jitter and gives up with
    :class:`LockContentionError` after ``lock_acquire_timeout_ms``; a
    lock file left behind by a killed process is broken once older than
    ``lock_timeout_ms``.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        lock_timeout_ms: float = 5_000.0,
        lock_acquire_timeout_ms: float = 30_000.0,
    ):
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        if lock_timeout_ms <= 0:
            raise ValueError(
                f"lock_timeout_ms must be positive, got {lock_timeout_ms}"
            )
        if lock_acquire_timeout_ms <= 0:
            raise ValueError(
                "lock_acquire_timeout_ms must be positive, got "
                f"{lock_acquire_timeout_ms}"
            )
        self.lock_timeout_ms = float(lock_timeout_ms)
        self.lock_acquire_timeout_ms = float(lock_acquire_timeout_ms)

    @property
    def cache_dir(self) -> str:
        return str(self.root / "cache")

    # ------------------------------------------------------------------
    # Record I/O
    # ------------------------------------------------------------------
    def _path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def _read(self, path: Path) -> Job:
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise UnknownJobError(path.stem) from None
        return Job.from_dict(payload)

    def _write(self, job: Job) -> None:
        path = self._path(job.job_id)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        if _fault_fire("disk_full"):
            raise OSError(
                errno.ENOSPC, "No space left on device (injected)", str(tmp)
            )
        tmp.write_text(json.dumps(job.as_dict(), indent=2) + "\n")
        if _fault_fire("torn_write"):
            # Simulated death between the tmp write and the replace: the
            # durable record keeps its old value, the tmp file is the
            # only debris -- exactly what a SIGKILL here leaves behind.
            raise InjectedKill(
                f"torn_write: killed before os.replace of {path.name}"
            )
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Per-job RMW lock
    # ------------------------------------------------------------------
    def _lock_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.lock"

    def _acquire_lock(self, job_id: str) -> bool:
        lock = self._lock_path(job_id)
        try:
            fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            # Break locks orphaned by a kill inside the RMW window.
            try:
                age_ms = now_ms() - lock.stat().st_mtime * 1000.0
            except FileNotFoundError:
                return False  # holder just released; retry next attempt
            if age_ms > self.lock_timeout_ms:
                try:
                    lock.unlink()
                except FileNotFoundError:
                    pass
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{os.getpid()}\n")
        return True

    def _release_lock(self, job_id: str) -> None:
        if _fault_fire("lock_orphan"):
            return  # holder "died" before unlinking; broken by age later
        try:
            self._lock_path(job_id).unlink()
        except FileNotFoundError:
            pass

    def _with_lock(self, job_id: str) -> _JobLock:
        """Context manager: acquire the RMW lock with backoff + timeout."""
        return _JobLock(self, job_id, self.lock_acquire_timeout_ms)

    # ------------------------------------------------------------------
    # JobStore API
    # ------------------------------------------------------------------
    def insert(self, job: Job) -> None:
        path = self._path(job.job_id)
        if path.exists():
            raise ValueError(f"job {job.job_id} already exists")
        self._write(job)

    def read(self, job_id: str) -> Job:
        return self._read(self._path(job_id))

    def replace(self, job: Job, expected_version: int) -> None:
        with self._with_lock(job.job_id):
            current = self.read(job.job_id)
            if current.version != expected_version:
                raise StaleJobError(
                    f"job {job.job_id}: update based on version "
                    f"{expected_version}, stored is {current.version}"
                )
            self._write(job)

    def scan(self) -> list[Job]:
        jobs = []
        for path in self.jobs_dir.glob("*.json"):
            try:
                jobs.append(self._read(path))
            except UnknownJobError:
                continue  # deleted between glob and read
        return jobs

    def remove(self, job_id: str) -> None:
        try:
            self._path(job_id).unlink()
        except FileNotFoundError:
            raise UnknownJobError(job_id) from None
        self._release_lock(job_id)


class _JobLock:
    """``with``-style wrapper around the store's per-job RMW lock.

    Acquisition retries with jittered exponential backoff (2 ms doubling
    to a 100 ms cap, each wait scaled by a uniform jitter so colliding
    claimants desynchronize) under an overall deadline; exceeding it
    raises :class:`LockContentionError` instead of hanging the caller.
    """

    def __init__(self, store: FileJobStore, job_id: str, acquire_timeout_ms: float):
        self.store = store
        self.job_id = job_id
        self.acquire_timeout_ms = acquire_timeout_ms

    def __enter__(self) -> None:
        deadline_ms = now_ms() + self.acquire_timeout_ms
        delay_ms = 2.0
        while True:
            if self.store._acquire_lock(self.job_id):
                return
            remaining_ms = deadline_ms - now_ms()
            if remaining_ms <= 0:
                raise LockContentionError(
                    f"could not lock job {self.job_id} within "
                    f"{self.acquire_timeout_ms:g} ms; a dead holder is "
                    f"broken after {self.store.lock_timeout_ms:g} ms, so "
                    "persistent contention means live writers are racing"
                )
            # Full jitter: sleep U(0.5, 1) * delay, capped by the deadline.
            sleep_ms = min(delay_ms * random.uniform(0.5, 1.0), remaining_ms)
            time.sleep(sleep_ms / 1000.0)
            delay_ms = min(delay_ms * 2.0, 100.0)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None and issubclass(exc_type, InjectedKill):
            return  # simulated death: the lock stays orphaned, broken by age
        self.store._release_lock(self.job_id)
