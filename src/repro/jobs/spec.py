"""What a job runs: the serializable job specification.

A :class:`JobSpec` pins everything needed to execute a job on *any*
worker at *any* time: the figure to reproduce, the fast flag, and the
full :class:`~repro.engine.EngineConfig` the sweep runs under.  The
engine section is the same frozen config object the blocking CLI builds,
so a job's result is byte-identical to the blocking path by
construction -- there is no second code path to drift.

Specs are content-addressable: :meth:`JobSpec.fingerprint` hashes the
canonical JSON form, which is how the service recognizes an already
COMPLETED job for the same work (``reuse_completed=True``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.engine.config import EngineConfig

__all__ = ["JOB_KINDS", "JobSpec"]

#: Job kinds the worker knows how to execute.  ``"figure"`` runs one
#: entry of :data:`repro.experiments.figures.ALL_FIGURES` through
#: :func:`repro.experiments.runner.execute_figure`.
JOB_KINDS = ("figure",)


@dataclass(frozen=True)
class JobSpec:
    """One executable unit of work, fully serializable.

    Attributes
    ----------
    figure:
        Figure id (``"fig9"``, ...); validated against the registry at
        execution time, not here -- a repository must be able to load
        records submitted by a newer code version.
    fast:
        Use the reduced sample size for the trace-based Figure 1.
    engine:
        The :class:`EngineConfig` the worker solves under.  For durable
        repositories the service points ``cache_dir`` into the queue
        directory, which is what makes a requeued job resume instead of
        restart: the dead worker's completed solves are already on disk.
    kind:
        One of :data:`JOB_KINDS`.
    """

    figure: str
    fast: bool = False
    engine: EngineConfig = field(default_factory=EngineConfig)
    kind: str = "figure"

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"kind must be one of {JOB_KINDS}, got {self.kind!r}")
        if not self.figure:
            raise ValueError("figure must be non-empty")
        if not isinstance(self.engine, EngineConfig):
            raise TypeError(
                f"engine must be an EngineConfig, got {type(self.engine).__name__}"
            )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "figure": self.figure,
            "fast": self.fast,
            "engine": self.engine.as_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> JobSpec:
        data = dict(payload)
        data["engine"] = EngineConfig.from_dict(data.get("engine", {}))
        return cls(**data)

    def fingerprint(self) -> str:
        """Content hash of the canonical JSON form (spec identity)."""
        canonical = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
