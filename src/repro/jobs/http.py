"""A thin stdlib HTTP/JSON front end over the job queue.

``python -m repro.jobs serve --dir DIR --port P`` exposes the same
operations as the CLI -- nothing here computes anything; every route is
a direct call into :class:`~repro.jobs.service.JobService` /
:class:`~repro.jobs.admin.AdminService`, so HTTP submissions produce
records (and results) identical to CLI ones.  Workers are *not* started
by the server; run them separately (or rely on ``--workers N`` of the
CLI ``serve`` command, which threads MemoryJobRepository workers only).

Routes::

    POST   /jobs                 {"figure": "fig9", "fast": false,
                                  "engine": {...EngineConfig...}} -> job
    GET    /jobs[?state=pending] -> [job, ...]
    GET    /jobs/<id>            -> job
    GET    /jobs/<id>/result     -> text/plain rendered figure
    POST   /jobs/<id>/cancel     -> job
    GET    /admin/stats          -> queue summary
    POST   /admin/purge          -> {"purged": [ids]}
    GET    /admin/quarantine     -> [job, ...] (QUARANTINED shelf)
    POST   /admin/quarantine/<id>/release -> job (back to PENDING)

Deliberately no TLS, no auth: this is a localhost experiment harness,
not a deployment surface.
"""

from __future__ import annotations

import json
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.engine.config import EngineConfig
from repro.jobs.admin import AdminService
from repro.jobs.lifecycle import STATES, InvalidTransition
from repro.jobs.repository import JobRepository, UnknownJobError
from repro.jobs.service import JobNotFinished, JobService

__all__ = ["JobApiHandler", "make_server"]


class JobApiHandler(BaseHTTPRequestHandler):
    """Request handler bound to the server's repository (see make_server)."""

    server_version = "repro-jobs/1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def service(self) -> JobService:
        return self.server.job_service  # type: ignore[attr-defined]

    @property
    def admin(self) -> AdminService:
        return self.server.admin_service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 -- stdlib signature
        if getattr(self.server, "quiet", False):
            return
        super().log_message(format, *args)

    def _send_json(self, payload, status: HTTPStatus = HTTPStatus.OK) -> None:
        body = json.dumps(payload, indent=2).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: HTTPStatus = HTTPStatus.OK) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: HTTPStatus, message: str) -> None:
        self._send_json({"error": message}, status)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length == 0:
            return {}
        return json.loads(self.rfile.read(length))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 -- stdlib handler name
        parsed = urlparse(self.path)
        parts = [p for p in parsed.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                query = parse_qs(parsed.query)
                state = query.get("state", [None])[0]
                if state is not None and state not in STATES:
                    return self._send_error_json(
                        HTTPStatus.BAD_REQUEST,
                        f"state must be one of {STATES}, got {state!r}",
                    )
                jobs = self.service.list_jobs(state=state)
                return self._send_json([j.as_dict() for j in jobs])
            if len(parts) == 2 and parts[0] == "jobs":
                return self._send_json(self.service.status(parts[1]).as_dict())
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                return self._send_text(self.service.result(parts[1]))
            if parts == ["admin", "stats"]:
                return self._send_json(self.admin.stats())
            if parts == ["admin", "quarantine"]:
                return self._send_json(
                    [j.as_dict() for j in self.admin.quarantine_list()]
                )
        except UnknownJobError as exc:
            return self._send_error_json(HTTPStatus.NOT_FOUND, str(exc))
        except JobNotFinished as exc:
            return self._send_error_json(HTTPStatus.CONFLICT, str(exc))
        self._send_error_json(HTTPStatus.NOT_FOUND, f"no route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 -- stdlib handler name
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            if parts == ["jobs"]:
                return self._submit()
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                return self._send_json(self.service.cancel(parts[1]).as_dict())
            if parts == ["admin", "purge"]:
                return self._send_json({"purged": self.admin.purge()})
            if (
                len(parts) == 4
                and parts[:2] == ["admin", "quarantine"]
                and parts[3] == "release"
            ):
                return self._send_json(
                    self.admin.quarantine_release(parts[2]).as_dict()
                )
        except UnknownJobError as exc:
            return self._send_error_json(HTTPStatus.NOT_FOUND, str(exc))
        except InvalidTransition as exc:
            return self._send_error_json(HTTPStatus.CONFLICT, str(exc))
        except (ValueError, TypeError) as exc:
            return self._send_error_json(HTTPStatus.BAD_REQUEST, str(exc))
        self._send_error_json(HTTPStatus.NOT_FOUND, f"no route {self.path!r}")

    def _submit(self) -> None:
        payload = self._read_body()
        figure = payload.get("figure")
        if not figure:
            return self._send_error_json(
                HTTPStatus.BAD_REQUEST, "body must include a 'figure' id"
            )
        config = None
        if "engine" in payload:
            config = EngineConfig.from_dict(payload["engine"])
        job = self.service.submit_figure(
            figure,
            fast=bool(payload.get("fast", False)),
            config=config,
            max_retries=int(payload.get("max_retries", 3)),
            reuse_completed=bool(payload.get("reuse_completed", False)),
        )
        self._send_json(job.as_dict(), HTTPStatus.CREATED)


def make_server(
    repository: JobRepository,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-serve HTTP server bound to ``repository``.

    ``port=0`` picks a free port (tests); read it back from
    ``server.server_address``.  Call ``serve_forever()`` to run,
    ``shutdown()`` from another thread to stop.
    """
    server = ThreadingHTTPServer((host, port), JobApiHandler)
    server.job_service = JobService(repository)  # type: ignore[attr-defined]
    server.admin_service = AdminService(repository)  # type: ignore[attr-defined]
    server.quiet = quiet  # type: ignore[attr-defined]
    return server
