"""The job aggregate and its lifecycle state machine.

A :class:`Job` is a durable record of one figure/sweep run: its spec,
where it is in the PENDING -> RUNNING -> terminal lifecycle, which worker
holds it, how far along it is, and -- once terminal -- its rendered
result or failure.  Like every model object in this repository the
aggregate is a frozen dataclass: state changes produce evolved copies via
the ``_to(...)`` transition helper, which is the *only* place a state
field changes, so the legality check in :data:`TRANSITIONS` cannot be
bypassed.

Two non-obvious edges:

* ``RUNNING -> PENDING``: a *requeue*.  A worker that dies (SIGKILL,
  OOM) leaves its job RUNNING forever; the sweeper
  (:mod:`repro.jobs.sweeper`) detects the dead owner and requeues the
  job for the next worker, bumping :attr:`Job.retries` and appending an
  :class:`Attempt` forensics record.  Requeues are bounded by
  :attr:`Job.max_retries`.
* ``RUNNING -> QUARANTINED`` and ``QUARANTINED -> PENDING``: the
  poison-job circuit breaker.  A job whose workers *die* (not fail, not
  cancel) on consecutive attempts is pulled off the queue with its
  forensics attached instead of burning the retry budget and FAILing
  ambiguously; an operator inspects the attempts and deliberately
  releases it back to PENDING (``admin quarantine-release``) -- the one
  exit a terminal state has, and it only moves through the ``_to()``
  gate like everything else.

Ownership is fenced by :attr:`Job.epoch`: every claim stamps a
monotonically increasing epoch (the repository bumps it atomically with
the claim), so a zombie worker -- one whose job was requeued under it
and claimed by someone else -- holds a provably stale lease and has its
late writes rejected with ``StaleJobError`` instead of clobbering the
new owner.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field, replace

from repro.jobs.spec import JobSpec

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "FAILED",
    "PENDING",
    "QUARANTINED",
    "RUNNING",
    "STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "Attempt",
    "InvalidTransition",
    "Job",
]

PENDING = "pending"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"
QUARANTINED = "quarantined"

#: Every lifecycle state, in rough lifecycle order.
STATES = (PENDING, RUNNING, COMPLETED, FAILED, CANCELLED, QUARANTINED)

#: States a job never leaves on its own.  QUARANTINED is terminal for
#: workers and waiters, but an operator can deliberately release it.
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED, QUARANTINED})

#: The legal state machine.  ``RUNNING -> PENDING`` is the requeue edge
#: (dead worker detected by the sweeper); ``RUNNING -> QUARANTINED`` is
#: the poison-job circuit breaker and ``QUARANTINED -> PENDING`` its
#: operator-driven release; the other terminal states have no exits.
TRANSITIONS: dict[str, frozenset[str]] = {
    PENDING: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({PENDING, COMPLETED, FAILED, CANCELLED, QUARANTINED}),
    COMPLETED: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
    QUARANTINED: frozenset({PENDING}),
}

#: Attempt outcomes a job's forensics log can record.
ATTEMPT_OUTCOMES = ("worker-died", "failed", "released")


class InvalidTransition(RuntimeError):
    """An illegal lifecycle transition was attempted (e.g. COMPLETED -> RUNNING)."""


@dataclass(frozen=True)
class Attempt:
    """Forensics for one finished execution attempt.

    Appended when an attempt ends without completing the job: the
    sweeper records ``"worker-died"`` when it requeues (or quarantines)
    an orphaned job, the worker records ``"failed"`` when it requeues
    after an exception, and an operator release appends ``"released"``
    (which also resets the consecutive-death streak the circuit breaker
    counts).
    """

    epoch: int
    worker_id: str | None
    started_ms: float | None
    ended_ms: float
    outcome: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.outcome not in ATTEMPT_OUTCOMES:
            raise ValueError(
                f"outcome must be one of {ATTEMPT_OUTCOMES}, got {self.outcome!r}"
            )

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "worker_id": self.worker_id,
            "started_ms": self.started_ms,
            "ended_ms": self.ended_ms,
            "outcome": self.outcome,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> Attempt:
        return cls(**payload)


@dataclass(frozen=True)
class Job:
    """One durable background job.

    Attributes
    ----------
    job_id:
        Stable identifier, assigned at submission.
    spec:
        What to run (:class:`~repro.jobs.spec.JobSpec`).
    state:
        Current lifecycle state, one of :data:`STATES`.
    created_ms / updated_ms / started_ms / finished_ms:
        Wall-clock timestamps (milliseconds since the epoch); ``started``
        is the first claim, ``finished`` the terminal transition.
    worker_id:
        ``"<pid>@<host>"`` of the claiming worker while RUNNING.
    epoch:
        Fencing token: monotonically increasing lease generation,
        stamped by the repository on every claim.  A worker whose copy
        carries an older epoch than the stored record provably lost
        ownership; its writes are rejected with ``StaleJobError``.
    heartbeat_ms:
        Last sign of life from the claiming worker; the sweeper requeues
        RUNNING jobs whose heartbeat goes stale.
    points_done / points_total:
        Sweep progress as reported by the engine's progress hook
        (``points_total`` is 0 until the worker announces it).
    retries:
        Requeues consumed (dead-worker requeues and failure retries
        share the one budget); bounded by ``max_retries``.
    attempts:
        Forensics log of finished attempts (:class:`Attempt`); the
        circuit breaker counts the trailing run of ``"worker-died"``
        entries.
    cancel_requested:
        Cooperative-cancellation flag: set by :meth:`cancel_requested_now`
        while RUNNING, observed by the worker's cancel hook, which stops
        the sweep and records the CANCELLED terminal state.
    result_text / error:
        Terminal payload: the rendered figure for COMPLETED, the failure
        diagnostic for FAILED/QUARANTINED.
    version:
        Optimistic-concurrency counter; every repository update bumps it
        and rejects writers holding a stale copy.
    """

    job_id: str
    spec: JobSpec
    state: str = PENDING
    created_ms: float = 0.0
    updated_ms: float = 0.0
    started_ms: float | None = None
    finished_ms: float | None = None
    worker_id: str | None = None
    epoch: int = 0
    heartbeat_ms: float | None = None
    points_done: int = 0
    points_total: int = 0
    retries: int = 0
    max_retries: int = 3
    attempts: tuple[Attempt, ...] = field(default=())
    cancel_requested: bool = False
    result_text: str | None = None
    error: str | None = None
    version: int = 0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.state not in STATES:
            raise ValueError(f"state must be one of {STATES}, got {self.state!r}")
        if self.points_done < 0 or self.points_total < 0:
            raise ValueError("progress counters must be >= 0")
        if self.retries < 0 or self.max_retries < 0:
            raise ValueError("retries/max_retries must be >= 0")
        if self.epoch < 0:
            raise ValueError("epoch must be >= 0")

    # ------------------------------------------------------------------
    # Transitions (the only way state changes)
    # ------------------------------------------------------------------
    def _to(self, state: str, now_ms: float, **changes) -> Job:
        """Evolved copy in ``state``; raises on an illegal transition."""
        if state not in TRANSITIONS[self.state]:
            raise InvalidTransition(
                f"job {self.job_id}: illegal transition "
                f"{self.state} -> {state}"
            )
        return replace(self, state=state, updated_ms=now_ms, **changes)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def consecutive_worker_deaths(self) -> int:
        """Trailing run of ``"worker-died"`` attempts (circuit-breaker input)."""
        deaths = 0
        for attempt in reversed(self.attempts):
            if attempt.outcome != "worker-died":
                break
            deaths += 1
        return deaths

    def claimed(self, worker_id: str, now_ms: float, epoch: int | None = None) -> Job:
        """PENDING -> RUNNING: a worker takes ownership.

        ``epoch`` is the fencing token of the new lease; the repository
        stamps ``stored.epoch + 1`` atomically with the claim.  ``None``
        keeps the current epoch (unit tests driving the aggregate
        directly).
        """
        return self._to(
            RUNNING,
            now_ms,
            worker_id=worker_id,
            epoch=self.epoch if epoch is None else epoch,
            heartbeat_ms=now_ms,
            started_ms=self.started_ms if self.started_ms is not None else now_ms,
        )

    def progressed(self, points: int, now_ms: float) -> Job:
        """More sweep points done; doubles as a heartbeat."""
        if self.state != RUNNING:
            raise InvalidTransition(
                f"job {self.job_id}: progress reported in state {self.state}"
            )
        return replace(
            self,
            points_done=self.points_done + points,
            heartbeat_ms=now_ms,
            updated_ms=now_ms,
        )

    def with_total(self, points_total: int, now_ms: float) -> Job:
        """The worker announces how many points the job will solve."""
        if self.state != RUNNING:
            raise InvalidTransition(
                f"job {self.job_id}: total announced in state {self.state}"
            )
        return replace(
            self, points_total=points_total, heartbeat_ms=now_ms, updated_ms=now_ms
        )

    def heartbeat(self, now_ms: float) -> Job:
        """Sign of life without progress (long single solves)."""
        if self.state != RUNNING:
            raise InvalidTransition(
                f"job {self.job_id}: heartbeat in state {self.state}"
            )
        return replace(self, heartbeat_ms=now_ms, updated_ms=now_ms)

    def completed(self, result_text: str, now_ms: float) -> Job:
        """RUNNING -> COMPLETED with the rendered result."""
        return self._to(
            COMPLETED, now_ms, result_text=result_text, finished_ms=now_ms
        )

    def failed(self, error: str, now_ms: float) -> Job:
        """RUNNING -> FAILED with the diagnostic."""
        return self._to(FAILED, now_ms, error=error, finished_ms=now_ms)

    def cancelled(self, now_ms: float) -> Job:
        """PENDING/RUNNING -> CANCELLED (cooperative or pre-start)."""
        return self._to(CANCELLED, now_ms, finished_ms=now_ms)

    def _attempt(self, outcome: str, now_ms: float, detail: str) -> Attempt:
        """Forensics record for the attempt that just ended."""
        return Attempt(
            epoch=self.epoch,
            worker_id=self.worker_id,
            started_ms=self.started_ms,
            ended_ms=now_ms,
            outcome=outcome,
            detail=detail,
        )

    def requeued(
        self, now_ms: float, outcome: str = "worker-died", detail: str = ""
    ) -> Job:
        """RUNNING -> PENDING: the attempt ended without a result.

        Consumes one retry, appends an :class:`Attempt` forensics record
        (``outcome`` is ``"worker-died"`` for sweeper requeues,
        ``"failed"`` for worker-side exception requeues), and resets
        progress (the next worker replays the sweep -- completed solves
        are served from the shared disk cache, so no work is lost, only
        re-counted).

        Raises
        ------
        InvalidTransition
            When the retry budget is exhausted; the caller should record
            FAILED instead (see the sweeper).
        """
        if self.retries >= self.max_retries:
            raise InvalidTransition(
                f"job {self.job_id}: requeue budget exhausted "
                f"({self.retries}/{self.max_retries})"
            )
        return self._to(
            PENDING,
            now_ms,
            worker_id=None,
            heartbeat_ms=None,
            points_done=0,
            retries=self.retries + 1,
            attempts=self.attempts + (self._attempt(outcome, now_ms, detail),),
        )

    def quarantined(self, now_ms: float, detail: str = "") -> Job:
        """RUNNING -> QUARANTINED: the poison-job circuit breaker trips.

        The final ``"worker-died"`` attempt is appended so the forensics
        log covers every death, including the one that tripped the
        breaker.
        """
        attempts = self.attempts + (
            self._attempt("worker-died", now_ms, detail),
        )
        deaths = 0
        for attempt in reversed(attempts):
            if attempt.outcome != "worker-died":
                break
            deaths += 1
        error = f"quarantined after {deaths} consecutive worker deaths"
        if detail:
            error = f"{error}: {detail}"
        return self._to(
            QUARANTINED,
            now_ms,
            worker_id=None,
            heartbeat_ms=None,
            finished_ms=now_ms,
            attempts=attempts,
            error=error,
        )

    def released(self, now_ms: float) -> Job:
        """QUARANTINED -> PENDING: an operator deliberately re-admits the job.

        The retry budget is refreshed and a ``"released"`` attempt marker
        breaks the consecutive-death streak, so the circuit breaker
        counts only deaths *after* the release.  The forensics history
        is preserved.
        """
        return self._to(
            PENDING,
            now_ms,
            worker_id=None,
            heartbeat_ms=None,
            points_done=0,
            retries=0,
            finished_ms=None,
            error=None,
            attempts=self.attempts
            + (self._attempt("released", now_ms, "operator release"),),
        )

    def cancel_requested_now(self, now_ms: float) -> Job:
        """Set the cooperative-cancellation flag (state unchanged)."""
        if self.is_terminal:
            raise InvalidTransition(
                f"job {self.job_id}: cancel requested in terminal state "
                f"{self.state}"
            )
        return replace(self, cancel_requested=True, updated_ms=now_ms)

    # ------------------------------------------------------------------
    # Construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def new(
        cls, spec: JobSpec, now_ms: float, max_retries: int = 3
    ) -> Job:
        """A fresh PENDING job with a generated id."""
        return cls(
            job_id=uuid.uuid4().hex[:12],
            spec=spec,
            created_ms=now_ms,
            updated_ms=now_ms,
            max_retries=max_retries,
        )

    def as_dict(self) -> dict:
        """JSON-serializable representation (round-trips via from_dict)."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.as_dict(),
            "state": self.state,
            "created_ms": self.created_ms,
            "updated_ms": self.updated_ms,
            "started_ms": self.started_ms,
            "finished_ms": self.finished_ms,
            "worker_id": self.worker_id,
            "epoch": self.epoch,
            "heartbeat_ms": self.heartbeat_ms,
            "points_done": self.points_done,
            "points_total": self.points_total,
            "retries": self.retries,
            "max_retries": self.max_retries,
            "attempts": [a.as_dict() for a in self.attempts],
            "cancel_requested": self.cancel_requested,
            "result_text": self.result_text,
            "error": self.error,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> Job:
        data = dict(payload)
        data["spec"] = JobSpec.from_dict(data["spec"])
        # Records written before the fencing/forensics fields existed
        # load with their defaults (epoch 0, no attempts).
        data["attempts"] = tuple(
            Attempt.from_dict(a) for a in data.get("attempts", ())
        )
        return cls(**data)
