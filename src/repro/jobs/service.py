"""The submission-side facade: submit, status, result, cancel, wait.

:class:`JobService` is the one API the CLI, the HTTP front end and
``python -m repro.experiments --via-jobs`` all drive.  It owns the two
policies that make the queue durable *and* deterministic:

* every figure job submitted against a :class:`FileJobRepository` gets
  its engine cache pointed at the queue's shared ``cache/`` directory
  (unless the caller configured a cache explicitly), so a requeued job
  resumes through the dead worker's completed solves;
* ``reuse_completed=True`` recognizes an already COMPLETED job with the
  same spec fingerprint and returns it instead of re-submitting -- the
  job-queue form of the blocking CLI's ``--resume``.
"""

from __future__ import annotations

import time

from repro.engine.config import EngineConfig
from repro.jobs.lifecycle import (
    COMPLETED,
    PENDING,
    RUNNING,
    TERMINAL_STATES,
    Job,
)
from repro.jobs.repository import JobRepository, StaleJobError, now_ms
from repro.jobs.spec import JobSpec

__all__ = ["JobNotFinished", "JobService"]


class JobNotFinished(RuntimeError):
    """The result of a job that has not COMPLETED was requested."""


class JobService:
    """Submission-side operations over a :class:`JobRepository`."""

    def __init__(self, repository: JobRepository) -> None:
        self.repository = repository

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_figure(
        self,
        figure: str,
        *,
        fast: bool = False,
        config: EngineConfig | None = None,
        max_retries: int = 3,
        reuse_completed: bool = False,
    ) -> Job:
        """Submit one figure job; returns the stored (or reused) record."""
        spec = JobSpec(
            figure=figure,
            fast=fast,
            engine=self._effective_config(config),
        )
        if reuse_completed:
            fingerprint = spec.fingerprint()
            for job in self.repository.list_jobs(state=COMPLETED):
                if job.spec.fingerprint() == fingerprint:
                    return job
        return self.repository.submit(
            Job.new(spec, now_ms(), max_retries=max_retries)
        )

    def _effective_config(self, config: EngineConfig | None) -> EngineConfig:
        """The engine config a job is stored with.

        A durable repository contributes its shared solve-cache
        directory when the caller did not configure a cache -- that
        cache is what turns a requeue into a resume.
        """
        config = config if config is not None else EngineConfig()
        cache_dir = getattr(self.repository, "cache_dir", None)
        if cache_dir is not None and config.cache_dir is None and not config.cache_memory:
            config = config.replace(cache_dir=cache_dir)
        return config

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def status(self, job_id: str) -> Job:
        """The current record (raises UnknownJobError)."""
        return self.repository.get(job_id)

    def result(self, job_id: str) -> str:
        """The rendered result of a COMPLETED job.

        Raises
        ------
        JobNotFinished
            While the job is still PENDING/RUNNING, or when it ended
            FAILED/CANCELLED (the message says which, with the error).
        """
        job = self.repository.get(job_id)
        if job.state != COMPLETED:
            detail = f": {job.error}" if job.error else ""
            raise JobNotFinished(
                f"job {job_id} is {job.state}, not {COMPLETED}{detail}"
            )
        return job.result_text or ""

    def wait(
        self,
        job_id: str,
        timeout_ms: float = 300_000.0,
        poll_interval_ms: float = 100.0,
    ) -> Job:
        """Poll until the job is terminal; returns the terminal record.

        Raises
        ------
        TimeoutError
            When ``timeout_ms`` elapses first (the job keeps running).
        """
        deadline_ms = now_ms() + timeout_ms
        while True:
            job = self.repository.get(job_id)
            if job.is_terminal:
                return job
            if now_ms() >= deadline_ms:
                raise TimeoutError(
                    f"job {job_id} still {job.state} after {timeout_ms:g} ms"
                )
            time.sleep(poll_interval_ms / 1000.0)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediately when PENDING, cooperatively when RUNNING.

        A PENDING job is transitioned to CANCELLED on the spot.  A
        RUNNING job gets its ``cancel_requested`` flag set; the owning
        worker observes it at the next sweep point, stops, and records
        the CANCELLED terminal state.  Terminal jobs are returned
        unchanged (cancellation is idempotent).
        """
        while True:
            job = self.repository.get(job_id)
            if job.is_terminal:
                return job
            try:
                if job.state == PENDING:
                    return self.repository.update(job.cancelled(now_ms()))
                if job.state == RUNNING:
                    return self.repository.update(
                        job.cancel_requested_now(now_ms())
                    )
            except StaleJobError:
                continue  # raced with the worker; re-read and retry
            raise AssertionError(  # pragma: no cover - states are exhaustive
                f"unhandled state {job.state!r}"
            )

    # ------------------------------------------------------------------
    # Listing
    # ------------------------------------------------------------------
    def list_jobs(self, state: str | None = None) -> list[Job]:
        return self.repository.list_jobs(state=state)

    @staticmethod
    def is_terminal_state(state: str) -> bool:
        return state in TERMINAL_STATES
