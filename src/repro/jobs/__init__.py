"""Durable background jobs over the sweep engine ("solver as a service").

The paper this repository reproduces studies systems that interleave
foreground work with background jobs; this package gives the repository
the same shape.  A figure/sweep run becomes a durable *job* record --
submitted to a queue, executed by a worker through the ordinary
:class:`~repro.engine.SweepEngine`, observable while it runs, and
recoverable when the worker dies:

* :mod:`~repro.jobs.lifecycle` -- the :class:`Job` aggregate and its
  PENDING -> RUNNING -> COMPLETED/FAILED/CANCELLED state machine
  (including the RUNNING -> PENDING requeue edge, the fencing
  :attr:`Job.epoch`, and the QUARANTINED poison-job circuit breaker with
  its operator-release exit).
* :mod:`~repro.jobs.spec` -- :class:`JobSpec`, the serializable work
  description (figure + :class:`~repro.engine.EngineConfig`).
* :mod:`~repro.jobs.store` / :mod:`~repro.jobs.sqlite_store` -- the
  pluggable :class:`JobStore` backend seam: in-memory, crash-safe
  JSON-dir, and WAL-mode SQLite with single-statement compare-and-swap.
* :mod:`~repro.jobs.repository` -- :class:`JobRepository`, the queue
  protocol (optimistic concurrency, fencing epochs, claims) generic
  over any store; :func:`open_repository` picks a backend.
* :mod:`~repro.jobs.worker` -- :class:`JobWorker`, claim + execute with
  progress/heartbeat and cooperative cancellation.
* :mod:`~repro.jobs.sweeper` -- :class:`StaleJobSweeper`, requeues jobs
  whose worker was SIGKILLed and quarantines jobs that keep killing
  their workers.
* :mod:`~repro.jobs.service` / :mod:`~repro.jobs.admin` -- the
  submission-side and queue-wide facades the CLI
  (``python -m repro.jobs``) and the HTTP front end
  (:mod:`~repro.jobs.http`) both drive.
* :mod:`~repro.jobs.soak` -- the deterministic chaos soak harness:
  seeded submit/worker/sweeper interleavings with injected kills,
  checked against the queue's safety invariants.

The durability guarantee worth remembering: a job whose worker dies
mid-sweep is requeued and *resumes* through the queue's shared solve
cache, finishing byte-identical to an uninterrupted run -- and the dead
worker, should it turn out to be merely asleep, is fenced off by its
stale lease epoch rather than allowed to clobber the new owner.
"""

from repro.jobs.admin import AdminService
from repro.jobs.lifecycle import (
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    QUARANTINED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    Attempt,
    InvalidTransition,
    Job,
)
from repro.jobs.repository import (
    FileJobRepository,
    JobRepository,
    LockContentionError,
    MemoryJobRepository,
    SqliteJobRepository,
    StaleJobError,
    UnknownJobError,
    open_repository,
)
from repro.jobs.service import JobNotFinished, JobService
from repro.jobs.spec import JobSpec
from repro.jobs.sqlite_store import SqliteJobStore
from repro.jobs.store import FileJobStore, JobStore, MemoryJobStore
from repro.jobs.sweeper import StaleJobSweeper, SweeperStats
from repro.jobs.worker import JobWorker, default_worker_id

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "FAILED",
    "PENDING",
    "QUARANTINED",
    "RUNNING",
    "STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "AdminService",
    "Attempt",
    "FileJobRepository",
    "FileJobStore",
    "InvalidTransition",
    "Job",
    "JobNotFinished",
    "JobRepository",
    "JobService",
    "JobSpec",
    "JobStore",
    "JobWorker",
    "LockContentionError",
    "MemoryJobRepository",
    "MemoryJobStore",
    "SqliteJobRepository",
    "SqliteJobStore",
    "StaleJobError",
    "StaleJobSweeper",
    "SweeperStats",
    "UnknownJobError",
    "default_worker_id",
    "open_repository",
]
