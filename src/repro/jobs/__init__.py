"""Durable background jobs over the sweep engine ("solver as a service").

The paper this repository reproduces studies systems that interleave
foreground work with background jobs; this package gives the repository
the same shape.  A figure/sweep run becomes a durable *job* record --
submitted to a queue, executed by a worker through the ordinary
:class:`~repro.engine.SweepEngine`, observable while it runs, and
recoverable when the worker dies:

* :mod:`~repro.jobs.lifecycle` -- the :class:`Job` aggregate and its
  PENDING -> RUNNING -> COMPLETED/FAILED/CANCELLED state machine
  (including the RUNNING -> PENDING requeue edge).
* :mod:`~repro.jobs.spec` -- :class:`JobSpec`, the serializable work
  description (figure + :class:`~repro.engine.EngineConfig`).
* :mod:`~repro.jobs.repository` -- pluggable storage:
  :class:`MemoryJobRepository` and the crash-safe, multi-process
  :class:`FileJobRepository`.
* :mod:`~repro.jobs.worker` -- :class:`JobWorker`, claim + execute with
  progress/heartbeat and cooperative cancellation.
* :mod:`~repro.jobs.sweeper` -- :class:`StaleJobSweeper`, requeues jobs
  whose worker was SIGKILLed.
* :mod:`~repro.jobs.service` / :mod:`~repro.jobs.admin` -- the
  submission-side and queue-wide facades the CLI
  (``python -m repro.jobs``) and the HTTP front end
  (:mod:`~repro.jobs.http`) both drive.

The durability guarantee worth remembering: a job whose worker dies
mid-sweep is requeued and *resumes* through the queue's shared solve
cache, finishing byte-identical to an uninterrupted run.
"""

from repro.jobs.admin import AdminService
from repro.jobs.lifecycle import (
    CANCELLED,
    COMPLETED,
    FAILED,
    PENDING,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    TRANSITIONS,
    InvalidTransition,
    Job,
)
from repro.jobs.repository import (
    FileJobRepository,
    JobRepository,
    MemoryJobRepository,
    StaleJobError,
    UnknownJobError,
)
from repro.jobs.service import JobNotFinished, JobService
from repro.jobs.spec import JobSpec
from repro.jobs.sweeper import StaleJobSweeper
from repro.jobs.worker import JobWorker, default_worker_id

__all__ = [
    "CANCELLED",
    "COMPLETED",
    "FAILED",
    "PENDING",
    "RUNNING",
    "STATES",
    "TERMINAL_STATES",
    "TRANSITIONS",
    "AdminService",
    "FileJobRepository",
    "InvalidTransition",
    "Job",
    "JobNotFinished",
    "JobRepository",
    "JobService",
    "JobSpec",
    "JobWorker",
    "MemoryJobRepository",
    "StaleJobError",
    "StaleJobSweeper",
    "UnknownJobError",
    "default_worker_id",
]
