"""SQLite :class:`~repro.jobs.store.JobStore` backend.

One ``jobs`` table in a WAL-mode database: WAL gives crash-atomic
commits (a reader never sees a half-written record; a process killed
mid-transaction rolls back on the next open) and lets readers proceed
while a writer commits.  The optimistic-concurrency primitive is a
*single-statement* compare-and-swap::

    UPDATE jobs SET ... WHERE job_id = ? AND version = ?

whose rowcount tells the writer whether it held the current version --
no read-modify-write window, hence no per-job lock files at all.
Cross-process serialization is SQLite's own (``busy_timeout`` retries
writer collisions); in-process threads share one connection behind an
``RLock``.

Chaos hooks: the write paths carry the same ``disk_full`` / ``torn_write``
fault points as the JSON-dir backend; ``torn_write`` fires *inside* the
transaction, before commit, so the rollback must preserve the old record
-- which is exactly what the soak harness asserts.
"""

from __future__ import annotations

import errno
import json
import os
import sqlite3
import threading
from pathlib import Path

from repro.faults import InjectedKill, fire as _fault_fire
from repro.jobs.lifecycle import Job
from repro.jobs.store import JobStore, StaleJobError, UnknownJobError

__all__ = ["SqliteJobStore"]

_SCHEMA = """\
CREATE TABLE IF NOT EXISTS jobs (
    job_id     TEXT PRIMARY KEY,
    version    INTEGER NOT NULL,
    state      TEXT NOT NULL,
    created_ms REAL NOT NULL,
    payload    TEXT NOT NULL
)
"""


class SqliteJobStore(JobStore):
    """Durable job records in a single WAL-mode SQLite database.

    Layout under ``root``::

        root/jobs.sqlite3   the database (plus SQLite's -wal/-shm)
        root/cache/         the queue's shared solve cache

    The full record is stored as its JSON document in ``payload``;
    ``version``/``state``/``created_ms`` are mirrored into columns so the
    CAS and the claim scan are single indexed statements.
    """

    def __init__(self, root: str | os.PathLike, busy_timeout_ms: float = 10_000.0):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.db_path = self.root / "jobs.sqlite3"
        if busy_timeout_ms <= 0:
            raise ValueError(
                f"busy_timeout_ms must be positive, got {busy_timeout_ms}"
            )
        self.busy_timeout_ms = float(busy_timeout_ms)
        # One connection shared by all threads of this process, guarded
        # by an RLock (sqlite3 objects are not thread-safe by default);
        # cross-process writers are serialized by SQLite itself.
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.db_path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout_ms)}")
        with self._lock, self._conn:
            self._conn.execute(_SCHEMA)

    @property
    def cache_dir(self) -> str:
        return str(self.root / "cache")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    # Fault hooks shared by both write statements
    # ------------------------------------------------------------------
    @staticmethod
    def _pre_write_faults() -> None:
        """Fires ``disk_full`` before any byte lands."""
        if _fault_fire("disk_full"):
            raise OSError(
                errno.ENOSPC, "database or disk is full (injected)"
            )

    @staticmethod
    def _in_transaction_faults(job_id: str) -> None:
        """Fires ``torn_write`` inside the open transaction.

        The ``with conn`` block rolls the statement back, so the durable
        record keeps its pre-transaction value -- the SQLite analogue of
        dying between the ``tmp.<pid>`` write and ``os.replace``.
        """
        if _fault_fire("torn_write"):
            raise InjectedKill(
                f"torn_write: killed inside transaction for job {job_id}"
            )

    # ------------------------------------------------------------------
    # JobStore API
    # ------------------------------------------------------------------
    def insert(self, job: Job) -> None:
        self._pre_write_faults()
        try:
            with self._lock, self._conn:
                self._conn.execute(
                    "INSERT INTO jobs (job_id, version, state, created_ms, payload) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        job.job_id,
                        job.version,
                        job.state,
                        job.created_ms,
                        json.dumps(job.as_dict()),
                    ),
                )
                self._in_transaction_faults(job.job_id)
        except sqlite3.IntegrityError:
            raise ValueError(f"job {job.job_id} already exists") from None

    def read(self, job_id: str) -> Job:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise UnknownJobError(job_id)
        return Job.from_dict(json.loads(row[0]))

    def replace(self, job: Job, expected_version: int) -> None:
        self._pre_write_faults()
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET version = ?, state = ?, payload = ? "
                "WHERE job_id = ? AND version = ?",
                (
                    job.version,
                    job.state,
                    json.dumps(job.as_dict()),
                    job.job_id,
                    expected_version,
                ),
            )
            self._in_transaction_faults(job.job_id)
            if cursor.rowcount == 0:
                # Lost the CAS: distinguish a vanished job from a stale
                # copy inside the same transaction for a coherent error.
                row = self._conn.execute(
                    "SELECT version FROM jobs WHERE job_id = ?",
                    (job.job_id,),
                ).fetchone()
                if row is None:
                    raise UnknownJobError(job.job_id)
                raise StaleJobError(
                    f"job {job.job_id}: update based on version "
                    f"{expected_version}, stored is {row[0]}"
                )

    def scan(self) -> list[Job]:
        with self._lock:
            rows = self._conn.execute("SELECT payload FROM jobs").fetchall()
        return [Job.from_dict(json.loads(row[0])) for row in rows]

    def remove(self, job_id: str) -> None:
        self._pre_write_faults()
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM jobs WHERE job_id = ?", (job_id,)
            )
            if cursor.rowcount == 0:
                raise UnknownJobError(job_id)
