"""Command-line front end of the background-job queue.

Everything a deployment needs, one subcommand each::

    python -m repro.jobs submit fig9 --dir Q          # enqueue
    python -m repro.jobs worker --dir Q               # drain the queue
    python -m repro.jobs status <id> --dir Q          # one record
    python -m repro.jobs watch <id> --dir Q           # poll to terminal
    python -m repro.jobs result <id> --dir Q          # rendered figure
    python -m repro.jobs cancel <id> --dir Q          # cooperative cancel
    python -m repro.jobs sweep --dir Q                # requeue dead workers' jobs
    python -m repro.jobs list --dir Q [--state s]     # queue listing
    python -m repro.jobs admin stats|purge --dir Q    # queue-wide ops
    python -m repro.jobs admin quarantine-list --dir Q
    python -m repro.jobs admin quarantine-release <id> --dir Q
    python -m repro.jobs serve --dir Q --port 8642    # HTTP front end

The ``--dir`` directory is the durable queue; every command operating
on the same directory sees the same jobs, across processes and across
crashes.  ``--backend`` picks the store (``file`` JSON-dir, ``sqlite``
WAL database, or the default ``auto``, which re-opens whatever backend
already lives in the directory).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.engine.config import EngineConfig
from repro.jobs.admin import AdminService
from repro.jobs.lifecycle import COMPLETED, STATES
from repro.jobs.lifecycle import InvalidTransition
from repro.jobs.repository import UnknownJobError, open_repository
from repro.jobs.service import JobNotFinished, JobService
from repro.jobs.sweeper import StaleJobSweeper
from repro.jobs.worker import JobWorker

__all__ = ["main"]


def _summary_line(job) -> str:
    progress = f"{job.points_done}"
    if job.points_total:
        progress += f"/{job.points_total}"
    return (
        f"{job.job_id}  {job.state:<9}  {job.spec.figure:<6}  "
        f"points={progress}  retries={job.retries}"
        + (f"  worker={job.worker_id}" if job.worker_id else "")
        + (f"  error={job.error}" if job.error else "")
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.jobs",
        description="Durable background-job queue over the sweep engine.",
    )
    parser.add_argument(
        "--dir",
        dest="queue_dir",
        default="jobs-queue",
        metavar="DIR",
        help="queue directory (default ./jobs-queue); all commands "
        "against the same DIR share one durable queue",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "file", "sqlite"),
        default="auto",
        help="job-store backend (default auto: re-open whatever backend "
        "already lives in DIR, JSON-dir for a fresh queue)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_submit = sub.add_parser("submit", help="enqueue a figure job")
    p_submit.add_argument("figure", help="figure id (fig1..fig13)")
    p_submit.add_argument("--fast", action="store_true")
    p_submit.add_argument(
        "--engine-json",
        default=None,
        metavar="JSON",
        help="EngineConfig as a JSON object (default: queue-cached defaults)",
    )
    p_submit.add_argument("--max-retries", type=int, default=3)
    p_submit.add_argument(
        "--reuse-completed",
        action="store_true",
        help="return an existing COMPLETED job with the same spec "
        "instead of enqueueing a duplicate",
    )

    p_status = sub.add_parser("status", help="print one job record as JSON")
    p_status.add_argument("job_id")

    p_watch = sub.add_parser("watch", help="poll a job until it is terminal")
    p_watch.add_argument("job_id")
    p_watch.add_argument(
        "--timeout-ms", type=float, default=600_000.0, metavar="MS"
    )

    p_result = sub.add_parser("result", help="print a COMPLETED job's result")
    p_result.add_argument("job_id")

    p_cancel = sub.add_parser("cancel", help="cancel a job (cooperative)")
    p_cancel.add_argument("job_id")

    p_worker = sub.add_parser("worker", help="claim and execute queued jobs")
    p_worker.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="stop after N jobs (default: drain the queue)",
    )

    p_sweep = sub.add_parser(
        "sweep", help="requeue RUNNING jobs whose worker died"
    )
    p_sweep.add_argument(
        "--lease-ms",
        type=float,
        default=30_000.0,
        metavar="MS",
        help="heartbeat age after which a RUNNING job is stale",
    )

    p_list = sub.add_parser("list", help="list jobs, oldest first")
    p_list.add_argument("--state", choices=STATES, default=None)

    p_admin = sub.add_parser("admin", help="queue-wide operations")
    p_admin.add_argument(
        "operation",
        choices=(
            "stats",
            "purge",
            "cancel-all",
            "quarantine-list",
            "quarantine-release",
        ),
    )
    p_admin.add_argument(
        "job_id",
        nargs="?",
        default=None,
        help="job id (quarantine-release only)",
    )
    p_admin.add_argument(
        "--include-quarantined",
        action="store_true",
        help="let purge remove QUARANTINED records too",
    )

    p_serve = sub.add_parser("serve", help="run the HTTP/JSON front end")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)

    args = parser.parse_args(argv)
    repository = open_repository(args.queue_dir, backend=args.backend)
    service = JobService(repository)

    try:
        if args.command == "submit":
            config = None
            if args.engine_json is not None:
                config = EngineConfig.from_dict(json.loads(args.engine_json))
            job = service.submit_figure(
                args.figure,
                fast=args.fast,
                config=config,
                max_retries=args.max_retries,
                reuse_completed=args.reuse_completed,
            )
            print(job.job_id)
            return 0
        if args.command == "status":
            print(json.dumps(service.status(args.job_id).as_dict(), indent=2))
            return 0
        if args.command == "watch":
            job = service.wait(args.job_id, timeout_ms=args.timeout_ms)
            print(_summary_line(job))
            return 0 if job.state == COMPLETED else 1
        if args.command == "result":
            print(service.result(args.job_id))
            return 0
        if args.command == "cancel":
            print(_summary_line(service.cancel(args.job_id)))
            return 0
        if args.command == "worker":
            worker = JobWorker(repository)
            done = worker.run_until_drained(max_jobs=args.max_jobs)
            for job in done:
                print(_summary_line(job))
            return 0 if all(j.state == COMPLETED for j in done) else 1
        if args.command == "sweep":
            sweeper = StaleJobSweeper(repository, lease_ms=args.lease_ms)
            for job in sweeper.sweep():
                print(_summary_line(job))
            return 0
        if args.command == "list":
            for job in service.list_jobs(state=args.state):
                print(_summary_line(job))
            return 0
        if args.command == "admin":
            admin = AdminService(repository)
            if args.operation == "stats":
                print(json.dumps(admin.stats(), indent=2))
            elif args.operation == "purge":
                for job_id in admin.purge(
                    include_quarantined=args.include_quarantined
                ):
                    print(job_id)
            elif args.operation == "quarantine-list":
                for job in admin.quarantine_list():
                    print(_summary_line(job))
            elif args.operation == "quarantine-release":
                if not args.job_id:
                    print(
                        "quarantine-release needs a job id", file=sys.stderr
                    )
                    return 2
                print(_summary_line(admin.quarantine_release(args.job_id)))
            else:
                for job in admin.cancel_all():
                    print(_summary_line(job))
            return 0
        if args.command == "serve":
            from repro.jobs.http import make_server

            server = make_server(repository, host=args.host, port=args.port)
            host, port = server.server_address[:2]
            print(f"serving job queue {args.queue_dir!r} on {host}:{port}")
            try:
                server.serve_forever()
            except KeyboardInterrupt:  # pragma: no cover - interactive
                pass
            finally:
                server.server_close()
            return 0
    except UnknownJobError as exc:
        print(f"unknown job: {exc}", file=sys.stderr)
        return 2
    except (JobNotFinished, TimeoutError) as exc:
        print(str(exc), file=sys.stderr)
        return 3
    except InvalidTransition as exc:
        print(str(exc), file=sys.stderr)
        return 4
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
