"""Boundary linear system of a QBD.

Given R, the unknowns are the boundary vector ``pi_0`` and the first
repeating-level vector ``pi_1``; they satisfy

* ``pi_0 B00 + pi_1 B10 = 0``
* ``pi_0 B01 + pi_1 (A1 + R A2) = 0``
* ``pi_0 e + pi_1 (I - R)^{-1} e = 1``

(the higher levels follow geometrically and their balance equations hold by
construction of R).
"""

from __future__ import annotations

import numpy as np

from repro.faults import fire as _fault_fire
from repro.qbd.structure import QBDProcess

__all__ = ["solve_boundary"]


def solve_boundary(
    qbd: QBDProcess, r: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Solve for ``(pi_0, pi_1)`` given the rate matrix ``R``.

    Returns
    -------
    tuple
        ``pi_0`` of length ``qbd.boundary_size`` and ``pi_1`` of length
        ``qbd.phase_count``, jointly normalized with the geometric tail.
    """
    if _fault_fire("singular_boundary"):
        # An exactly singular boundary system would surface here as a
        # LinAlgError before the lstsq fallback could run; injecting the
        # same exception exercises the escalation path deterministically.
        raise np.linalg.LinAlgError(
            "boundary system is singular (injected fault singular_boundary)"
        )
    n_b, m = qbd.boundary_size, qbd.phase_count
    r = np.asarray(r, dtype=float)
    if r.shape != (m, m):
        raise ValueError(f"R must have shape {(m, m)}, got {r.shape}")

    # Balance equations, written column-wise: unknown row vector
    # x = [pi_0, pi_1] satisfies x M = 0 with
    #     M = [[B00, B01], [B10, A1 + R A2]].
    big = np.zeros((n_b + m, n_b + m))
    big[:n_b, :n_b] = qbd.b00
    big[:n_b, n_b:] = qbd.b01
    big[n_b:, :n_b] = qbd.b10
    big[n_b:, n_b:] = qbd.a1 + r @ qbd.a2

    tail_weights = np.linalg.solve(np.eye(m) - r, np.ones(m))
    norm_row = np.concatenate([np.ones(n_b), tail_weights])

    a = big.T.copy()
    # Replace the balance equation with the largest diagonal magnitude --
    # dropping one equation keeps the system determined and well scaled.
    drop = int(np.argmax(np.abs(np.diag(big))))
    a[drop, :] = norm_row
    rhs = np.zeros(n_b + m)
    rhs[drop] = 1.0
    try:
        x = np.linalg.solve(a, rhs)
    except np.linalg.LinAlgError:
        x, *_ = np.linalg.lstsq(a, rhs, rcond=None)

    if np.any(x < -1e-8 * max(1.0, float(np.abs(x).max()))):
        raise ValueError(
            f"boundary solve produced a significantly negative probability "
            f"({x.min():.3g}); the QBD blocks are likely inconsistent"
        )
    x = np.clip(x, 0.0, None)
    total = x[:n_b].sum() + x[n_b:] @ tail_weights
    x /= total
    return x[:n_b], x[n_b:]
