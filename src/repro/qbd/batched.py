"""Batched matrix-geometric kernel: many same-shape QBDs in one solve.

Every figure of the paper is a *sweep*: 40+ nearby models with identical
block shapes, each previously paying its own Python-level logarithmic
reduction loop, boundary solve and ``(I-R)^{-1}`` extraction.  This module
stacks ``N`` block triples ``(A0, A1, A2)`` along a leading axis and runs
the whole pipeline with batched ``np.linalg`` primitives (``solve``,
``inv`` and ``@`` all accept ``(N, m, m)`` operands), so the per-point
Python overhead is paid once per *batch* instead of once per *point*:

* **stacked logarithmic reduction** with a per-item convergence mask --
  finished items leave the active set and stop contributing work;
* **per-item fallback** -- items that overflow, go singular or fail the
  minimality certificate are re-solved through the scalar
  :func:`~repro.qbd.rmatrix.r_matrix` path (which also performs the full
  drift/stability diagnosis and raises its usual errors);
* **batched boundary solve** and **stacked level-sum extraction**
  (``pi_1 (I-R)^{-1}``, ``pi_1 (I-R)^{-2}``) feeding the per-item
  :class:`~repro.qbd.stationary.QBDStationaryDistribution` objects.

The batched path skips the a-priori (networkx-based) drift check of the
scalar path: an unstable item cannot converge to a stochastic ``G``, so it
lands in the scalar fallback, which performs the drift diagnosis and
raises the same ``ValueError`` a sequential solve would.  Accepted items
still pass the per-item ``sp(R) < 1`` postcondition, so batched results
agree with sequential results to solver tolerance (in practice bitwise,
since the stacked BLAS calls perform the identical per-slice operations).
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, replace
from typing import Literal, overload

import numpy as np

from repro._types import ArrayLike, FloatArray
from repro.contracts.checks import (
    check_r_matrix,
    contracts_enabled,
)
from repro.faults import fire as _fault_fire
from repro.contracts.errors import ContractViolation
from repro.qbd.boundary import solve_boundary
from repro.qbd.rmatrix import (
    DEFAULT_TOL,
    QBDConvergenceError,
    SolveStats,
    r_matrix,
)
from repro.qbd.stationary import QBDStationaryDistribution
from repro.qbd.structure import QBDProcess
from repro.qbd.truncated import solve_qbd_truncated

__all__ = [
    "BatchedItemFailure",
    "BatchedSolveReport",
    "batched_r_matrix",
    "solve_qbd_batched",
]

#: Doubling-step budget of the stacked logarithmic reduction; matches the
#: scalar path (quadratic convergence: the paper's chains need ~6-8).
LOGRED_MAX_ITER = 64

#: Algorithm name recorded in per-item :class:`SolveStats`.
BATCHED_ALGORITHM = "batched-logarithmic-reduction"

#: ``on_error`` modes accepted by the batched entry points; "skip" and
#: "collect" both isolate failures here (warning emission vs. silent
#: collection is the engine's concern).
_ON_ERROR_MODES = ("raise", "skip", "collect")


def _validate_on_error(value: str) -> str:
    if value not in _ON_ERROR_MODES:
        raise ValueError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class BatchedItemFailure:
    """One isolated item failure inside a batched kernel call.

    Attributes
    ----------
    index:
        Position of the failed item in the call's input order (remapped to
        the original model order by :func:`repro.core.batched.solve_models_batched`).
    stage:
        ``"precheck"`` (unstable before any solving), ``"r-matrix"``,
        ``"boundary"`` or ``"truncated"`` (the escalation rung itself
        failed).
    error_type / message:
        Exception class name and ``str(exception)``.
    contract_violation:
        True when the underlying exception was a
        :class:`~repro.contracts.ContractViolation`.
    attempts:
        Escalation rungs tried before the item was given up.
    error:
        The exception object itself, kept so ``on_error="raise"`` callers
        re-raise the original error after a failed escalation.
    """

    index: int
    stage: str
    error_type: str
    message: str
    contract_violation: bool = False
    attempts: tuple[str, ...] = ()
    error: BaseException | None = None


def _item_failure(
    index: int,
    stage: str,
    exc: BaseException,
    attempts: tuple[str, ...] = (),
) -> BatchedItemFailure:
    return BatchedItemFailure(
        index=index,
        stage=stage,
        error_type=type(exc).__name__,
        message=str(exc),
        contract_violation=isinstance(exc, ContractViolation),
        attempts=tuple(attempts) + tuple(getattr(exc, "attempts", ())),
        error=exc,
    )


@dataclass(frozen=True)
class BatchedSolveReport:
    """Diagnostics of one batched kernel call (one shape group).

    Attributes
    ----------
    batch_size:
        Number of stacked items.
    phase_count:
        Phase count ``m`` of every item.
    iterations:
        Masked doubling steps summed over items: converged items stop
        counting, so this is the work actually performed, not
        ``batch_size * max_iterations``.
    max_iterations:
        Doubling steps until the slowest item converged.
    wall_time_ms:
        Wall-clock time of the whole kernel call (including fallbacks).
    fallbacks:
        Indices of the items re-solved through the scalar path.
    boundary_size:
        Boundary size ``n_b`` of every item (0 when unknown, e.g. a bare
        :func:`batched_r_matrix` call that never sees boundary blocks).
    failures:
        Per-item failures isolated by ``on_error="skip"|"collect"``, in
        input order; empty in ``"raise"`` mode (the first failure
        propagated instead).
    """

    batch_size: int
    phase_count: int
    iterations: int
    max_iterations: int
    wall_time_ms: float
    fallbacks: tuple[int, ...] = ()
    boundary_size: int = 0
    failures: tuple[BatchedItemFailure, ...] = ()

    def __post_init__(self) -> None:
        if self.batch_size < 0:
            raise ValueError(f"batch_size must be >= 0, got {self.batch_size}")
        if self.phase_count < 0:
            raise ValueError(
                f"phase_count must be >= 0, got {self.phase_count}"
            )

    def as_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "batch_size": self.batch_size,
            "phase_count": self.phase_count,
            "iterations": self.iterations,
            "max_iterations": self.max_iterations,
            "wall_time_ms": self.wall_time_ms,
            "fallbacks": list(self.fallbacks),
            "boundary_size": self.boundary_size,
            "failures": [
                {
                    "index": f.index,
                    "stage": f.stage,
                    "error_type": f.error_type,
                    "message": f.message,
                    "contract_violation": f.contract_violation,
                    "attempts": list(f.attempts),
                }
                for f in self.failures
            ],
        }


def _as_block_stack(a: ArrayLike, name: str) -> FloatArray:
    arr = np.asarray(a, dtype=float)
    if arr.ndim != 3 or arr.shape[1] != arr.shape[2]:
        raise ValueError(
            f"{name} must be a stack of square blocks with shape (N, m, m), "
            f"got {arr.shape}"
        )
    return arr


def _check_block_stack(
    a0: FloatArray, a1: FloatArray, a2: FloatArray, atol: float = 1e-8
) -> None:
    """Vectorized per-item precondition of the repeating blocks.

    The stacked equivalent of the scalar path's ``check_nonnegative(A0)``,
    ``check_nonnegative(A2)`` and ``check_generator(A0+A1+A2)``: one pass
    over each stack, localizing the offending item only on failure.
    """
    for name, stack in (("A0", a0), ("A2", a2)):
        mins = stack.min(axis=(1, 2)) if stack.size else np.zeros(0)
        if stack.size and float(mins.min()) < -atol:
            item = int(np.argmin(mins))
            raise ContractViolation(
                "check_nonnegative",
                f"{name}[{item}]",
                f"negative entry {mins[item]:.6g}",
            )
    s = a0 + a1 + a2
    if not s.size:
        return
    row_sums = s.sum(axis=2)
    if not np.isfinite(row_sums).all():
        item = int(np.argmax(~np.isfinite(row_sums).all(axis=1)))
        raise ContractViolation(
            "check_generator", f"A0+A1+A2[{item}]", "non-finite entry"
        )
    diag = np.diagonal(s, axis1=1, axis2=2)
    scale = np.maximum(np.abs(diag).max(axis=1), 1.0)
    off = s.copy()
    idx = np.arange(s.shape[1])
    off[:, idx, idx] = 0.0
    off_min = off.min(axis=(1, 2))
    if np.any(off_min < -atol * scale):
        item = int(np.argmax(off_min < -atol * scale))
        raise ContractViolation(
            "check_generator",
            f"A0+A1+A2[{item}]",
            f"negative off-diagonal rate {off_min[item]:.6g}",
        )
    worst = np.abs(row_sums).max(axis=1)
    if np.any(worst > atol * scale * s.shape[1]):
        item = int(np.argmax(worst / scale))
        raise ContractViolation(
            "check_generator",
            f"A0+A1+A2[{item}]",
            f"row sums reach {worst[item]:.6g}, expected 0",
        )


def _stack_inv(stack: FloatArray) -> tuple[FloatArray, np.ndarray]:
    """Batched inverse with per-item failure: ``(result, ok_mask)``.

    ``np.linalg.inv`` on a stack raises when *any* item is singular
    without saying which; on that path each item is inverted individually
    and the singular ones are reported through ``ok_mask`` (their result
    slots hold NaN) instead of failing the whole batch.
    """
    try:
        with np.errstate(over="ignore", invalid="ignore"):
            return np.linalg.inv(stack), np.ones(stack.shape[0], dtype=bool)
    except np.linalg.LinAlgError:
        out = np.full_like(stack, np.nan)
        ok = np.zeros(stack.shape[0], dtype=bool)
        for i in range(stack.shape[0]):
            try:
                out[i] = np.linalg.inv(stack[i])
                ok[i] = True
            except np.linalg.LinAlgError:
                pass
        return out, ok


def _batched_logred_g(
    a0: FloatArray, a1: FloatArray, a2: FloatArray, tol: float, max_iter: int
) -> tuple[FloatArray, np.ndarray, np.ndarray]:
    """Masked stacked logarithmic reduction: ``(G, iterations, failed)``.

    Performs, per active item, exactly the update sequence of the scalar
    :func:`~repro.qbd.rmatrix._logred_impl`; items leave the active set as
    soon as their ``G`` row sums reach 1 within ``tol`` (converged) or
    their iterates go non-finite / singular (failed -> scalar fallback).
    """
    n, m = a0.shape[0], a0.shape[1]
    iterations = np.zeros(n, dtype=int)
    failed = np.zeros(n, dtype=bool)
    # Per-item fault check mirroring the scalar _logred_impl hook: a fired
    # item is demoted to the scalar fallback, which re-checks the fault
    # (and performs the full escalation) exactly as a sequential solve.
    for i in range(n):
        if _fault_fire("logred_overflow"):
            failed[i] = True
    eye = np.eye(m)
    ones = np.ones(m)
    inv_neg_a1, ok = _stack_inv(-a1)
    failed |= ~ok
    with np.errstate(over="ignore", invalid="ignore"):
        h = inv_neg_a1 @ a0
        low = inv_neg_a1 @ a2
        g = low.copy()
        t = h.copy()
        finite = np.isfinite(g).all(axis=(1, 2)) & np.isfinite(h).all(
            axis=(1, 2)
        )
    failed |= ~finite
    active = ~failed
    with np.errstate(over="ignore", invalid="ignore"):
        for _ in range(max_iter):
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            hh, ll, tt = h[idx], low[idx], t[idx]
            u = hh @ ll + ll @ hh
            m_inv, ok = _stack_inv(eye - u)
            h_next = m_inv @ (hh @ hh)
            low_next = m_inv @ (ll @ ll)
            g_next = g[idx] + tt @ low_next
            t_next = tt @ h_next
            h[idx], low[idx], g[idx], t[idx] = h_next, low_next, g_next, t_next
            iterations[idx] += 1
            finite = ok & np.isfinite(g_next).all(axis=(1, 2))
            newly_failed = idx[~finite]
            failed[newly_failed] = True
            active[newly_failed] = False
            live = idx[finite]
            residual = np.abs(ones - g[live] @ ones).max(axis=1)
            active[live[residual < tol]] = False
    # Items still active after the budget did not converge (unstable or
    # irreducibility trouble) -- hand them to the scalar path for the
    # full diagnosis.
    failed |= active
    return g, iterations, failed


@overload
def batched_r_matrix(
    a0: ArrayLike,
    a1: ArrayLike,
    a2: ArrayLike,
    tol: float = ...,
    blocks_validated: bool = ...,
    return_stats: Literal[False] = ...,
    on_error: str = ...,
) -> FloatArray: ...


@overload
def batched_r_matrix(
    a0: ArrayLike,
    a1: ArrayLike,
    a2: ArrayLike,
    tol: float = ...,
    blocks_validated: bool = ...,
    *,
    return_stats: Literal[True],
    on_error: str = ...,
) -> tuple[FloatArray, list[SolveStats], BatchedSolveReport]: ...


def batched_r_matrix(
    a0: ArrayLike,
    a1: ArrayLike,
    a2: ArrayLike,
    tol: float = DEFAULT_TOL,
    blocks_validated: bool = False,
    return_stats: bool = False,
    on_error: str = "raise",
) -> FloatArray | tuple[FloatArray, list[SolveStats], BatchedSolveReport]:
    """Minimal R matrices of ``N`` stacked QBD block triples.

    The stacked equivalent of :func:`repro.qbd.rmatrix.r_matrix` with
    ``algorithm="logarithmic-reduction"``: one masked batched iteration
    solves every item at once, and items the kernel cannot finish
    (overflow, singular step, failed minimality certificate, no
    convergence) are transparently re-solved through the scalar path --
    including its drift/stability diagnosis and error reporting, so an
    unstable item raises the same ``ValueError`` it would sequentially.

    Parameters
    ----------
    a0, a1, a2:
        Block stacks of shape ``(N, m, m)``.
    tol:
        Convergence tolerance of the underlying iterations.
    blocks_validated:
        Caller's certificate that every item already passed the
        generator/row-split precondition and is frozen read-only (true for
        blocks taken off :class:`~repro.qbd.structure.QBDProcess`
        instances).  Never pass True for hand-assembled stacks.
    return_stats:
        When True, return ``(R, stats, report)`` where ``stats`` is a list
        of per-item :class:`~repro.qbd.rmatrix.SolveStats` and ``report``
        the group-level :class:`BatchedSolveReport`.
    on_error:
        ``"raise"`` (default) propagates the first scalar-fallback
        failure; ``"skip"``/``"collect"`` isolate it instead -- the item's
        ``R`` slot stays zero, and the failure lands in
        ``report.failures`` (pass ``return_stats=True`` to see it).

    Returns
    -------
    ``(N, m, m)`` stack of R matrices (read-only), optionally with stats.
    """
    _validate_on_error(on_error)
    a0 = _as_block_stack(a0, "A0")
    a1 = _as_block_stack(a1, "A1")
    a2 = _as_block_stack(a2, "A2")
    if not (a0.shape == a1.shape == a2.shape):
        raise ValueError(
            f"block stacks must share one shape, got {a0.shape}, "
            f"{a1.shape}, {a2.shape}"
        )
    n, m = a0.shape[0], a0.shape[1]
    if not blocks_validated and contracts_enabled():
        _check_block_stack(a0, a1, a2)
    start = time.perf_counter()
    g, iterations, failed = _batched_logred_g(a0, a1, a2, tol, LOGRED_MAX_ITER)
    r = np.zeros_like(a0)
    ok = np.flatnonzero(~failed)
    if ok.size:
        with np.errstate(over="ignore", invalid="ignore"):
            u = a1[ok] + a0[ok] @ g[ok]
            inv_neg_u, inv_ok = _stack_inv(-u)
            r_ok = a0[ok] @ inv_neg_u
        # A converged G whose U factor is singular, a significantly
        # negative R entry, or a failed minimality certificate all demote
        # the item to the scalar path rather than failing the batch.
        finite = inv_ok & np.isfinite(r_ok).all(axis=(1, 2))
        bad_sign = np.zeros(ok.size, dtype=bool)
        bad_sign[finite] = r_ok[finite].min(axis=(1, 2)) < -1e-9
        accepted = finite & ~bad_sign
        r[ok[accepted]] = np.clip(r_ok[accepted], 0.0, None)
        failed[ok[~accepted]] = True
    if contracts_enabled():
        for i in np.flatnonzero(~failed):
            try:
                check_r_matrix(r[i], f"R[{i}]")
            except ContractViolation:  # noqa: RL014 -- not dropped: the item is demoted to the scalar path below, which re-solves and re-raises the full diagnostics
                failed[i] = True
    fallback_stats: dict[int, SolveStats] = {}
    failures: list[BatchedItemFailure] = []
    for i in np.flatnonzero(failed):
        try:
            result = r_matrix(
                a0[i],
                a1[i],
                a2[i],
                tol=tol,
                return_stats=True,
                blocks_validated=blocks_validated,
            )
        except (QBDConvergenceError, ValueError, ContractViolation) as exc:
            # The scalar diagnosis raised: unstable item (ValueError),
            # exhausted ladder (QBDConvergenceError) or violated block
            # precondition (ContractViolation).  In isolation mode the
            # item's R slot stays zero and downstream stages must skip it.
            if on_error == "raise":
                raise
            failures.append(
                _item_failure(int(i), "r-matrix", exc, (BATCHED_ALGORITHM,))
            )
            continue
        r[i], stats = result
        fallback_stats[i] = replace(
            stats,
            iterations=stats.iterations + int(iterations[i]),
            fallbacks=(BATCHED_ALGORITHM, *stats.fallbacks),
        )
    r.setflags(write=False)
    wall_time_ms = (time.perf_counter() - start) * 1e3
    if not return_stats:
        return r
    # One stacked eigenvalue call covers every item's reported sp(R).
    radii = (
        np.abs(np.linalg.eigvals(r)).max(axis=1) if n else np.zeros(0)
    )
    per_item_ms = wall_time_ms / n if n else 0.0
    stats_list = [
        fallback_stats[i]
        if i in fallback_stats
        else SolveStats(
            algorithm=BATCHED_ALGORITHM,
            iterations=int(iterations[i]),
            wall_time_ms=per_item_ms,
            spectral_radius=float(radii[i]),
            warm_started=False,
        )
        for i in range(n)
    ]
    report = BatchedSolveReport(
        batch_size=n,
        phase_count=m,
        iterations=int(iterations.sum()),
        max_iterations=int(iterations.max()) if n else 0,
        wall_time_ms=wall_time_ms,
        fallbacks=tuple(int(i) for i in np.flatnonzero(failed)),
        failures=tuple(failures),
    )
    return r, stats_list, report


def _batched_boundary(
    qbds: list[QBDProcess], r: FloatArray, on_error: str = "raise"
) -> tuple[FloatArray, FloatArray, list[tuple[int, BaseException]]]:
    """Stacked boundary solve: ``(pi_0, pi_1, failed)`` -- jointly normalized.

    Per item this assembles and solves exactly the linear system of
    :func:`repro.qbd.boundary.solve_boundary`; items whose batched solve
    goes singular or significantly negative are re-solved (and error
    checked) through the scalar path.  In isolation mode a scalar re-solve
    that *raises* lands in the returned ``failed`` list (its ``pi`` rows
    are NaN) instead of propagating.
    """
    n = len(qbds)
    n_b, m = qbds[0].boundary_size, qbds[0].phase_count
    # Per-item fault check mirroring the scalar solve_boundary hook; a
    # fired item fails with the same injected LinAlgError a sequential
    # solve would raise.
    failed_items: list[tuple[int, BaseException]] = []
    injected = np.zeros(n, dtype=bool)
    for i in range(n):
        if _fault_fire("singular_boundary"):
            exc: BaseException = np.linalg.LinAlgError(
                "boundary system is singular (injected fault "
                "singular_boundary)"
            )
            if on_error == "raise":
                raise exc
            injected[i] = True
            failed_items.append((i, exc))
    big = np.zeros((n, n_b + m, n_b + m))
    big[:, :n_b, :n_b] = np.stack([q.b00 for q in qbds])
    big[:, :n_b, n_b:] = np.stack([q.b01 for q in qbds])
    big[:, n_b:, :n_b] = np.stack([q.b10 for q in qbds])
    a1 = np.stack([q.a1 for q in qbds])
    a2 = np.stack([q.a2 for q in qbds])
    big[:, n_b:, n_b:] = a1 + r @ a2

    eye = np.eye(m)
    # RHS kept explicitly 3-D: stacked-solve vector dispatch differs
    # between numpy 1.x and 2.x for a 2-D RHS.
    tail_weights = np.linalg.solve(eye - r, np.ones((n, m, 1)))[..., 0]
    norm_rows = np.concatenate([np.ones((n, n_b)), tail_weights], axis=1)

    a = big.transpose(0, 2, 1).copy()
    diag = np.diagonal(big, axis1=1, axis2=2)
    drop = np.argmax(np.abs(diag), axis=1)
    rows = np.arange(n)
    a[rows, drop, :] = norm_rows
    rhs = np.zeros((n, n_b + m))
    rhs[rows, drop] = 1.0

    pi0 = np.empty((n, n_b))
    pi1 = np.empty((n, m))
    try:
        x = np.linalg.solve(a, rhs[..., None])[..., 0]
        scalar_items = np.flatnonzero(
            (~np.isfinite(x).all(axis=1))
            | (
                x.min(axis=1)
                < -1e-8 * np.maximum(1.0, np.abs(x).max(axis=1))
            )
        )
    except np.linalg.LinAlgError:
        x = None
        scalar_items = rows
    inj_idx = np.flatnonzero(injected)
    scalar_items = np.setdiff1d(scalar_items, inj_idx)
    pi0[inj_idx] = np.nan
    pi1[inj_idx] = np.nan
    if x is not None:
        good = np.setdiff1d(rows, np.union1d(scalar_items, inj_idx))
        xg = np.clip(x[good], 0.0, None)
        total = xg[:, :n_b].sum(axis=1) + np.einsum(
            "ni,ni->n", xg[:, n_b:], tail_weights[good]
        )
        xg /= total[:, None]
        pi0[good] = xg[:, :n_b]
        pi1[good] = xg[:, n_b:]
    for i in scalar_items:
        try:
            pi0[i], pi1[i] = solve_boundary(qbds[i], r[i])
        except (np.linalg.LinAlgError, ValueError) as exc:
            if on_error == "raise":
                raise
            pi0[i] = np.nan
            pi1[i] = np.nan
            failed_items.append((int(i), exc))
    return pi0, pi1, failed_items


@overload
def solve_qbd_batched(
    qbds: Iterable[QBDProcess],
    tol: float = ...,
    return_report: Literal[False] = ...,
    on_error: Literal["raise"] = ...,
    escalate: bool = ...,
) -> list[QBDStationaryDistribution]: ...


@overload
def solve_qbd_batched(
    qbds: Iterable[QBDProcess],
    tol: float = ...,
    *,
    return_report: Literal[True],
    on_error: Literal["raise"] = ...,
    escalate: bool = ...,
) -> tuple[list[QBDStationaryDistribution], BatchedSolveReport]: ...


@overload
def solve_qbd_batched(
    qbds: Iterable[QBDProcess],
    tol: float = ...,
    *,
    return_report: Literal[True],
    on_error: str,
    escalate: bool = ...,
) -> tuple[list[QBDStationaryDistribution | None], BatchedSolveReport]: ...


def solve_qbd_batched(
    qbds: Iterable[QBDProcess],
    tol: float = DEFAULT_TOL,
    return_report: bool = False,
    on_error: str = "raise",
    escalate: bool = False,
) -> (
    list[QBDStationaryDistribution]
    | list[QBDStationaryDistribution | None]
    | tuple[list[QBDStationaryDistribution | None], BatchedSolveReport]
):
    """Solve ``N`` same-shape QBDs end to end in one stacked pipeline.

    The batched counterpart of :func:`repro.qbd.stationary.solve_qbd`:
    stacked R matrices (:func:`batched_r_matrix`), a batched boundary
    solve, and the ``(I-R)^{-1}`` level sums of *all* items extracted with
    two batched linear solves, seeded into the returned per-item
    distributions.  Mixed-shape inputs are rejected -- group by
    ``(boundary_size, phase_count)`` first (the sweep engine does).

    Parameters
    ----------
    qbds:
        Non-empty sequence of :class:`~repro.qbd.structure.QBDProcess`
        instances sharing one block shape.
    tol:
        R-iteration tolerance.
    return_report:
        When True, return ``(distributions, report)``.
    on_error:
        ``"raise"`` (default) propagates the first per-item failure;
        ``"skip"``/``"collect"`` isolate failures instead: the failed
        item's distribution slot is ``None``, the failure lands in
        ``report.failures``, and every other item solves normally.
    escalate:
        Per item that the matrix-geometric pipeline gives up on, try the
        truncated dense-chain rung
        (:func:`repro.qbd.truncated.solve_qbd_truncated`) before failing
        it; successful escalations return real distributions flagged
        ``degraded=True`` in their ``solve_stats``.

    Returns
    -------
    List of :class:`~repro.qbd.stationary.QBDStationaryDistribution`, one
    per input, each carrying its per-item
    :class:`~repro.qbd.rmatrix.SolveStats` (``None`` slots only in
    isolation mode).
    """
    _validate_on_error(on_error)
    qbds = list(qbds)
    if not qbds:
        raise ValueError("solve_qbd_batched needs at least one QBD")
    for q in qbds:
        if not isinstance(q, QBDProcess):
            raise TypeError(
                f"expected QBDProcess instances, got {type(q).__name__}"
            )
    shapes = {(q.boundary_size, q.phase_count) for q in qbds}
    if len(shapes) > 1:
        raise ValueError(
            f"mixed block shapes {sorted(shapes)}; group same-shape QBDs "
            "before calling solve_qbd_batched"
        )
    n, m = len(qbds), qbds[0].phase_count
    n_b = qbds[0].boundary_size
    # With escalation on, the R stage must isolate its failures even in
    # "raise" mode so the truncated rung gets its chance; the original
    # exception object is preserved and re-raised if escalation fails too.
    isolate = on_error != "raise" or escalate
    # QBDProcess.__post_init__ validated the row split and froze every
    # block, so the stacked precondition is certified (same certificate
    # solve_qbd passes to r_matrix).
    r, stats_list, report = batched_r_matrix(
        np.stack([q.a0 for q in qbds]),
        np.stack([q.a1 for q in qbds]),
        np.stack([q.a2 for q in qbds]),
        tol=tol,
        blocks_validated=True,
        return_stats=True,
        on_error="collect" if isolate else "raise",
    )
    stats_list = list(stats_list)
    failures: dict[int, BatchedItemFailure] = {
        f.index: f for f in report.failures
    }
    distributions: list[QBDStationaryDistribution | None] = [None] * n

    def _escalate_item(
        i: int, rungs: tuple[str, ...], original: BaseException | None
    ) -> None:
        """Run the truncated dense rung for item ``i`` or record/raise."""
        try:
            dist = solve_qbd_truncated(qbds[i], fallbacks=rungs)
        except (QBDConvergenceError, ValueError) as exc:
            if on_error == "raise":
                raise original if original is not None else exc
            failures[i] = _item_failure(i, "truncated", exc, rungs)
        else:
            distributions[i] = dist
            assert dist.solve_stats is not None
            stats_list[i] = dist.solve_stats
            failures.pop(i, None)

    if escalate:
        for i, failure in sorted(failures.copy().items()):
            _escalate_item(
                i, failure.attempts or (BATCHED_ALGORITHM,), failure.error
            )

    # Boundary + level sums over the items the R stage actually solved.
    pending = [
        i
        for i in range(n)
        if distributions[i] is None and i not in failures
    ]
    if pending:
        sub_pi0, sub_pi1, boundary_failed = _batched_boundary(
            [qbds[i] for i in pending],
            r[pending],
            on_error="collect" if isolate else "raise",
        )
        for local, exc in boundary_failed:
            i = pending[local]
            if escalate:
                _escalate_item(i, (BATCHED_ALGORITHM, "boundary"), exc)
            elif on_error == "raise":
                raise exc
            else:
                failures[i] = _item_failure(i, "boundary", exc)
        good_local = [
            k
            for k, i in enumerate(pending)
            if distributions[i] is None and i not in failures
        ]
        good = [pending[k] for k in good_local]
    else:
        good_local, good = [], []

    if good:
        pi0 = np.ascontiguousarray(sub_pi0[good_local])
        pi1 = np.ascontiguousarray(sub_pi1[good_local])
        r_good = r[good]
        # Stacked level sums: pi_1 (I-R)^{-1} and pi_1 (I-R)^{-2} for
        # every solved item via two batched transposed solves.
        i_minus_r_t = (np.eye(m) - r_good).transpose(0, 2, 1)
        rep_mass = np.linalg.solve(i_minus_r_t, pi1[..., None])[..., 0]
        rep_weighted = np.linalg.solve(
            i_minus_r_t, rep_mass[..., None]
        )[..., 0]

        for stack in (pi0, pi1, rep_mass, rep_weighted):
            stack.setflags(write=False)

        for k, i in enumerate(good):
            dist = QBDStationaryDistribution(
                qbds[i], r[i], pi0[k], pi1[k], solve_stats=stats_list[i]
            )
            dist._seed_level_sums(rep_mass[k], rep_weighted[k])
            distributions[i] = dist

        if contracts_enabled():
            # End-to-end invariant per solved item, vectorized on the
            # pass path exactly like solve_qbd: non-negative mass, total
            # mass 1.  Failed items are excluded -- their slots are None
            # with a structured failure, not a wrong number.
            least = np.minimum(pi0.min(axis=1), pi1.min(axis=1))
            total = pi0.sum(axis=1) + rep_mass.sum(axis=1)
            bad = ~((least > -1e-6) & (np.abs(total - 1.0) <= 1e-8))
            if np.any(bad):
                item = good[int(np.argmax(bad))]
                raise ContractViolation(
                    "check_solution",
                    f"QBD stationary distribution [{item}]",
                    f"total mass {total[int(np.argmax(bad))]:.10g}, "
                    "expected 1",
                )
    report = replace(
        report,
        boundary_size=n_b,
        failures=tuple(failures[i] for i in sorted(failures)),
    )
    if return_report:
        return distributions, report
    return distributions
