"""Truncated dense-chain fallback -- the last rung of the escalation ladder.

When every R-matrix iteration fails (``QBDConvergenceError``) or the
boundary system is singular, the QBD can still be solved as a plain finite
CTMC: truncate after ``L`` repeating levels with the lost up-transitions
reflected into the last level's diagonal
(:meth:`~repro.qbd.structure.QBDProcess.truncated_generator`), solve the
dense chain, and double ``L`` until the mass stranded in the top level is
negligible.  For a stable QBD the truncated solution converges to the
matrix-geometric one as ``L`` grows -- the same construction the test
suite already uses as an independent oracle.

The result is an ordinary :class:`~repro.qbd.stationary.QBDStationaryDistribution`
whose level sums are seeded with the truncated sums (accurate to the
stranded tail mass, which the acceptance threshold bounds) and whose
``solve_stats`` is flagged ``degraded=True`` with the accepted
``truncation_level``, so figures can state exactly which points degraded.
The substitute rate matrix is the diagonal decay ``c I`` with ``c`` the
observed top-level mass ratio: it preserves the geometric-tail *shape* for
diagnostics (``tail_mass``, ``spectral_radius``) without pretending to be
the minimal R.

If even the deepest affordable truncation leaves significant top-level
mass (a chain at the edge of stability), :class:`QBDConvergenceError` is
raised -- a structured failure, never a silently wrong number.
"""

from __future__ import annotations

import time

import numpy as np

from repro.markov.stationary import stationary_distribution
from repro.qbd.rmatrix import QBDConvergenceError, SolveStats, is_stable
from repro.qbd.stationary import QBDStationaryDistribution
from repro.qbd.structure import QBDProcess

__all__ = [
    "TRUNCATION_ACCEPT_TOL",
    "TRUNCATION_MAX_STATES",
    "TRUNCATION_START_LEVELS",
    "TRUNCATION_TAIL_TOL",
    "solve_qbd_truncated",
]

#: First truncation depth tried; doubled until the tail criterion holds.
TRUNCATION_START_LEVELS = 32

#: Hard cap on the truncated chain's total state count (the dense solve is
#: O(n^3); beyond this the fallback would stall rather than fail fast).
TRUNCATION_MAX_STATES = 4096

#: Target top-level mass: doubling stops once the stranded mass drops
#: below this, keeping truncation error well under metric tolerances.
TRUNCATION_TAIL_TOL = 1e-13

#: Acceptance threshold: a truncation whose top level still holds more
#: mass than this is rejected (the chain decays too slowly for a dense
#: solve of affordable size) and the fallback raises instead of returning
#: an inaccurate answer.
TRUNCATION_ACCEPT_TOL = 1e-9


def solve_qbd_truncated(
    qbd: QBDProcess,
    start_levels: int = TRUNCATION_START_LEVELS,
    tail_tol: float = TRUNCATION_TAIL_TOL,
    fallbacks: tuple[str, ...] = (),
) -> QBDStationaryDistribution:
    """Solve a QBD via an adaptively truncated dense chain.

    Parameters
    ----------
    qbd:
        The process to solve; must be positive recurrent (truncating an
        unstable chain would *look* convergent while being meaningless).
    start_levels:
        Initial truncation depth; doubled until the top-level mass falls
        below ``tail_tol`` or the state cap is reached.
    tail_tol:
        Target mass stranded in the reflecting top level.
    fallbacks:
        Attempt log of the matrix-geometric rungs that failed first;
        recorded verbatim in the returned ``solve_stats.fallbacks``.

    Raises
    ------
    ValueError
        If ``start_levels < 1`` or the QBD is not positive recurrent.
    QBDConvergenceError
        If the deepest affordable truncation still strands more than
        ``TRUNCATION_ACCEPT_TOL`` of mass in the top level.
    """
    if start_levels < 1:
        raise ValueError(f"start_levels must be >= 1, got {start_levels}")
    if not is_stable(qbd.a0, qbd.a1, qbd.a2):
        raise ValueError(
            "QBD is not positive recurrent; a truncated solve would not "
            "approximate any stationary distribution"
        )
    started_at = time.perf_counter()
    n_b, m = qbd.boundary_size, qbd.phase_count
    max_levels = max(2, (TRUNCATION_MAX_STATES - n_b) // m)
    levels = min(max(start_levels, 2), max_levels)
    doublings = 0
    while True:
        pi = stationary_distribution(qbd.truncated_generator(levels))
        top_mass = float(pi[n_b + (levels - 1) * m :].sum())
        if top_mass <= tail_tol or levels >= max_levels:
            break
        levels = min(2 * levels, max_levels)
        doublings += 1
    if top_mass > TRUNCATION_ACCEPT_TOL:
        raise QBDConvergenceError(
            f"truncated dense fallback rejected: top-level mass "
            f"{top_mass:.3g} at {levels} levels "
            f"({n_b + levels * m} states) exceeds "
            f"{TRUNCATION_ACCEPT_TOL:.0e}; the chain decays too slowly "
            "for a dense solve of affordable size",
            iterations=doublings,
            attempts=tuple(fallbacks) + ("truncated-dense",),
        )

    level_vectors = [
        pi[n_b + k * m : n_b + (k + 1) * m] for k in range(levels)
    ]
    repeating_mass = np.sum(level_vectors, axis=0)
    repeating_level_weighted = np.sum(
        [(k + 1) * vec for k, vec in enumerate(level_vectors)], axis=0
    )
    # Diagonal-decay stand-in for R: c is the observed top-level mass
    # ratio (the reflecting level absorbs the whole tail, so this bounds
    # the true decay from above), clipped inside the unit disk so the
    # geometric diagnostics stay defined.
    masses = [float(vec.sum()) for vec in level_vectors]
    if levels >= 2 and masses[-2] > 0.0:
        decay = min(masses[-1] / masses[-2], 1.0 - 1e-9)
    else:
        decay = 0.0
    r = np.eye(m) * max(decay, 0.0)

    distribution = QBDStationaryDistribution(
        qbd,
        r,
        pi_boundary=pi[:n_b],
        pi_first=level_vectors[0],
        solve_stats=SolveStats(
            algorithm="truncated-dense",
            iterations=doublings,
            wall_time_ms=(time.perf_counter() - started_at) * 1e3,
            spectral_radius=decay,
            fallbacks=tuple(fallbacks),
            degraded=True,
            truncation_level=levels,
        ),
    )
    # The exact truncated level vectors and sums replace the geometric
    # recurrences, so every metric downstream consumes the dense solution
    # (the stand-in R only shapes the >L tail diagnostics).
    distribution._levels = level_vectors
    distribution._seed_level_sums(repeating_mass, repeating_level_weighted)
    total = float(pi[:n_b].sum() + repeating_mass.sum())
    if not np.isfinite(total) or abs(total - 1.0) > 1e-8:
        raise QBDConvergenceError(
            f"truncated dense fallback produced total mass {total:.10g}, "
            "expected 1",
            iterations=doublings,
            attempts=tuple(fallbacks) + ("truncated-dense",),
        )
    return distribution
