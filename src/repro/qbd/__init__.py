"""Quasi-Birth-Death (QBD) processes and the matrix-geometric method.

A QBD is a CTMC on a two-dimensional state space (level, phase) whose
generator is block tridiagonal with level-independent blocks beyond a finite
boundary::

        | B00 B01            |
        | B10 A1  A0         |
    Q = |     A2  A1  A0     |
        |         A2  A1  A0 |
        |             ...    |

The stationary vector satisfies ``pi_k = pi_1 R^{k-1}`` for ``k >= 1`` where
``R`` is the minimal non-negative solution of
``A0 + R A1 + R^2 A2 = 0`` (Neuts; Latouche & Ramaswami).  This package
implements the structure (:mod:`~repro.qbd.structure`), three R/G-matrix
algorithms (:mod:`~repro.qbd.rmatrix`), the boundary solve
(:mod:`~repro.qbd.boundary`) and a stationary-distribution object with
closed-form level sums (:mod:`~repro.qbd.stationary`).
"""

from repro.qbd.structure import QBDProcess
from repro.qbd.rmatrix import (
    SolveStats,
    drift,
    g_matrix_logarithmic_reduction,
    is_stable,
    r_matrix,
    r_matrix_functional_iteration,
    r_matrix_from_g,
    r_matrix_logarithmic_reduction,
    r_matrix_natural_iteration,
    r_matrix_newton,
)
from repro.qbd.batched import (
    BatchedSolveReport,
    batched_r_matrix,
    solve_qbd_batched,
)
from repro.qbd.boundary import solve_boundary
from repro.qbd.mg1 import MG1Process, MG1StationaryDistribution, g_matrix_mg1, solve_mg1
from repro.qbd.stationary import QBDStationaryDistribution, solve_qbd

__all__ = [
    "BatchedSolveReport",
    "QBDProcess",
    "SolveStats",
    "drift",
    "is_stable",
    "r_matrix",
    "r_matrix_functional_iteration",
    "r_matrix_logarithmic_reduction",
    "r_matrix_natural_iteration",
    "r_matrix_newton",
    "r_matrix_from_g",
    "g_matrix_logarithmic_reduction",
    "batched_r_matrix",
    "solve_boundary",
    "solve_qbd_batched",
    "MG1Process",
    "MG1StationaryDistribution",
    "g_matrix_mg1",
    "solve_mg1",
    "QBDStationaryDistribution",
    "solve_qbd",
]
