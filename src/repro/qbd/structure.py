"""Block structure of a QBD process with a general finite boundary."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

__all__ = ["QBDProcess"]

_ATOL = 1e-8


def _freeze(*arrays: np.ndarray) -> None:
    """Make every block read-only before it is stored on the dataclass.

    Must stay unconditional and directly called: reprolint's freeze
    oracle (RL002/RL006) recognizes one level of same-module helpers,
    no deeper and never behind a data-dependent branch.
    """
    for array in arrays:
        array.setflags(write=False)


@dataclass(frozen=True)
class QBDProcess:
    """A QBD defined by its repeating blocks and boundary blocks.

    The boundary portion may aggregate several "physical" levels into one
    block of ``boundary_size`` states (as the foreground/background model
    does with its tree-like levels ``0..X``); the repeating portion has
    ``phase_count`` states per level.

    Attributes
    ----------
    b00:
        Transitions within the boundary (``n_b x n_b``), including its
        diagonal.
    b01:
        Transitions from the boundary up into the first repeating level
        (``n_b x m``).
    b10:
        Transitions from the first repeating level down into the boundary
        (``m x n_b``).  May differ from ``a2`` (in the paper's model the
        first down-step lands on idle-wait states that exist only in the
        boundary).
    a0:
        Level-up transitions within the repeating portion (``m x m``).
    a1:
        Within-level transitions of the repeating portion, including the
        diagonal (``m x m``).
    a2:
        Level-down transitions within the repeating portion (``m x m``).
    """

    b00: np.ndarray
    b01: np.ndarray
    b10: np.ndarray
    a0: np.ndarray
    a1: np.ndarray
    a2: np.ndarray

    def __post_init__(self) -> None:
        b00 = np.array(self.b00, dtype=float)
        b01 = np.array(self.b01, dtype=float)
        b10 = np.array(self.b10, dtype=float)
        a0 = np.array(self.a0, dtype=float)
        a1 = np.array(self.a1, dtype=float)
        a2 = np.array(self.a2, dtype=float)
        for name, block in (("b00", b00), ("a1", a1)):
            if block.ndim != 2 or block.shape[0] != block.shape[1]:
                raise ValueError(f"{name} must be square, got shape {block.shape}")
        n_b = b00.shape[0]
        m = a1.shape[0]
        expected = {"b01": (n_b, m), "b10": (m, n_b), "a0": (m, m), "a2": (m, m)}
        for name, shape in expected.items():
            block = {"b01": b01, "b10": b10, "a0": a0, "a2": a2}[name]
            if block.shape != shape:
                raise ValueError(f"{name} must have shape {shape}, got {block.shape}")
        for name, block in (
            ("b01", b01),
            ("b10", b10),
            ("a0", a0),
            ("a2", a2),
        ):
            if np.any(block < 0):
                raise ValueError(f"{name} must be entrywise non-negative")
        for name, block in (("b00", b00), ("a1", a1)):
            off = block - np.diag(np.diag(block))
            if np.any(off < 0):
                raise ValueError(f"off-diagonal entries of {name} must be non-negative")
        scale = max(float(np.max(np.abs(np.diag(b00)))), float(np.max(np.abs(np.diag(a1)))), 1.0)
        boundary_sums = b00.sum(axis=1) + b01.sum(axis=1)
        if np.any(np.abs(boundary_sums) > _ATOL * scale):
            i = int(np.argmax(np.abs(boundary_sums)))
            raise ValueError(
                f"boundary row {i} sums to {boundary_sums[i]}, expected 0"
            )
        first_sums = b10.sum(axis=1) + a1.sum(axis=1) + a0.sum(axis=1)
        if np.any(np.abs(first_sums) > _ATOL * scale):
            i = int(np.argmax(np.abs(first_sums)))
            raise ValueError(
                f"first repeating-level row {i} sums to {first_sums[i]}, expected 0"
            )
        repeat_sums = a2.sum(axis=1) + a1.sum(axis=1) + a0.sum(axis=1)
        if np.any(np.abs(repeat_sums) > _ATOL * scale):
            i = int(np.argmax(np.abs(repeat_sums)))
            raise ValueError(
                f"repeating-level row {i} sums to {repeat_sums[i]}, expected 0"
            )
        _freeze(b00, b01, b10, a0, a1, a2)
        object.__setattr__(self, "b00", b00)
        object.__setattr__(self, "b01", b01)
        object.__setattr__(self, "b10", b10)
        object.__setattr__(self, "a0", a0)
        object.__setattr__(self, "a1", a1)
        object.__setattr__(self, "a2", a2)

    @classmethod
    def homogeneous(cls, a0: np.ndarray, a1: np.ndarray, a2: np.ndarray) -> "QBDProcess":
        """QBD whose level 0 behaves like any other level except that
        down-transitions are folded into the diagonal-free local block.

        Suitable for simple queues (e.g. M/M/1 as a 1-phase QBD): the
        boundary is a single copy of the phase space with ``b00 = a1 + a2``
        folded so that rows still sum to zero with ``b01 = a0``.
        """
        a1 = np.asarray(a1, dtype=float)
        a2 = np.asarray(a2, dtype=float)
        b00 = a1 + np.diag(np.asarray(a2, dtype=float).sum(axis=1))
        return cls(b00=b00, b01=np.asarray(a0, float), b10=a2, a0=a0, a1=a1, a2=a2)

    @cached_property
    def boundary_size(self) -> int:
        """Number of boundary states."""
        return self.b00.shape[0]

    @cached_property
    def phase_count(self) -> int:
        """Number of states per repeating level."""
        return self.a1.shape[0]

    def truncated_generator(self, levels: int) -> np.ndarray:
        """Dense generator truncated after ``levels`` repeating levels.

        The last level's up-transitions are reflected into its diagonal so
        the truncated matrix is a proper generator.  Used as an independent
        oracle: for a stable QBD the truncated solve converges to the
        matrix-geometric solution as ``levels`` grows.
        """
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        n_b, m = self.boundary_size, self.phase_count
        n = n_b + levels * m
        q = np.zeros((n, n))
        q[:n_b, :n_b] = self.b00
        q[:n_b, n_b : n_b + m] = self.b01
        q[n_b : n_b + m, :n_b] = self.b10
        for k in range(levels):
            lo = n_b + k * m
            q[lo : lo + m, lo : lo + m] = self.a1
            if k + 1 < levels:
                q[lo : lo + m, lo + m : lo + 2 * m] = self.a0
                q[lo + m : lo + 2 * m, lo : lo + m] = self.a2
        # Reflect the lost up-transitions of the last level into its diagonal.
        lo = n_b + (levels - 1) * m
        q[lo : lo + m, lo : lo + m] += np.diag(self.a0.sum(axis=1))
        return q

    def __repr__(self) -> str:
        return (
            f"QBDProcess(boundary_size={self.boundary_size}, "
            f"phase_count={self.phase_count})"
        )
