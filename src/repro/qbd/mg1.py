"""M/G/1-type Markov chains and Ramaswami's formula.

Generalizes the QBD machinery to chains that are skip-free to the left but
may jump *up* several levels at once (batch arrivals, the BMAP/G/1 queue of
the paper's reference [11]).  The generator is block upper-Hessenberg::

        | B0  B1  B2  B3 ... |
        | C   A1  A2  A3 ... |
    Q = |     A0  A1  A2 ... |
        |         A0  A1 ... |

where ``A0`` steps one level down, ``A1`` is local, ``Ak`` (k >= 2) jumps
``k - 1`` levels up; the boundary may have its own width, with ``Bk``
leading from it to level ``k`` and ``C`` returning from level 1.

The stationary vector follows the classical two-step recipe:

1. ``G`` -- the minimal non-negative solution of
   ``A0 + A1 G + A2 G^2 + ... = 0`` (first-passage phases one level down),
   by the monotone natural iteration;
2. Ramaswami's recursion with the censored sums
   ``Abar_k = sum_{j>=k} A_j G^{j-k}`` and
   ``Bbar_k = sum_{j>=k} B_j G^{j-k}``::

       pi_0 Qstar = 0,   Qstar = B0 + Bbar_1 H,   H = (-Abar_1)^{-1} C
       pi_n = -(pi_0 Bbar_n + sum_{k=1}^{n-1} pi_k Abar_{n-k+1}) Abar_1^{-1}

   normalized by accumulating levels until the geometric tail is
   negligible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.markov.stationary import stationary_distribution
from repro.qbd.rmatrix import QBDConvergenceError

__all__ = ["MG1Process", "MG1StationaryDistribution", "solve_mg1", "g_matrix_mg1"]

_ATOL = 1e-8


@dataclass(frozen=True)
class MG1Process:
    """An M/G/1-type CTMC given by its finite block sequences.

    Attributes
    ----------
    boundary_blocks:
        ``[B0, B1, ..., BK]``: ``B0`` is the square boundary block
        (including its diagonal); ``Bk`` leads from the boundary to level
        ``k``.
    down_block:
        ``C``: transitions from level 1 into the boundary.
    repeating_blocks:
        ``[A0, A1, ..., AK]``: ``A0`` down, ``A1`` local (including the
        diagonal), ``Ak`` up ``k - 1`` levels.
    """

    boundary_blocks: tuple[np.ndarray, ...]
    down_block: np.ndarray
    repeating_blocks: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        bs = tuple(np.array(b, dtype=float) for b in self.boundary_blocks)
        a_blocks = tuple(np.array(a, dtype=float) for a in self.repeating_blocks)
        c = np.array(self.down_block, dtype=float)
        if len(bs) < 2:
            raise ValueError("need at least [B0, B1] boundary blocks")
        if len(a_blocks) < 2:
            raise ValueError("need at least [A0, A1] repeating blocks")
        n_b = bs[0].shape[0]
        if bs[0].shape != (n_b, n_b):
            raise ValueError(f"B0 must be square, got {bs[0].shape}")
        m = a_blocks[0].shape[0]
        for k, a in enumerate(a_blocks):
            if a.shape != (m, m):
                raise ValueError(f"A{k} must have shape {(m, m)}, got {a.shape}")
        for k, b in enumerate(bs[1:], start=1):
            if b.shape != (n_b, m):
                raise ValueError(f"B{k} must have shape {(n_b, m)}, got {b.shape}")
        if c.shape != (m, n_b):
            raise ValueError(f"C must have shape {(m, n_b)}, got {c.shape}")
        for name, block in [("C", c)] + [
            (f"A{k}", a) for k, a in enumerate(a_blocks) if k != 1
        ] + [(f"B{k}", b) for k, b in enumerate(bs) if k != 0]:
            if np.any(block < 0):
                raise ValueError(f"{name} must be entrywise non-negative")
        for name, block in (("B0", bs[0]), ("A1", a_blocks[1])):
            off = block - np.diag(np.diag(block))
            if np.any(off < 0):
                raise ValueError(f"off-diagonal entries of {name} must be non-negative")
        scale = max(
            float(np.max(np.abs(np.diag(bs[0])))),
            float(np.max(np.abs(np.diag(a_blocks[1])))),
            1.0,
        )
        b_sums = sum(b.sum(axis=1) for b in bs)
        if np.any(np.abs(b_sums) > _ATOL * scale):
            raise ValueError("boundary rows (sum of all Bk) must sum to zero")
        level1 = c.sum(axis=1) + sum(a.sum(axis=1) for a in a_blocks[1:])
        if np.any(np.abs(level1) > _ATOL * scale):
            raise ValueError("level-1 rows (C + A1 + A2 + ...) must sum to zero")
        rep = sum(a.sum(axis=1) for a in a_blocks)
        if np.any(np.abs(rep) > _ATOL * scale):
            raise ValueError("repeating rows (sum of all Ak) must sum to zero")
        c.setflags(write=False)
        for block in (*bs, *a_blocks):
            block.setflags(write=False)
        object.__setattr__(self, "boundary_blocks", bs)
        object.__setattr__(self, "down_block", c)
        object.__setattr__(self, "repeating_blocks", a_blocks)

    @property
    def boundary_size(self) -> int:
        """Number of boundary states."""
        return self.boundary_blocks[0].shape[0]

    @property
    def phase_count(self) -> int:
        """Number of states per repeating level."""
        return self.repeating_blocks[0].shape[0]

    @cached_property
    def drift(self) -> float:
        """Mean level drift ``theta (sum_k (k-1) A_k) e``; negative = stable."""
        a_total = sum(self.repeating_blocks)
        theta = stationary_distribution(a_total, method="dense")
        e = np.ones(self.phase_count)
        value = -float(theta @ self.repeating_blocks[0] @ e)
        for k, a in enumerate(self.repeating_blocks[2:], start=2):
            value += (k - 1) * float(theta @ a @ e)
        return value

    def truncated_generator(self, levels: int) -> np.ndarray:
        """Dense generator truncated after ``levels`` repeating levels,
        with lost up-jumps reflected into the diagonal (oracle for tests)."""
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        n_b, m = self.boundary_size, self.phase_count
        n = n_b + levels * m
        q = np.zeros((n, n))
        q[:n_b, :n_b] = self.boundary_blocks[0]
        lost = np.zeros(n_b)
        for k, b in enumerate(self.boundary_blocks[1:], start=1):
            if k <= levels:
                lo = n_b + (k - 1) * m
                q[:n_b, lo : lo + m] = b
            else:
                lost += b.sum(axis=1)
        q[:n_b, :n_b] += np.diag(lost)
        q[n_b : n_b + m, :n_b] = self.down_block
        for level in range(1, levels + 1):
            lo = n_b + (level - 1) * m
            lost_level = np.zeros(m)
            for k, a in enumerate(self.repeating_blocks):
                target = level + k - 1
                if k == 0 and level == 1:
                    continue  # C already placed
                if 1 <= target <= levels:
                    tlo = n_b + (target - 1) * m
                    q[lo : lo + m, tlo : tlo + m] += a
                elif k >= 2:
                    lost_level += a.sum(axis=1)
            q[lo : lo + m, lo : lo + m] += np.diag(lost_level)
        return q


def g_matrix_mg1(
    repeating_blocks: tuple[np.ndarray, ...],
    tol: float = 1e-12,
    max_iter: int = 200_000,
) -> np.ndarray:
    """Minimal solution of ``A0 + A1 G + A2 G^2 + ... = 0``.

    Monotone natural iteration ``G <- (-A1)^{-1} (A0 + sum_{k>=2} A_k G^k)``.
    """
    a_blocks = [np.asarray(a, dtype=float) for a in repeating_blocks]
    m = a_blocks[0].shape[0]
    inv_neg_a1 = np.linalg.inv(-a_blocks[1])
    g = np.zeros((m, m))
    for _ in range(max_iter):
        acc = a_blocks[0].copy()
        power = g @ g
        for a in a_blocks[2:]:
            acc = acc + a @ power
            power = power @ g
        g_next = inv_neg_a1 @ acc
        delta = float(np.max(np.abs(g_next - g)))
        g = g_next
        if delta < tol:
            return g
    raise QBDConvergenceError(
        f"M/G/1 G iteration did not converge in {max_iter} iterations "
        f"(last delta {delta:.3g}); is the chain stable?"
    )


class MG1StationaryDistribution:
    """Stationary distribution of an M/G/1-type chain (levels on demand)."""

    def __init__(
        self, process: MG1Process, g: np.ndarray, pi0: np.ndarray, levels: list[np.ndarray]
    ) -> None:
        self._process = process
        self._g = g
        self._pi0 = pi0
        self._levels = levels

    @property
    def g(self) -> np.ndarray:
        """The first-passage matrix G."""
        return self._g

    @property
    def boundary(self) -> np.ndarray:
        """Stationary probabilities of the boundary states."""
        return self._pi0

    @property
    def computed_levels(self) -> int:
        """Number of repeating levels computed before the tail was cut."""
        return len(self._levels)

    def level(self, k: int) -> np.ndarray:
        """Stationary probabilities of repeating level ``k >= 1``.

        Levels beyond the computed range are (numerically) zero.
        """
        if k < 1:
            raise ValueError(f"repeating levels are numbered from 1, got {k}")
        if k <= len(self._levels):
            return self._levels[k - 1]
        return np.zeros(self._process.phase_count)

    @cached_property
    def total_mass(self) -> float:
        """Should be 1 up to the truncation tolerance."""
        return float(self._pi0.sum() + sum(v.sum() for v in self._levels))

    def mean_level(self) -> float:
        """Expected level ``E[N]`` of the stationary chain."""
        return float(sum(k * v.sum() for k, v in enumerate(self._levels, start=1)))


def solve_mg1(
    process: MG1Process,
    tol: float = 1e-12,
    tail_tol: float = 1e-14,
    max_levels: int = 200_000,
) -> MG1StationaryDistribution:
    """Solve an M/G/1-type chain via G and Ramaswami's recursion.

    Parameters
    ----------
    process:
        The validated block structure.
    tol:
        Convergence tolerance of the G iteration.
    tail_tol:
        Levels are generated until a level's mass falls below
        ``tail_tol`` times the mass accumulated so far.
    max_levels:
        Safety cap on the recursion length.
    """
    if process.drift >= 0:
        raise ValueError(
            f"chain is not positive recurrent (drift {process.drift:.6g} >= 0)"
        )
    a_blocks = process.repeating_blocks
    b_blocks = process.boundary_blocks
    c = process.down_block
    g = g_matrix_mg1(a_blocks, tol=tol)

    # Censored sums Abar_k = sum_{j>=k} A_j G^{j-k} for k = 1..K and the
    # analogous Bbar_k; beyond the highest explicit block they are zero.
    k_a = len(a_blocks)
    abar: list[np.ndarray] = [None] * k_a  # index k for Abar_k, k >= 1
    acc = a_blocks[k_a - 1].copy()
    abar[k_a - 1] = acc.copy()
    for k in range(k_a - 2, 0, -1):
        acc = a_blocks[k] + acc @ g
        abar[k] = acc.copy()
    k_b = len(b_blocks)
    bbar: list[np.ndarray] = [None] * k_b
    acc_b = b_blocks[k_b - 1].copy()
    bbar[k_b - 1] = acc_b.copy()
    for k in range(k_b - 2, 0, -1):
        acc_b = b_blocks[k] + acc_b @ g
        bbar[k] = acc_b.copy()

    inv_neg_abar1 = np.linalg.inv(-abar[1])
    h = inv_neg_abar1 @ c  # first passage from level 1 into the boundary

    # Censored boundary generator and pi_0 (unnormalized).
    q_star = b_blocks[0] + bbar[1] @ h
    pi0 = stationary_distribution(q_star, method="dense")

    def abar_at(k: int) -> np.ndarray | None:
        return abar[k] if 1 <= k < k_a else None

    def bbar_at(k: int) -> np.ndarray | None:
        return bbar[k] if 1 <= k < k_b else None

    levels: list[np.ndarray] = []
    accumulated = float(pi0.sum())
    for n in range(1, max_levels + 1):
        acc_vec = np.zeros(process.phase_count)
        b_term = bbar_at(n)
        if b_term is not None:
            acc_vec += pi0 @ b_term
        for k in range(1, n):
            a_term = abar_at(n - k + 1)
            if a_term is not None:
                acc_vec += levels[k - 1] @ a_term
        # pi_n = -(pi_0 Bbar_n + sum pi_k Abar_{n-k+1}) (Abar_1)^{-1}
        #      =  (pi_0 Bbar_n + sum pi_k Abar_{n-k+1}) (-Abar_1)^{-1}.
        pi_n = acc_vec @ inv_neg_abar1
        mass = float(pi_n.sum())
        if mass < 0:
            raise ValueError(f"Ramaswami recursion produced negative mass at level {n}")
        levels.append(pi_n)
        accumulated += mass
        if n >= k_a and n >= k_b and mass < tail_tol * accumulated:
            break
    else:
        raise QBDConvergenceError(
            f"Ramaswami recursion did not drain within {max_levels} levels"
        )

    # Normalize everything jointly.
    pi0 = pi0 / accumulated
    levels = [v / accumulated for v in levels]
    return MG1StationaryDistribution(process, g, pi0, levels)
