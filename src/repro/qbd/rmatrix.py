"""R- and G-matrix algorithms for QBD processes.

``R`` is the minimal non-negative solution of ``A0 + R A1 + R^2 A2 = 0``;
``G`` the minimal non-negative solution of ``A2 + A1 G + A0 G^2 = 0``.
Four algorithms are provided:

* functional iteration on R (Neuts' classic fixed point) -- simple,
  linearly convergent, seedable with an initial iterate;
* Newton's method on R (Latouche 1994) -- quadratically convergent and
  seedable; the warm-start vehicle of the sweep engine;
* "natural" U-based iteration on G -- linearly convergent with better
  constants;
* logarithmic reduction on G (Latouche & Ramaswami 1993) -- quadratically
  convergent, the default.

All operate on the CTMC (generator) form of the blocks.  :func:`r_matrix`
orchestrates them (warm starts, fallbacks) and can report per-solve
:class:`SolveStats`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.contracts.checks import (
    certify_spectral_radius_below_one,
    check_finite,
    check_generator,
    check_nonnegative,
    check_r_matrix,
    contracts_enabled,
)
from repro.contracts.errors import ContractViolation
from repro.faults import fire as _fault_fire
from repro.markov.stationary import stationary_distribution

__all__ = [
    "ESCALATION_TIME_BUDGET_MS",
    "QBDConvergenceError",
    "SolveStats",
    "drift",
    "escalation_time_budget_ms",
    "is_stable",
    "r_matrix",
    "r_matrix_functional_iteration",
    "r_matrix_natural_iteration",
    "r_matrix_logarithmic_reduction",
    "r_matrix_newton",
    "r_matrix_from_g",
    "g_matrix_logarithmic_reduction",
]

DEFAULT_TOL = 1e-12
DEFAULT_MAX_ITER = 2_000_000

#: Iteration budget of a warm-started functional iteration before falling
#: back to a cold solve (a useful warm start converges in far fewer).
WARM_MAX_ITER = 50_000

#: Newton is quadratically convergent; if it has not converged in this many
#: steps it never will.
NEWTON_MAX_ITER = 64

#: Newton solves an m^2 x m^2 linear system per step; beyond this phase
#: count the warm path falls back to the seeded functional iteration.
NEWTON_MAX_PHASES = 32

#: Default wall-time budget of the linearly convergent escalation rungs
#: (functional / natural fallback inside :func:`r_matrix`).  Override with
#: the ``REPRO_SOLVER_BUDGET_MS`` environment variable; a hopeless chain
#: then fails fast into the next rung (ultimately the truncated dense
#: fallback of ``solve_qbd(escalate=True)``) instead of burning the full
#: ``DEFAULT_MAX_ITER`` iteration budget.
ESCALATION_TIME_BUDGET_MS = 30_000.0

#: Environment variable overriding :data:`ESCALATION_TIME_BUDGET_MS`.
ENV_SOLVER_BUDGET_MS = "REPRO_SOLVER_BUDGET_MS"

#: Iterations between wall-clock budget checks inside the linearly
#: convergent loops (a per-iteration clock read would dominate the step).
_BUDGET_CHECK_EVERY = 256

#: How long one fired ``solver_stall`` fault sleeps, in milliseconds.
_STALL_SLEEP_MS = 25.0


def escalation_time_budget_ms() -> float:
    """The active escalation time budget, honouring the env override."""
    raw = os.environ.get(ENV_SOLVER_BUDGET_MS, "")
    if raw:
        try:
            value = float(raw)
        except ValueError as exc:
            raise ValueError(
                f"{ENV_SOLVER_BUDGET_MS} must be a number of milliseconds, "
                f"got {raw!r}"
            ) from exc
        if value <= 0:
            raise ValueError(
                f"{ENV_SOLVER_BUDGET_MS} must be positive, got {value}"
            )
        return value
    return ESCALATION_TIME_BUDGET_MS


class QBDConvergenceError(RuntimeError):
    """Raised when an R/G iteration fails to converge.

    The ``iterations`` attribute records how many iterations were spent
    before giving up, so callers can account for abandoned attempts; after
    :func:`r_matrix` exhausts its whole escalation ladder, ``attempts``
    lists every rung that was tried (the failure records of
    ``on_error="collect"`` sweeps surface it).
    """

    def __init__(
        self,
        message: str,
        iterations: int = 0,
        attempts: tuple[str, ...] = (),
    ) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.attempts = tuple(attempts)


def _budget_tick(
    started_at: float,
    time_budget_ms: float | None,
    iteration: int,
    label: str,
) -> None:
    """Fault hook + wall-clock budget check shared by the linear loops.

    Runs every :data:`_BUDGET_CHECK_EVERY` iterations: fires the
    ``solver_stall`` injection point (a deterministic sleep, so budget
    overruns are reproducible in tests) and raises once the elapsed time
    since the ``started_at`` ``perf_counter`` mark exceeds
    ``time_budget_ms``.
    """
    if iteration % _BUDGET_CHECK_EVERY:
        return
    if _fault_fire("solver_stall"):
        time.sleep(_STALL_SLEEP_MS / 1e3)
    if time_budget_ms is not None:
        elapsed_ms = (time.perf_counter() - started_at) * 1e3
        if elapsed_ms > time_budget_ms:
            raise QBDConvergenceError(
                f"{label} exceeded its {time_budget_ms:.0f} ms time budget "
                f"after {iteration} iterations",
                iterations=iteration,
            )


@dataclass(frozen=True)
class SolveStats:
    """Diagnostics of one R-matrix solve.

    Attributes
    ----------
    algorithm:
        Name of the iteration that produced the accepted ``R``
        (``"logarithmic-reduction"``, ``"natural"`` or ``"functional"``).
    iterations:
        Total iterations spent, *including* abandoned attempts (for
        logarithmic reduction one iteration is one doubling step).
    wall_time_ms:
        Wall-clock time of the whole solve in milliseconds.
    spectral_radius:
        ``sp(R)`` of the accepted solution -- the geometric tail decay.
    warm_started:
        True when the accepted ``R`` came from an iteration seeded with a
        caller-provided initial iterate.
    fallbacks:
        Names of the iterations that were tried and abandoned first.
    degraded:
        True when the solution came from the last escalation rung -- the
        truncated dense chain of :func:`repro.qbd.truncated.solve_qbd_truncated`
        -- rather than a matrix-geometric solve.  Figures use this to
        state which points degraded.
    truncation_level:
        The level the dense chain was truncated at when ``degraded``.
    """

    algorithm: str
    iterations: int
    wall_time_ms: float
    spectral_radius: float
    warm_started: bool = False
    fallbacks: tuple[str, ...] = field(default=())
    degraded: bool = False
    truncation_level: int | None = None

    def as_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "algorithm": self.algorithm,
            "iterations": self.iterations,
            "wall_time_ms": self.wall_time_ms,
            "spectral_radius": self.spectral_radius,
            "warm_started": self.warm_started,
            "fallbacks": list(self.fallbacks),
            "degraded": self.degraded,
            "truncation_level": self.truncation_level,
        }


def _closed_classes(a: np.ndarray) -> list[np.ndarray]:
    """Indices of the closed communicating classes of generator ``a``.

    A closed class is a strongly connected component with no transition
    leaving it; the long-run phase process lives on these classes only.
    """
    scale = max(float(np.max(np.abs(np.diag(a)))), 1.0)
    adjacency = (a > 1e-14 * scale)
    np.fill_diagonal(adjacency, False)
    graph = nx.from_numpy_array(adjacency, create_using=nx.DiGraph)
    closed = []
    for component in nx.strongly_connected_components(graph):
        indices = np.fromiter(component, dtype=int)
        outside = np.setdiff1d(np.arange(a.shape[0]), indices)
        if outside.size == 0 or not np.any(adjacency[np.ix_(indices, outside)]):
            closed.append(np.sort(indices))
    return closed


def drift(a0: np.ndarray, a1: np.ndarray, a2: np.ndarray) -> float:
    """Mean drift of the repeating portion: ``theta A0 e - theta A2 e``.

    ``theta`` is the stationary vector of the phase generator
    ``A = A0 + A1 + A2``.  Negative drift means the level process tends
    down, i.e. the QBD is positive recurrent (stable).

    The phase generator may be *reducible* (in the FG/BG model the
    background-serving groups are transient within a level, and with
    several background classes every full-buffer occupancy forms its own
    closed class).  The drift is then evaluated per closed communicating
    class and the worst (largest) value is returned: the QBD is stable iff
    the level process drifts down from every class the phases can settle
    into.
    """
    a0 = np.asarray(a0, float)
    a2 = np.asarray(a2, float)
    a = a0 + np.asarray(a1, float) + a2
    classes = _closed_classes(a)
    if not classes:
        raise ValueError("phase process A0+A1+A2 has no closed class")
    e = np.ones(a.shape[0])
    up = a0 @ e
    down = a2 @ e
    worst = -np.inf
    for indices in classes:
        sub = a[np.ix_(indices, indices)]
        theta = stationary_distribution(sub, method="gth" if sub.shape[0] > 1 else "dense")
        value = float(theta @ up[indices] - theta @ down[indices])
        worst = max(worst, value)
    return worst


def is_stable(a0: np.ndarray, a1: np.ndarray, a2: np.ndarray) -> bool:
    """True when the QBD with these repeating blocks is positive recurrent."""
    return drift(a0, a1, a2) < 0.0


def _functional_impl(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iter: int,
    initial_r: np.ndarray | None = None,
    time_budget_ms: float | None = None,
) -> tuple[np.ndarray, int]:
    """Functional iteration returning ``(R, iterations)``."""
    a0 = np.asarray(a0, float)
    a1 = np.asarray(a1, float)
    a2 = np.asarray(a2, float)
    inv_neg_a1 = np.linalg.inv(-a1)
    if initial_r is None:
        r = np.zeros_like(a0)
    else:
        # A non-negative seed keeps every iterate non-negative ((-A1)^{-1}
        # is non-negative because -A1 is an M-matrix).
        r = np.clip(np.asarray(initial_r, float), 0.0, None)
    started_at = time.perf_counter()
    with np.errstate(over="ignore", invalid="ignore"):
        for it in range(1, max_iter + 1):
            _budget_tick(started_at, time_budget_ms, it, "functional iteration")
            r_next = (a0 + r @ r @ a2) @ inv_neg_a1
            if not np.all(np.isfinite(r_next)):
                raise QBDConvergenceError(
                    "functional iteration overflowed (divergent initial "
                    "iterate?)",
                    iterations=it,
                )
            delta = float(np.max(np.abs(r_next - r)))
            r = r_next
            if delta < tol:
                return r, it
    raise QBDConvergenceError(
        f"functional iteration did not converge in {max_iter} iterations "
        f"(last delta {delta:.3g}); is the QBD stable?",
        iterations=max_iter,
    )


def r_matrix_functional_iteration(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
    initial_r: np.ndarray | None = None,
) -> np.ndarray:
    """Neuts' fixed-point iteration ``R <- -(A0 + R^2 A2) A1^{-1}``.

    Converges monotonically from ``R = 0`` to the minimal solution; an
    ``initial_r`` close to the solution (e.g. the R of an adjacent sweep
    point) cuts the iteration count dramatically.
    """
    return _functional_impl(a0, a1, a2, tol, max_iter, initial_r)[0]


def _newton_impl(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iter: int,
    initial_r: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Newton's method on ``F(R) = A0 + R A1 + R^2 A2`` (Latouche 1994).

    Each step solves the Frechet-derivative equation
    ``H (A1 + R A2) + R H A2 = F(R)`` for the correction ``H`` via
    Kronecker vectorisation (an ``m^2 x m^2`` dense solve) and updates
    ``R <- R - H``.  Quadratically convergent: from ``R = 0`` it needs a
    handful of steps, and from a warm start (the R of a neighbouring sweep
    point) typically 3-7.
    """
    a0 = np.asarray(a0, float)
    a1 = np.asarray(a1, float)
    a2 = np.asarray(a2, float)
    m = a0.shape[0]
    r = np.zeros_like(a0) if initial_r is None else np.clip(
        np.asarray(initial_r, float), 0.0, None
    )
    eye = np.eye(m)
    for it in range(1, max_iter + 1):
        residual = a0 + r @ a1 + r @ r @ a2
        lhs = np.kron((a1 + r @ a2).T, eye) + np.kron(a2.T, r)  # noqa: RL016 -- vec-trick: vec(AXB) = (B.T kron A) vec(X); the transposes build the Frechet derivative, not a QBD block
        try:
            h = np.linalg.solve(lhs, residual.flatten("F")).reshape(
                (m, m), order="F"
            )
        except np.linalg.LinAlgError:
            raise QBDConvergenceError(
                "Newton step hit a singular Frechet derivative",
                iterations=it,
            ) from None
        r = r - h
        if not np.all(np.isfinite(r)):
            raise QBDConvergenceError(
                "Newton iteration diverged (bad initial iterate?)",
                iterations=it,
            )
        if float(np.max(np.abs(h))) < tol:
            return r, it
    raise QBDConvergenceError(
        f"Newton iteration did not converge in {max_iter} steps; "
        "is the QBD stable?",
        iterations=max_iter,
    )


def r_matrix_newton(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
    max_iter: int = NEWTON_MAX_ITER,
    initial_r: np.ndarray | None = None,
) -> np.ndarray:
    """R via Newton's method, optionally warm-started from ``initial_r``."""
    return _newton_impl(a0, a1, a2, tol, max_iter, initial_r)[0]


def _natural_impl(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iter: int,
    time_budget_ms: float | None = None,
) -> tuple[np.ndarray, int]:
    """Natural (U-based) iteration returning ``(G, iterations)``."""
    a0 = np.asarray(a0, float)
    a1 = np.asarray(a1, float)
    a2 = np.asarray(a2, float)
    g = np.zeros_like(a0)
    started_at = time.perf_counter()
    for it in range(1, max_iter + 1):
        _budget_tick(started_at, time_budget_ms, it, "natural iteration")
        g_next = np.linalg.solve(-(a1 + a0 @ g), a2)
        delta = float(np.max(np.abs(g_next - g)))
        g = g_next
        if delta < tol:
            return g, it
    raise QBDConvergenceError(
        f"natural iteration did not converge in {max_iter} iterations "
        f"(last delta {delta:.3g}); is the QBD stable?",
        iterations=max_iter,
    )


def g_matrix_natural_iteration(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> np.ndarray:
    """U-based iteration ``G <- (-(A1 + A0 G))^{-1} A2``."""
    return _natural_impl(a0, a1, a2, tol, max_iter)[0]


def _logred_impl(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    max_iter: int,
) -> tuple[np.ndarray, int]:
    """Logarithmic reduction returning ``(G, doubling steps)``."""
    a0 = np.asarray(a0, float)
    a1 = np.asarray(a1, float)
    a2 = np.asarray(a2, float)
    m = a0.shape[0]
    inv_neg_a1 = np.linalg.inv(-a1)
    h = inv_neg_a1 @ a0
    low = inv_neg_a1 @ a2
    g = low.copy()
    t = h.copy()
    ones = np.ones(m)
    with np.errstate(over="ignore", invalid="ignore"):
        for it in range(1, max_iter + 1):
            if _fault_fire("logred_overflow"):
                # Injected replica of the real overflow below: same
                # exception type and message shape, so every downstream
                # escalation path is exercised exactly as in production.
                raise QBDConvergenceError(
                    "logarithmic reduction overflowed (injected fault "
                    "logred_overflow); use the natural or functional "
                    "iteration",
                    iterations=it,
                )
            u = h @ low + low @ h
            m_inv = np.linalg.inv(np.eye(m) - u)
            h = m_inv @ (h @ h)
            low = m_inv @ (low @ low)
            g += t @ low
            t = t @ h
            if not np.all(np.isfinite(g)):
                raise QBDConvergenceError(
                    "logarithmic reduction overflowed (nearly decomposable "
                    "phase process); use the natural or functional iteration",
                    iterations=it,
                )
            if float(np.max(np.abs(ones - g @ ones))) < tol:
                return g, it
    raise QBDConvergenceError(
        f"logarithmic reduction did not converge in {max_iter} doublings; "
        "is the QBD stable and irreducible?",
        iterations=max_iter,
    )


def g_matrix_logarithmic_reduction(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
    max_iter: int = 64,
) -> np.ndarray:
    """Logarithmic reduction (Latouche & Ramaswami), quadratic convergence.

    Operates on the uniformized/probabilistic form: with
    ``H = (-A1)^{-1} A0`` (up) and ``L = (-A1)^{-1} A2`` (down),

    iterate ``U = H L + L H``; ``H <- (I-U)^{-1} H^2``;
    ``L <- (I-U)^{-1} L^2``; accumulating ``G += T L`` with ``T`` the
    product of the successive ``H`` factors.
    """
    return _logred_impl(a0, a1, a2, tol, max_iter)[0]


def r_matrix_from_g(
    a0: np.ndarray, a1: np.ndarray, a2: np.ndarray, g: np.ndarray
) -> np.ndarray:
    """Recover ``R = A0 (-(A1 + A0 G))^{-1}`` from the G matrix."""
    a0 = np.asarray(a0, float)
    u = np.asarray(a1, float) + a0 @ np.asarray(g, float)
    return a0 @ np.linalg.inv(-u)


def r_matrix_logarithmic_reduction(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
) -> np.ndarray:
    """R via logarithmic reduction of G (the recommended default)."""
    g = g_matrix_logarithmic_reduction(a0, a1, a2, tol=tol)
    return r_matrix_from_g(a0, a1, a2, g)


def r_matrix_natural_iteration(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
) -> np.ndarray:
    """R via the U-based natural iteration on G."""
    g = g_matrix_natural_iteration(a0, a1, a2, tol=tol)
    return r_matrix_from_g(a0, a1, a2, g)


def _r_logred_impl(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    initial_r: np.ndarray | None = None,
    time_budget_ms: float | None = None,
) -> tuple[np.ndarray, int]:
    # Quadratically convergent in at most 64 doublings -- no time budget
    # needed (each doubling is a handful of dense m x m products).
    g, iters = _logred_impl(a0, a1, a2, tol, 64)
    return r_matrix_from_g(a0, a1, a2, g), iters


def _r_natural_impl(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    initial_r: np.ndarray | None = None,
    time_budget_ms: float | None = None,
) -> tuple[np.ndarray, int]:
    g, iters = _natural_impl(
        a0, a1, a2, tol, DEFAULT_MAX_ITER, time_budget_ms=time_budget_ms
    )
    return r_matrix_from_g(a0, a1, a2, g), iters


def _r_functional_impl(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    initial_r: np.ndarray | None = None,
    time_budget_ms: float | None = None,
) -> tuple[np.ndarray, int]:
    max_iter = DEFAULT_MAX_ITER if initial_r is None else WARM_MAX_ITER
    return _functional_impl(
        a0, a1, a2, tol, max_iter, initial_r, time_budget_ms=time_budget_ms
    )


def _r_newton_impl(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float,
    initial_r: np.ndarray | None = None,
    time_budget_ms: float | None = None,
) -> tuple[np.ndarray, int]:
    # Newton either converges in a few dozen quadratic steps or raises --
    # the 64-step cap already bounds it, so no time budget.
    return _newton_impl(a0, a1, a2, tol, NEWTON_MAX_ITER, initial_r)


_ALGORITHMS = {
    "logarithmic-reduction": _r_logred_impl,
    "natural": _r_natural_impl,
    "functional": _r_functional_impl,
    "newton": _r_newton_impl,
}


def _spectral_radius(r: np.ndarray) -> float:
    return float(np.max(np.abs(np.linalg.eigvals(r))))


def r_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    algorithm: str = "logarithmic-reduction",
    tol: float = DEFAULT_TOL,
    initial_r: np.ndarray | None = None,
    return_stats: bool = False,
    blocks_validated: bool = False,
    time_budget_ms: float | None = None,
) -> np.ndarray | tuple[np.ndarray, SolveStats]:
    """Minimal non-negative solution of ``A0 + R A1 + R^2 A2 = 0``.

    Parameters
    ----------
    algorithm:
        One of ``"logarithmic-reduction"`` (default, quadratic),
        ``"newton"`` (quadratic, seedable), ``"natural"`` or
        ``"functional"``.
    initial_r:
        Optional warm-start iterate (e.g. the R matrix of a nearby
        parameter point).  A warm start runs a *seeded* iteration on R --
        Newton's method for phase counts up to ``NEWTON_MAX_PHASES``, the
        functional iteration beyond that (the G-based schemes cannot be
        seeded) -- and falls back to a cold solve with the requested
        ``algorithm`` when the warm iteration fails to converge or does
        not certify minimality (``sp(R) < 1``).  The accepted result
        therefore always agrees with a cold solve to ``tol``.
    return_stats:
        When True, return ``(R, SolveStats)`` instead of just ``R``.
    blocks_validated:
        Caller's certificate that ``(a0, a1, a2)`` already passed the
        generator/split precondition and are frozen read-only -- true for
        blocks taken off a :class:`~repro.qbd.structure.QBDProcess`, whose
        constructor validates exactly these invariants.  Skips the
        redundant re-validation; the R postcondition still runs.  Never
        pass True for matrices assembled by hand.
    time_budget_ms:
        Wall-time budget of the linearly convergent escalation rungs
        (functional / natural).  Defaults to
        :func:`escalation_time_budget_ms` (30 s, overridable via
        ``REPRO_SOLVER_BUDGET_MS``); a rung that exceeds it raises
        :class:`QBDConvergenceError` and the ladder moves on.  The
        quadratic rungs (logarithmic reduction, Newton) are bounded by
        their step caps instead.

    Raises
    ------
    ValueError
        For an unknown algorithm name or an unstable QBD.
    QBDConvergenceError
        If every iteration fails to converge; its ``attempts`` attribute
        then lists every abandoned rung.
    """
    if algorithm not in _ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_ALGORITHMS)}"
        )
    if not blocks_validated and contracts_enabled():
        # The repeating blocks must form a generator row-split into
        # non-negative up/down parts; a violated precondition here would
        # otherwise converge to plausible-looking garbage.
        a0_arr = np.asarray(a0, float)
        a1_arr = np.asarray(a1, float)
        a2_arr = np.asarray(a2, float)
        check_nonnegative(a0_arr, "A0")
        check_nonnegative(a2_arr, "A2")
        check_generator(a0_arr + a1_arr + a2_arr, "A0+A1+A2")
    if not is_stable(a0, a1, a2):
        raise ValueError(
            f"QBD is not positive recurrent (drift {drift(a0, a1, a2):.6g} >= 0); "
            "the stationary distribution does not exist"
        )
    if time_budget_ms is None:
        time_budget_ms = escalation_time_budget_ms()
    start = time.perf_counter()
    total_iterations = 0
    attempted: list[str] = []
    r = None
    used = algorithm
    warm_started = False

    if initial_r is not None:
        initial_r = np.asarray(initial_r, float)
        if initial_r.shape != np.asarray(a0).shape:
            # Unconditional (not gated on contracts_enabled): a wrong-shape
            # seed would crash deep inside the iteration otherwise.
            raise ContractViolation(
                "check_shape",
                "initial_r",
                f"expected shape {np.asarray(a0).shape}, got {initial_r.shape}",
            )
        check_finite(initial_r, "initial_r")
        if initial_r.shape[0] <= NEWTON_MAX_PHASES:
            warm_impl, warm_name = _r_newton_impl, "newton"
        else:
            warm_impl, warm_name = _r_functional_impl, "functional"
        try:
            cand, iters = warm_impl(
                a0, a1, a2, tol, initial_r, time_budget_ms=time_budget_ms
            )
            total_iterations += iters
            # The minimal solution is the unique one with sp(R) < 1 (the
            # QBD is positive recurrent here), so this certifies that the
            # warm start did not land on a spurious fixed point.  The
            # tiered certificate (inf-norm, then Collatz-Wielandt, then
            # eigenvalues) avoids a full eigenvalue solve on every warm
            # point; its Collatz-Wielandt tiers need a non-negative
            # iterate, so reject negative entries first.
            if not np.any(cand < -1e-9) and certify_spectral_radius_below_one(
                np.clip(cand, 0.0, None)
            ):
                r, used, warm_started = cand, warm_name, True
            else:
                attempted.append(f"{warm_name}(warm)")
        except QBDConvergenceError as exc:
            total_iterations += exc.iterations
            attempted.append(f"{warm_name}(warm)")

    if r is None:
        try:
            r, iters = _ALGORITHMS[algorithm](
                a0, a1, a2, tol, time_budget_ms=time_budget_ms
            )
            total_iterations += iters
            used = algorithm
        except QBDConvergenceError as exc:
            total_iterations += exc.iterations
            attempted.append(algorithm)
            # Nearly decomposable phase processes can overflow logarithmic
            # reduction; the linearly convergent iterations are slower but
            # unconditionally monotone, so fall back before giving up.
            # Functional iteration first: cheapest per step and monotone.
            # Each fallback rung runs under the escalation time budget.
            order = ["functional", "natural", "logarithmic-reduction"]
            r = None
            for name in (n for n in order if n != algorithm):
                try:
                    r, iters = _ALGORITHMS[name](
                        a0, a1, a2, tol, time_budget_ms=time_budget_ms
                    )
                    total_iterations += iters
                    used = name
                    break
                except QBDConvergenceError as fallback_exc:
                    total_iterations += fallback_exc.iterations
                    attempted.append(name)
            if r is None:
                # The whole ladder failed: attach the attempt log so the
                # caller's failure record can state every rung tried.
                exc.attempts = tuple(attempted)
                raise
    # Clip round-off negatives; R must be entrywise non-negative.
    if np.any(r < -1e-9):
        raise QBDConvergenceError(
            f"computed R has a significantly negative entry ({r.min():.3g})"
        )
    r = np.clip(r, 0.0, None)
    # Postcondition: the accepted R -- cold, warm-started or a fallback --
    # must be the minimal solution, i.e. finite, non-negative, sp(R) < 1.
    check_r_matrix(r, "R")
    if not return_stats:
        return r
    stats = SolveStats(
        algorithm=used,
        iterations=total_iterations,
        wall_time_ms=(time.perf_counter() - start) * 1e3,
        spectral_radius=_spectral_radius(r),
        warm_started=warm_started,
        fallbacks=tuple(attempted),
    )
    return r, stats
