"""R- and G-matrix algorithms for QBD processes.

``R`` is the minimal non-negative solution of ``A0 + R A1 + R^2 A2 = 0``;
``G`` the minimal non-negative solution of ``A2 + A1 G + A0 G^2 = 0``.
Three algorithms are provided:

* functional iteration on R (Neuts' classic fixed point) -- simple,
  linearly convergent;
* "natural" U-based iteration on G -- linearly convergent with better
  constants;
* logarithmic reduction on G (Latouche & Ramaswami 1993) -- quadratically
  convergent, the default.

All operate on the CTMC (generator) form of the blocks.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.markov.stationary import stationary_distribution

__all__ = [
    "drift",
    "is_stable",
    "r_matrix",
    "r_matrix_functional_iteration",
    "r_matrix_natural_iteration",
    "r_matrix_logarithmic_reduction",
    "r_matrix_from_g",
    "g_matrix_logarithmic_reduction",
]

DEFAULT_TOL = 1e-12
DEFAULT_MAX_ITER = 2_000_000


class QBDConvergenceError(RuntimeError):
    """Raised when an R/G iteration fails to converge."""


def _closed_classes(a: np.ndarray) -> list[np.ndarray]:
    """Indices of the closed communicating classes of generator ``a``.

    A closed class is a strongly connected component with no transition
    leaving it; the long-run phase process lives on these classes only.
    """
    scale = max(float(np.max(np.abs(np.diag(a)))), 1.0)
    adjacency = (a > 1e-14 * scale)
    np.fill_diagonal(adjacency, False)
    graph = nx.from_numpy_array(adjacency, create_using=nx.DiGraph)
    closed = []
    for component in nx.strongly_connected_components(graph):
        indices = np.fromiter(component, dtype=int)
        outside = np.setdiff1d(np.arange(a.shape[0]), indices)
        if outside.size == 0 or not np.any(adjacency[np.ix_(indices, outside)]):
            closed.append(np.sort(indices))
    return closed


def drift(a0: np.ndarray, a1: np.ndarray, a2: np.ndarray) -> float:
    """Mean drift of the repeating portion: ``theta A0 e - theta A2 e``.

    ``theta`` is the stationary vector of the phase generator
    ``A = A0 + A1 + A2``.  Negative drift means the level process tends
    down, i.e. the QBD is positive recurrent (stable).

    The phase generator may be *reducible* (in the FG/BG model the
    background-serving groups are transient within a level, and with
    several background classes every full-buffer occupancy forms its own
    closed class).  The drift is then evaluated per closed communicating
    class and the worst (largest) value is returned: the QBD is stable iff
    the level process drifts down from every class the phases can settle
    into.
    """
    a0 = np.asarray(a0, float)
    a2 = np.asarray(a2, float)
    a = a0 + np.asarray(a1, float) + a2
    classes = _closed_classes(a)
    if not classes:
        raise ValueError("phase process A0+A1+A2 has no closed class")
    e = np.ones(a.shape[0])
    up = a0 @ e
    down = a2 @ e
    worst = -np.inf
    for indices in classes:
        sub = a[np.ix_(indices, indices)]
        theta = stationary_distribution(sub, method="gth" if sub.shape[0] > 1 else "dense")
        value = float(theta @ up[indices] - theta @ down[indices])
        worst = max(worst, value)
    return worst


def is_stable(a0: np.ndarray, a1: np.ndarray, a2: np.ndarray) -> bool:
    """True when the QBD with these repeating blocks is positive recurrent."""
    return drift(a0, a1, a2) < 0.0


def r_matrix_functional_iteration(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> np.ndarray:
    """Neuts' fixed-point iteration ``R <- -(A0 + R^2 A2) A1^{-1}``.

    Converges monotonically from ``R = 0`` to the minimal solution.
    """
    a0 = np.asarray(a0, float)
    a1 = np.asarray(a1, float)
    a2 = np.asarray(a2, float)
    inv_neg_a1 = np.linalg.inv(-a1)
    r = np.zeros_like(a0)
    for _ in range(max_iter):
        r_next = (a0 + r @ r @ a2) @ inv_neg_a1
        delta = float(np.max(np.abs(r_next - r)))
        r = r_next
        if delta < tol:
            return r
    raise QBDConvergenceError(
        f"functional iteration did not converge in {max_iter} iterations "
        f"(last delta {delta:.3g}); is the QBD stable?"
    )


def g_matrix_natural_iteration(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> np.ndarray:
    """U-based iteration ``G <- (-(A1 + A0 G))^{-1} A2``."""
    a0 = np.asarray(a0, float)
    a1 = np.asarray(a1, float)
    a2 = np.asarray(a2, float)
    g = np.zeros_like(a0)
    for _ in range(max_iter):
        g_next = np.linalg.solve(-(a1 + a0 @ g), a2)
        delta = float(np.max(np.abs(g_next - g)))
        g = g_next
        if delta < tol:
            return g
    raise QBDConvergenceError(
        f"natural iteration did not converge in {max_iter} iterations "
        f"(last delta {delta:.3g}); is the QBD stable?"
    )


def g_matrix_logarithmic_reduction(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
    max_iter: int = 64,
) -> np.ndarray:
    """Logarithmic reduction (Latouche & Ramaswami), quadratic convergence.

    Operates on the uniformized/probabilistic form: with
    ``H = (-A1)^{-1} A0`` (up) and ``L = (-A1)^{-1} A2`` (down),

    iterate ``U = H L + L H``; ``H <- (I-U)^{-1} H^2``;
    ``L <- (I-U)^{-1} L^2``; accumulating ``G += T L`` with ``T`` the
    product of the successive ``H`` factors.
    """
    a0 = np.asarray(a0, float)
    a1 = np.asarray(a1, float)
    a2 = np.asarray(a2, float)
    m = a0.shape[0]
    inv_neg_a1 = np.linalg.inv(-a1)
    h = inv_neg_a1 @ a0
    low = inv_neg_a1 @ a2
    g = low.copy()
    t = h.copy()
    ones = np.ones(m)
    with np.errstate(over="ignore", invalid="ignore"):
        for _ in range(max_iter):
            u = h @ low + low @ h
            m_inv = np.linalg.inv(np.eye(m) - u)
            h = m_inv @ (h @ h)
            low = m_inv @ (low @ low)
            g += t @ low
            t = t @ h
            if not np.all(np.isfinite(g)):
                raise QBDConvergenceError(
                    "logarithmic reduction overflowed (nearly decomposable "
                    "phase process); use the natural or functional iteration"
                )
            if float(np.max(np.abs(ones - g @ ones))) < tol:
                return g
    raise QBDConvergenceError(
        f"logarithmic reduction did not converge in {max_iter} doublings; "
        "is the QBD stable and irreducible?"
    )


def r_matrix_from_g(
    a0: np.ndarray, a1: np.ndarray, a2: np.ndarray, g: np.ndarray
) -> np.ndarray:
    """Recover ``R = A0 (-(A1 + A0 G))^{-1}`` from the G matrix."""
    a0 = np.asarray(a0, float)
    u = np.asarray(a1, float) + a0 @ np.asarray(g, float)
    return a0 @ np.linalg.inv(-u)


def r_matrix_logarithmic_reduction(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
) -> np.ndarray:
    """R via logarithmic reduction of G (the recommended default)."""
    g = g_matrix_logarithmic_reduction(a0, a1, a2, tol=tol)
    return r_matrix_from_g(a0, a1, a2, g)


def r_matrix_natural_iteration(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tol: float = DEFAULT_TOL,
) -> np.ndarray:
    """R via the U-based natural iteration on G."""
    g = g_matrix_natural_iteration(a0, a1, a2, tol=tol)
    return r_matrix_from_g(a0, a1, a2, g)


_ALGORITHMS = {
    "logarithmic-reduction": r_matrix_logarithmic_reduction,
    "natural": r_matrix_natural_iteration,
    "functional": r_matrix_functional_iteration,
}


def r_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    algorithm: str = "logarithmic-reduction",
    tol: float = DEFAULT_TOL,
) -> np.ndarray:
    """Minimal non-negative solution of ``A0 + R A1 + R^2 A2 = 0``.

    Parameters
    ----------
    algorithm:
        One of ``"logarithmic-reduction"`` (default, quadratic),
        ``"natural"`` or ``"functional"``.

    Raises
    ------
    ValueError
        For an unknown algorithm name or an unstable QBD.
    QBDConvergenceError
        If the iteration fails to converge.
    """
    if algorithm not in _ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_ALGORITHMS)}"
        )
    if not is_stable(a0, a1, a2):
        raise ValueError(
            f"QBD is not positive recurrent (drift {drift(a0, a1, a2):.6g} >= 0); "
            "the stationary distribution does not exist"
        )
    try:
        r = _ALGORITHMS[algorithm](a0, a1, a2, tol=tol)
    except QBDConvergenceError:
        # Nearly decomposable phase processes can overflow logarithmic
        # reduction; the linearly convergent iterations are slower but
        # unconditionally monotone, so fall back before giving up.
        # Functional iteration first: cheapest per step and monotone.
        order = ["functional", "natural", "logarithmic-reduction"]
        fallbacks = [_ALGORITHMS[n] for n in order if n != algorithm]
        r = None
        for fallback in fallbacks:
            try:
                r = fallback(a0, a1, a2, tol=tol)
                break
            except QBDConvergenceError:
                continue
        if r is None:
            raise
    # Clip round-off negatives; R must be entrywise non-negative.
    if np.any(r < -1e-9):
        raise QBDConvergenceError(
            f"computed R has a significantly negative entry ({r.min():.3g})"
        )
    return np.clip(r, 0.0, None)
