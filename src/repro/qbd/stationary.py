"""Stationary distribution of a QBD with closed-form level sums."""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.linalg

from repro.contracts.checks import (
    check_probability_vector,
    contracts_enabled,
)
from repro.contracts.errors import ContractViolation
from repro.qbd.boundary import solve_boundary
from repro.qbd.rmatrix import QBDConvergenceError, SolveStats, r_matrix
from repro.qbd.structure import QBDProcess

__all__ = ["QBDStationaryDistribution", "solve_qbd"]


class QBDStationaryDistribution:
    """Stationary distribution ``(pi_0, pi_1 R^{k-1})`` of a QBD.

    Provides the closed-form sums used by all model metrics:

    * total repeating mass ``sum_{k>=1} pi_k = pi_1 (I-R)^{-1}``,
    * level-weighted mass ``sum_{k>=1} k pi_k = pi_1 (I-R)^{-2}``,

    plus per-level access and tail sums for diagnostics.
    """

    def __init__(
        self,
        qbd: QBDProcess,
        r: np.ndarray,
        pi_boundary: np.ndarray,
        pi_first: np.ndarray,
        solve_stats: SolveStats | None = None,
    ) -> None:
        self._qbd = qbd
        self._r = np.asarray(r, dtype=float)
        self._pi_boundary = np.asarray(pi_boundary, dtype=float)
        self._pi_first = np.asarray(pi_first, dtype=float)
        self._solve_stats = solve_stats
        # Memoized levels pi_1, pi_2, ... built by vector recurrence
        # pi_{k+1} = pi_k R; grows on demand (level/tail_mass/residual).
        self._levels: list[np.ndarray] = [self._pi_first]

    def __setstate__(self, state: dict) -> None:
        # Solutions pickled before the LU refactor carry neither the level
        # memo nor the LU slot; re-derive what is missing and drop the
        # stale dense-inverse cache so old on-disk cache entries keep
        # working.
        self.__dict__.update(state)
        self.__dict__.pop("_inv_i_minus_r", None)
        self.__dict__.setdefault("_levels", [self._pi_first])

    @property
    def qbd(self) -> QBDProcess:
        """The process this distribution solves."""
        return self._qbd

    @property
    def solve_stats(self) -> SolveStats | None:
        """Diagnostics of the R-matrix solve that produced this
        distribution (``None`` when R was supplied directly)."""
        return self._solve_stats

    @property
    def r(self) -> np.ndarray:
        """The rate matrix R."""
        return self._r

    @property
    def boundary(self) -> np.ndarray:
        """Stationary probabilities of the boundary states."""
        return self._pi_boundary

    @cached_property
    def _i_minus_r_lu(self) -> tuple[np.ndarray, np.ndarray]:
        """LU factorization of ``I - R``, shared by every level sum.

        Factoring once replaces the repeated ``inv(I-R)``-sized work of
        ``repeating_mass``/``repeating_level_weighted``/``tail_mass`` with
        one O(m^3) factorization plus O(m^2) triangular solves.
        """
        return scipy.linalg.lu_factor(np.eye(self._r.shape[0]) - self._r)

    def _apply_inv_i_minus_r(self, row: np.ndarray) -> np.ndarray:
        """``row (I-R)^{-1}`` via the cached LU (transposed solve)."""
        return scipy.linalg.lu_solve(self._i_minus_r_lu, row, trans=1)

    def level(self, k: int) -> np.ndarray:
        """Stationary probabilities of repeating level ``k`` (k >= 1)."""
        if k < 1:
            raise ValueError(f"repeating levels are numbered from 1, got {k}")
        while len(self._levels) < k:
            self._levels.append(self._levels[-1] @ self._r)
        return self._levels[k - 1]

    @cached_property
    def repeating_mass(self) -> np.ndarray:
        """``sum_{k>=1} pi_k`` -- total phase mass of the repeating portion."""
        return self._apply_inv_i_minus_r(self._pi_first)

    @cached_property
    def repeating_level_weighted(self) -> np.ndarray:
        """``sum_{k>=1} k pi_k = pi_1 (I-R)^{-2}``."""
        return self._apply_inv_i_minus_r(self.repeating_mass)

    def tail_mass(self, from_level: int) -> np.ndarray:
        """``sum_{k>=from_level} pi_k`` for ``from_level >= 1``."""
        if from_level < 1:
            raise ValueError(f"from_level must be >= 1, got {from_level}")
        return self._apply_inv_i_minus_r(self.level(from_level))

    def _seed_level_sums(
        self, repeating_mass: np.ndarray, repeating_level_weighted: np.ndarray
    ) -> None:
        """Pre-populate the cached level sums.

        The batched kernel (:mod:`repro.qbd.batched`) computes the
        ``(I-R)^{-1}`` sums for a whole stack of solutions in one batched
        solve; seeding the ``cached_property`` slots here lets the per-item
        distributions reuse that work.  Seeded values must agree with the
        lazy LU path to solver accuracy -- they are the same linear systems
        solved by a different (batched) factorization.
        """
        self.__dict__["repeating_mass"] = repeating_mass
        self.__dict__["repeating_level_weighted"] = repeating_level_weighted

    @cached_property
    def total_mass(self) -> float:
        """Should equal 1; exposed for diagnostics."""
        return float(self._pi_boundary.sum() + self.repeating_mass.sum())

    @cached_property
    def spectral_radius(self) -> float:
        """Spectral radius of R (the geometric tail decay rate)."""
        return float(np.max(np.abs(np.linalg.eigvals(self._r))))

    def residual(self, levels: int = 6) -> float:
        """Max balance-equation residual over the boundary and the first
        ``levels`` repeating levels -- a solution-quality diagnostic."""
        qbd = self._qbd
        res = self._pi_boundary @ qbd.b00 + self.level(1) @ qbd.b10
        worst = float(np.max(np.abs(res)))
        res = self._pi_boundary @ qbd.b01 + self.level(1) @ qbd.a1 + self.level(2) @ qbd.a2
        worst = max(worst, float(np.max(np.abs(res))))
        for k in range(2, levels + 1):
            res = (
                self.level(k - 1) @ qbd.a0
                + self.level(k) @ qbd.a1
                + self.level(k + 1) @ qbd.a2
            )
            worst = max(worst, float(np.max(np.abs(res))))
        return worst

    def __repr__(self) -> str:
        return (
            f"QBDStationaryDistribution(boundary_mass={self._pi_boundary.sum():.6g}, "
            f"spectral_radius={self.spectral_radius:.6g})"
        )


def solve_qbd(
    qbd: QBDProcess,
    algorithm: str = "logarithmic-reduction",
    tol: float = 1e-12,
    initial_r: np.ndarray | None = None,
    escalate: bool = False,
    time_budget_ms: float | None = None,
) -> QBDStationaryDistribution:
    """Solve a QBD end to end: R matrix, boundary system, stationary object.

    ``initial_r`` warm-starts the R iteration (see
    :func:`repro.qbd.rmatrix.r_matrix`); the returned distribution carries
    the per-solve :class:`~repro.qbd.rmatrix.SolveStats`.

    With ``escalate=True`` the solve gains a last rung: when every
    matrix-geometric iteration fails (``QBDConvergenceError``) or the
    boundary system is singular, the QBD is re-solved as an adaptively
    truncated dense chain (:func:`repro.qbd.truncated.solve_qbd_truncated`)
    and the returned ``solve_stats`` is flagged ``degraded=True``.  The
    unstable-QBD ``ValueError`` always propagates -- truncating an
    unstable chain would fabricate a number where no stationary regime
    exists.  ``time_budget_ms`` bounds the linearly convergent rungs
    inside :func:`~repro.qbd.rmatrix.r_matrix`.
    """
    # QBDProcess.__post_init__ already validated the generator row-split
    # and froze the blocks read-only, so that precondition cannot go
    # stale -- certify it instead of re-validating on every solve.
    try:
        r, stats = r_matrix(
            qbd.a0, qbd.a1, qbd.a2, algorithm=algorithm, tol=tol,
            initial_r=initial_r, return_stats=True, blocks_validated=True,
            time_budget_ms=time_budget_ms,
        )
        pi_boundary, pi_first = solve_boundary(qbd, r)
    except (QBDConvergenceError, np.linalg.LinAlgError) as exc:
        if not escalate:
            raise
        # Imported lazily: truncated.py builds QBDStationaryDistribution
        # instances, so a module-level import would be circular.
        from repro.qbd.truncated import solve_qbd_truncated

        if isinstance(exc, QBDConvergenceError):
            failed_rungs = exc.attempts or (algorithm,)
        else:
            failed_rungs = (algorithm, "boundary")
        return solve_qbd_truncated(qbd, fallbacks=tuple(failed_rungs))
    distribution = QBDStationaryDistribution(
        qbd, r, pi_boundary, pi_first, solve_stats=stats
    )
    if contracts_enabled():
        # The R preconditions/postconditions ran inside r_matrix; here the
        # end-to-end invariant is that the assembled distribution is one:
        # non-negative boundary mass and total mass 1 (the level sums are
        # closed forms in R, so a bad boundary solve shows up here).
        # Fast path: two vector mins and the (cached) total mass; NaNs
        # fail the comparisons and land in the diagnostic branch.
        least = min(float(pi_boundary.min()), float(pi_first.min()))
        total = distribution.total_mass
        if not (least > -1e-6) or not (abs(total - 1.0) <= 1e-8):
            check_probability_vector(pi_boundary, "pi_boundary", total=None)
            check_probability_vector(pi_first, "pi_1", total=None)
            raise ContractViolation(
                "check_solution",
                "QBD stationary distribution",
                f"total mass {total:.10g}, expected 1",
            )
    return distribution
