"""Baseline (ratchet) support: land strict rules without big-bang cleanups.

A baseline records the *accepted* violation count per ``(file, rule)``
pair.  ``--baseline .reprolint-baseline.json`` subtracts those from the
report, so existing debt stays visible in the committed file (reviewable
line by line) while any **new** violation of the same rule in the same
file still fails the build.  Counts ratchet down implicitly: fixing a
violation leaves the stale allowance unused, and ``--update-baseline``
rewrites the file to the current state (dropping the slack).

Counts are keyed by file+rule rather than line numbers so unrelated
edits do not churn the baseline.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

from tools.reprolint.core import Violation

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "apply_baseline",
    "load_baseline",
    "update_baseline",
]

DEFAULT_BASELINE_NAME = ".reprolint-baseline.json"
_VERSION = 1

Baseline = dict[str, dict[str, int]]


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; missing/invalid files mean an empty baseline."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        return {}
    entries = data.get("entries")
    if not isinstance(entries, dict):
        return {}
    baseline: Baseline = {}
    for file_path, by_code in entries.items():
        if not isinstance(by_code, dict):
            continue
        baseline[file_path] = {
            code: int(count)
            for code, count in by_code.items()
            if isinstance(count, int) and count > 0
        }
    return baseline


def apply_baseline(
    violations: Sequence[Violation], baseline: Baseline
) -> tuple[list[Violation], int]:
    """Drop baselined violations; returns ``(new_violations, n_dropped)``.

    Violations are consumed in report order, so the baseline masks the
    first N occurrences of a rule in a file and surfaces the rest.
    """
    budget = {
        (file_path, code): count
        for file_path, by_code in baseline.items()
        for code, count in by_code.items()
    }
    kept: list[Violation] = []
    dropped = 0
    for violation in violations:
        key = (violation.path, violation.code)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            dropped += 1
        else:
            kept.append(violation)
    return kept, dropped


def _in_scope(file_path: str, roots: Sequence[Path]) -> bool:
    resolved = Path(file_path).resolve()
    for root in roots:
        root_resolved = root.resolve()
        if resolved == root_resolved:
            return True
        try:
            resolved.relative_to(root_resolved)
            return True
        except ValueError:
            continue
    return False


def update_baseline(
    path: Path,
    violations: Sequence[Violation],
    *,
    linted_paths: Sequence[Path] | None = None,
) -> Baseline:
    """Write the baseline matching the current violations; returns it.

    Entries for files inside the linted scope are replaced by the
    current counts, so ``(file, rule)`` keys whose count has reached
    zero -- fixed violations, renamed rules, deleted files -- are
    **pruned** rather than lingering forever.  When ``linted_paths`` is
    given, entries for files *outside* that scope are preserved
    unchanged: a scoped run (``--update-baseline src``) must not
    silently discard debt it did not re-measure.
    """
    entries: Baseline = {}
    if linted_paths is not None:
        roots = [Path(p) for p in linted_paths]
        for file_path, by_code in load_baseline(path).items():
            if by_code and not _in_scope(file_path, roots):
                entries[file_path] = dict(by_code)
    for violation in violations:
        by_code = entries.setdefault(violation.path, {})
        by_code[violation.code] = by_code.get(violation.code, 0) + 1
    payload = {
        "version": _VERSION,
        "comment": (
            "Accepted reprolint debt, counted per (file, rule). New "
            "violations beyond these counts still fail; regenerate with "
            "--update-baseline after reviewed cleanups."
        ),
        "entries": {
            file_path: dict(sorted(by_code.items()))
            for file_path, by_code in sorted(entries.items())
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entries
