"""Report renderers: plain text, GitHub workflow commands, SARIF 2.1.0.

``render_sarif`` emits a static-analysis log suitable for GitHub code
scanning upload (one run, one ``reportingDescriptor`` per rule, one
``result`` per violation with a physical location).  Columns follow the
SARIF convention of 1-based ``startLine``/``startColumn``.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import PurePath
from typing import Any

from tools.reprolint.core import Violation, render
from tools.reprolint.docs import help_text
from tools.reprolint.rules import RULE_SUMMARIES

__all__ = ["FORMATS", "render_github", "render_report", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_URI = "https://github.com/repro/repro/tree/main/tools/reprolint"


def render_github(violations: Sequence[Violation]) -> str:
    """GitHub Actions workflow commands (inline PR annotations)."""
    lines = [
        f"::error file={v.path},line={v.line},col={v.col + 1},"
        f"title=reprolint {v.code}::{v.message}"
        for v in violations
    ]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"reprolint: {len(violations)} {noun}")
    return "\n".join(lines)


def _artifact_uri(path: str) -> str:
    pure = PurePath(path)
    if pure.is_absolute():
        return pure.as_posix()
    return "/".join(pure.parts)


def sarif_log(violations: Sequence[Violation]) -> dict[str, Any]:
    """The SARIF 2.1.0 log object for ``violations``."""
    rules = []
    for code, summary in sorted(RULE_SUMMARIES.items()):
        rule: dict[str, Any] = {
            "id": code,
            "name": code,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
            "helpUri": _TOOL_URI,
        }
        help_md = help_text(code)
        if help_md is not None:
            rule["help"] = {"text": help_md}
        rules.append(rule)
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results = []
    for violation in violations:
        result: dict[str, Any] = {
            "ruleId": violation.code,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _artifact_uri(violation.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col + 1,
                        },
                    }
                }
            ],
        }
        if violation.code in rule_index:
            result["ruleIndex"] = rule_index[violation.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": _TOOL_URI,
                        "version": "4.0.0",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(violations: Sequence[Violation]) -> str:
    return json.dumps(sarif_log(violations), indent=2, sort_keys=False)


FORMATS = {
    "text": render,
    "github": render_github,
    "sarif": render_sarif,
}


def render_report(violations: Sequence[Violation], fmt: str) -> str:
    """Render ``violations`` in ``fmt`` (one of :data:`FORMATS`)."""
    try:
        renderer = FORMATS[fmt]
    except KeyError:
        raise ValueError(
            f"unknown format {fmt!r}; choose from {sorted(FORMATS)}"
        ) from None
    return renderer(violations)
