"""Intraprocedural dataflow analysis for reprolint's project rules.

A small forward pass per function body tracking three kinds of facts
about local names (and ``self.<attr>`` pseudo-names):

``array``
    The value is a locally constructed numpy array (factory call,
    ``.copy()``, arithmetic on arrays) -- i.e. "hand-assembled", with no
    external validation certificate attached.
``readonly``
    ``.setflags(write=False)`` or ``.flags.writeable = False`` has run
    on the value **on every path** reaching the program point.
``validated``
    The value passed through ``validate_generator``/``check_generator``
    on every path.
``ms`` / ``otherunit`` / ``baretime``
    Unit evidence: the value is milliseconds-valued (``*_ms`` origin),
    carries a non-millisecond unit suffix (``*_sec``, ...), or is a bare
    time-like name (``timeout``, ``delay``, ...).  Evidence propagates
    through plain assignments, so ``t = timeout_ms; f(t)`` still knows
    ``t`` is milliseconds.

Branches meet by *intersection* (a fact holds only if it holds on all
branches); loop bodies are analysed once and merged with the skip path,
which is conservative for generated facts and sound for kills.  The pass
is deliberately flow-insensitive about aliasing: storing a name on
``self`` links the two (freezing either freezes the stored value).

The analysis reports *events* consumed by the rules:

* certificate assignments (``self._generator_validated = True`` directly
  or via ``object.__setattr__``), with the function's exit-state used to
  decide whether every array stored on ``self`` ends up frozen;
* calls passing ``blocks_validated=True`` (and warm-start seeds under
  such a certificate), with the fact-state snapshot at the call;
* every call with the unit evidence of each argument, for the
  cross-module unit-flow rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "ARRAY",
    "BARETIME",
    "CallEvent",
    "CertificateEvent",
    "FunctionAnalysis",
    "MS",
    "OTHERUNIT",
    "READONLY",
    "VALIDATED",
    "analyze_function",
    "unit_evidence_of_name",
]

ARRAY = "array"
READONLY = "readonly"
VALIDATED = "validated"
MS = "ms"
OTHERUNIT = "otherunit"
BARETIME = "baretime"

_UNIT_FACTS = frozenset({MS, OTHERUNIT, BARETIME})

_NUMPY_MODULES = {"np", "numpy"}
_ARRAY_FACTORIES = {
    "array",
    "asarray",
    "ascontiguousarray",
    "asfortranarray",
    "copy",
    "diag",
    "empty",
    "empty_like",
    "eye",
    "full",
    "full_like",
    "kron",
    "ones",
    "ones_like",
    "zeros",
    "zeros_like",
}
_VALIDATION_CALLS = {"validate_generator", "check_generator"}

# Shared with rules.RL003; duplicated here to keep dataflow import-free
# of the rules module (rules imports dataflow, not vice versa).
_BARE_TIME_NAMES = {
    "timeout",
    "idle_wait",
    "delay",
    "interval",
    "duration",
    "wait_time",
    "sleep_time",
}
_BAD_UNIT_SUFFIXES = (
    "_sec",
    "_secs",
    "_seconds",
    "_minutes",
    "_hours",
    "_us",
    "_micros",
    "_ns",
    "_nanos",
)

State = dict[str, frozenset[str]]


def unit_evidence_of_name(name: str) -> str | None:
    """Unit evidence carried by a bare identifier, if any."""
    if name.endswith("_ms"):
        return MS
    for suffix in _BAD_UNIT_SUFFIXES:
        if name.endswith(suffix):
            return OTHERUNIT
    if name in _BARE_TIME_NAMES:
        return BARETIME
    return None


def _intrinsic(name: str) -> frozenset[str]:
    evidence = unit_evidence_of_name(name)
    return frozenset((evidence,)) if evidence else frozenset()


@dataclass
class CertificateEvent:
    """``_generator_validated = True`` (or equivalent) in a function."""

    node: ast.stmt
    attr: str


@dataclass
class CallEvent:
    """One call site, with the fact-state evidence of its arguments."""

    node: ast.Call
    #: Unit/array evidence per positional argument (None when the
    #: argument is an expression the pass has no facts for).
    pos_facts: list[frozenset[str] | None]
    #: Same, per keyword argument.
    kw_facts: dict[str, frozenset[str] | None]
    #: Names of positional / keyword args that are plain identifiers
    #: (for messages); parallel to the fact lists, None otherwise.
    pos_names: list[str | None]
    kw_names: dict[str, str | None]


@dataclass
class FunctionAnalysis:
    """Result of the forward pass over one function body."""

    certificates: list[CertificateEvent] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    #: Fact state merged over every exit path of the function.
    exit_state: State = field(default_factory=dict)

    def unfrozen_self_arrays(self) -> list[str]:
        """``self.<attr>`` names holding arrays not read-only at exit."""
        return sorted(
            name
            for name, facts in self.exit_state.items()
            if name.startswith("self.")
            and ARRAY in facts
            and READONLY not in facts
        )


def _merge(a: State, b: State) -> State:
    return {name: a[name] & b[name] for name in a.keys() & b.keys()}


def _merge_all(states: list[State]) -> State:
    if not states:
        return {}
    merged = states[0]
    for other in states[1:]:
        merged = _merge(merged, other)
    return merged


def _is_numpy_factory(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _ARRAY_FACTORIES
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_MODULES
    )


def _self_attr(expr: ast.expr) -> str | None:
    """``self.x`` -> ``"self.x"``; anything else -> None."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    return None


class _Walker:
    """Executes a function body statement-by-statement over a fact state."""

    def __init__(
        self, helper_freezes: dict[str, dict] | None = None
    ) -> None:
        self.analysis = FunctionAnalysis()
        self._exit_states: list[State] = []
        #: Same-module freeze oracle (``effects.freeze_oracle``): helper
        #: name -> {"params": [...], "freezes": [...], "all_args": bool}.
        #: A call to an oracle helper marks the bound arguments READONLY,
        #: which is what lets RL002/RL006 accept helper-based freezing.
        self._helper_freezes = helper_freezes or {}

    # -- expression evaluation -----------------------------------------
    def eval_expr(self, expr: ast.expr, state: State) -> frozenset[str]:
        if isinstance(expr, ast.Name):
            return state.get(expr.id, _intrinsic(expr.id))
        self_name = _self_attr(expr)
        if self_name is not None:
            return state.get(self_name, _intrinsic(expr.attr))  # type: ignore[union-attr]
        if isinstance(expr, ast.Attribute):
            return _intrinsic(expr.attr)
        if isinstance(expr, ast.Call):
            if _is_numpy_factory(expr):
                return frozenset((ARRAY,))
            func = expr.func
            if isinstance(func, ast.Attribute) and func.attr == "copy":
                # x.copy() is a fresh, writable array when x is one.
                base = self.eval_expr(func.value, state)
                if ARRAY in base:
                    return frozenset((ARRAY,))
            return frozenset()
        if isinstance(expr, ast.BinOp):
            left = self.eval_expr(expr.left, state)
            right = self.eval_expr(expr.right, state)
            # Arithmetic on arrays yields a fresh (writable) array; unit
            # evidence does not survive arbitrary arithmetic.
            if ARRAY in left or ARRAY in right:
                return frozenset((ARRAY,))
            return frozenset()
        if isinstance(expr, ast.UnaryOp):
            inner = self.eval_expr(expr.operand, state)
            return frozenset((ARRAY,)) if ARRAY in inner else frozenset()
        if isinstance(expr, (ast.IfExp,)):
            return self.eval_expr(expr.body, state) & self.eval_expr(
                expr.orelse, state
            )
        return frozenset()

    def _arg_observation(
        self, expr: ast.expr, state: State
    ) -> tuple[frozenset[str] | None, str | None]:
        if isinstance(expr, ast.Name):
            return self.eval_expr(expr, state), expr.id
        self_name = _self_attr(expr)
        if self_name is not None:
            return self.eval_expr(expr, state), self_name
        if isinstance(expr, ast.Attribute):
            return self.eval_expr(expr, state), expr.attr
        facts = self.eval_expr(expr, state)
        return (facts or None), None

    # -- effects of calls ----------------------------------------------
    def _apply_call_effects(self, call: ast.Call, state: State) -> None:
        func = call.func
        # x.setflags(write=False) / self.x.setflags(write=False)
        if isinstance(func, ast.Attribute) and func.attr == "setflags":
            receiver = func.value
            target = None
            if isinstance(receiver, ast.Name):
                target = receiver.id
            else:
                target = _self_attr(receiver)
            if target is not None and any(
                kw.arg == "write"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in call.keywords
            ):
                state[target] = state.get(target, frozenset()) | {READONLY}
            return
        # _freeze(a, b) where _freeze is an unconditionally freezing
        # same-module helper (one level: the oracle is built from helper
        # bodies only, so transitive or conditional freezing stays out).
        if isinstance(func, ast.Name) and func.id in self._helper_freezes:
            info = self._helper_freezes[func.id]
            params: list[str] = info.get("params", [])
            frozen = set(info.get("freezes", ()))
            all_args = bool(info.get("all_args", False))
            for index, arg in enumerate(call.args):
                if isinstance(arg, ast.Starred):
                    continue
                covered = all_args or (
                    index < len(params) and params[index] in frozen
                )
                if not covered:
                    continue
                target = (
                    arg.id if isinstance(arg, ast.Name) else _self_attr(arg)
                )
                if target is not None:
                    state[target] = state.get(target, frozenset()) | {READONLY}
            for kw in call.keywords:
                if kw.arg is None or kw.arg not in frozen:
                    continue
                target = (
                    kw.value.id
                    if isinstance(kw.value, ast.Name)
                    else _self_attr(kw.value)
                )
                if target is not None:
                    state[target] = state.get(target, frozenset()) | {READONLY}
        # validate_generator(x) / check_generator(x, ...)
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in _VALIDATION_CALLS and call.args:
            arg = call.args[0]
            target = (
                arg.id if isinstance(arg, ast.Name) else _self_attr(arg)
            )
            if target is not None:
                state[target] = state.get(target, frozenset()) | {VALIDATED}

    def _record_calls_in(self, expr: ast.expr, state: State) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            self._apply_call_effects(node, state)
            pos_facts: list[frozenset[str] | None] = []
            pos_names: list[str | None] = []
            for arg in node.args:
                if isinstance(arg, ast.Starred):
                    pos_facts.append(None)
                    pos_names.append(None)
                    continue
                facts, name = self._arg_observation(arg, state)
                pos_facts.append(facts)
                pos_names.append(name)
            kw_facts: dict[str, frozenset[str] | None] = {}
            kw_names: dict[str, str | None] = {}
            for kw in node.keywords:
                if kw.arg is None:
                    continue
                facts, name = self._arg_observation(kw.value, state)
                kw_facts[kw.arg] = facts
                kw_names[kw.arg] = name
            self.analysis.calls.append(
                CallEvent(node, pos_facts, kw_facts, pos_names, kw_names)
            )

    # -- statement execution -------------------------------------------
    def exec_block(self, stmts: list[ast.stmt], state: State) -> State | None:
        """Run ``stmts`` over ``state``; None means the path terminated."""
        current: State | None = state
        for stmt in stmts:
            if current is None:
                break
            current = self.exec_stmt(stmt, current)
        return current

    def _assign_target(
        self, target: ast.expr, facts: frozenset[str], state: State, node: ast.stmt
    ) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = facts
            return
        self_name = _self_attr(target)
        if self_name is not None:
            if self_name == "self._generator_validated":
                self.analysis.certificates.append(
                    CertificateEvent(node, "_generator_validated")
                )
            state[self_name] = facts
            return
        # x.flags.writeable = False
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "writeable"
            and isinstance(target.value, ast.Attribute)
            and target.value.attr == "flags"
        ):
            receiver = target.value.value
            name = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else _self_attr(receiver)
            )
            if name is not None:
                state[name] = state.get(name, frozenset()) | {READONLY}

    def _maybe_object_setattr(self, call: ast.Call, state: State, node: ast.stmt) -> bool:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
            and len(call.args) == 3
            and isinstance(call.args[0], ast.Name)
            and call.args[0].id == "self"
            and isinstance(call.args[1], ast.Constant)
            and isinstance(call.args[1].value, str)
        ):
            return False
        attr = call.args[1].value
        facts = self.eval_expr(call.args[2], state)
        if attr == "_generator_validated":
            self.analysis.certificates.append(
                CertificateEvent(node, "_generator_validated")
            )
        state[f"self.{attr}"] = facts
        return True

    def exec_stmt(self, stmt: ast.stmt, state: State) -> State | None:
        if isinstance(stmt, ast.Assign):
            self._record_calls_in(stmt.value, state)
            facts = self.eval_expr(stmt.value, state)
            for target in stmt.targets:
                self._assign_target(target, facts, state, stmt)
            return state
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._record_calls_in(stmt.value, state)
            facts = self.eval_expr(stmt.value, state)
            self._assign_target(stmt.target, facts, state, stmt)
            return state
        if isinstance(stmt, ast.AugAssign):
            self._record_calls_in(stmt.value, state)
            # In-place arithmetic keeps identity but not read-onlyness
            # facts we could certify (x += 1 on a frozen array raises,
            # so a reachable AugAssign means the array was writable).
            if isinstance(stmt.target, ast.Name):
                old = state.get(stmt.target.id, frozenset())
                state[stmt.target.id] = old - {READONLY, VALIDATED}
            return state
        if isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Call) and self._maybe_object_setattr(
                stmt.value, state, stmt
            ):
                # Still scan nested calls inside the stored value.
                for arg in stmt.value.args[2:]:
                    self._record_calls_in(arg, state)
                return state
            self._record_calls_in(stmt.value, state)
            return state
        if isinstance(stmt, ast.If):
            self._record_calls_in(stmt.test, state)
            then_state = self.exec_block(stmt.body, dict(state))
            else_state = self.exec_block(stmt.orelse, dict(state))
            live = [s for s in (then_state, else_state) if s is not None]
            if not live:
                return None
            return _merge_all(live)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._record_calls_in(stmt.iter, state)
            body_state = self.exec_block(stmt.body, dict(state))
            after = [dict(state)]
            if body_state is not None:
                after.append(body_state)
            merged = _merge_all(after)
            if stmt.orelse:
                else_state = self.exec_block(stmt.orelse, merged)
                return else_state
            return merged
        if isinstance(stmt, ast.While):
            self._record_calls_in(stmt.test, state)
            body_state = self.exec_block(stmt.body, dict(state))
            after = [dict(state)]
            if body_state is not None:
                after.append(body_state)
            return _merge_all(after)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._record_calls_in(item.context_expr, state)
            return self.exec_block(stmt.body, state)
        if isinstance(stmt, ast.Try):
            body_state = self.exec_block(stmt.body, dict(state))
            paths = []
            if body_state is not None:
                else_state = (
                    self.exec_block(stmt.orelse, dict(body_state))
                    if stmt.orelse
                    else body_state
                )
                if else_state is not None:
                    paths.append(else_state)
            for handler in stmt.handlers:
                # A handler may run after any prefix of the body; start
                # from the pre-try state for soundness.
                handler_state = self.exec_block(handler.body, dict(state))
                if handler_state is not None:
                    paths.append(handler_state)
            if not paths:
                merged: State | None = None
            else:
                merged = _merge_all(paths)
            if stmt.finalbody:
                merged = self.exec_block(stmt.finalbody, merged or dict(state))
            return merged
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._record_calls_in(stmt.value, state)
            self._exit_states.append(dict(state))
            return None
        if isinstance(stmt, ast.Raise):
            # Exceptional exits do not certify anything; ignore them in
            # the exit merge (the certificate never becomes observable).
            return None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Nested scopes are analysed separately.
            return state
        if isinstance(stmt, (ast.Assert, ast.Delete, ast.Global, ast.Nonlocal, ast.Pass)):
            return state
        # Fallback: scan expressions for calls, keep state unchanged.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._record_calls_in(child, state)
        return state

    def run(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionAnalysis:
        state: State = {}
        fallthrough = self.exec_block(list(func.body), state)
        exits = list(self._exit_states)
        if fallthrough is not None:
            exits.append(fallthrough)
        self.analysis.exit_state = _merge_all(exits) if exits else {}
        return self.analysis


def analyze_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    helper_freezes: dict[str, dict] | None = None,
) -> FunctionAnalysis:
    """Run the forward fact pass over one function body.

    ``helper_freezes`` is the same-module freeze oracle produced by
    :func:`tools.reprolint.effects.freeze_oracle`; when given, a call to
    an oracle helper marks the frozen-bound arguments READONLY.
    """
    return _Walker(helper_freezes).run(func)


def analyze_module_level(tree: ast.Module) -> FunctionAnalysis:
    """Run the pass over module-level statements (calls only)."""
    walker = _Walker()
    state: State = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        result = walker.exec_stmt(stmt, state)
        if result is None:
            break
        state = result
    walker.analysis.exit_state = state
    return walker.analysis
