"""Fixture: writable numpy arrays stored on a dataclass (RL002 x2)."""

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class BadBlocks:
    n: int
    up: object = field(init=False)
    down: object = field(init=False)

    def __post_init__(self):
        up = np.eye(self.n)
        object.__setattr__(self, "up", up)
        object.__setattr__(self, "down", np.zeros((self.n, self.n)))
