"""Fixture: torn durable writes, a leakable lock fd, autocommit SQL (RL013 x4)."""

import json
import os
import sqlite3


class Ledger:
    def __init__(self, root):
        self.root = root
        self.path = root / "ledger.json"

    def save(self, payload):
        # RL013: a SIGKILL mid-write leaves a torn ledger.
        self.path.write_text(json.dumps(payload))

    def append_log(self, line):
        log = self.path.with_suffix(".log")
        # RL013: bare append to a durable path, no tmp + os.replace.
        with open(log, "a") as handle:
            handle.write(line)

    def lock(self):
        lock = self.path.with_suffix(".lock")
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        # RL013: os.write may raise (ENOSPC) and leak the lock forever.
        os.write(fd, b"held\n")
        os.close(fd)
        return lock


class SqlLedger:
    def __init__(self, root):
        self.conn = sqlite3.connect(root / "ledger.sqlite3")

    def save(self, key, payload):
        # RL013: autocommit mutation -- no rollback point on a crash.
        self.conn.execute(
            "UPDATE ledger SET payload = ? WHERE key = ?", (payload, key)
        )
