"""Fixture: torn durable writes and a leakable lock fd (RL013 x3)."""

import json
import os


class Ledger:
    def __init__(self, root):
        self.root = root
        self.path = root / "ledger.json"

    def save(self, payload):
        # RL013: a SIGKILL mid-write leaves a torn ledger.
        self.path.write_text(json.dumps(payload))

    def append_log(self, line):
        log = self.path.with_suffix(".log")
        # RL013: bare append to a durable path, no tmp + os.replace.
        with open(log, "a") as handle:
            handle.write(line)

    def lock(self):
        lock = self.path.with_suffix(".lock")
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        # RL013: os.write may raise (ENOSPC) and leak the lock forever.
        os.write(fd, b"held\n")
        os.close(fd)
        return lock
