"""Fixture package: public solver entry points that mutate inputs (RL011 x2)."""

from .impl import normalize_rates, scale_in_place

__all__ = ["normalize_rates", "scale_in_place"]
