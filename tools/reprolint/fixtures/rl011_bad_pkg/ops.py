"""Helper whose effect summary says it mutates its parameter."""


def damp(m):
    m[0, 0] -= 1.0
    return m
