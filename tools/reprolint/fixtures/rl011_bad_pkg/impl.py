"""Entry points: one mutates directly, one through a callee summary."""

from .ops import damp


def normalize_rates(matrix):
    # RL011 (interprocedural): damp() writes into its argument, so the
    # caller's input array is mutated two modules away from the store.
    damp(matrix)
    return matrix


def scale_in_place(matrix, factor):
    # RL011 (direct): augmented assignment writes through the alias.
    matrix *= factor
    return matrix
