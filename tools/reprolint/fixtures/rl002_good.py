"""Fixture twin: arrays made read-only before storing (no RL002)."""

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class GoodBlocks:
    n: int
    up: object = field(init=False)
    down: object = field(init=False)

    def __post_init__(self):
        up = np.eye(self.n)
        up.setflags(write=False)
        object.__setattr__(self, "up", up)
        down = np.zeros((self.n, self.n))
        down.flags.writeable = False
        object.__setattr__(self, "down", down)
