"""Fixture: plain stationary solve of the phase sum (RL005 x2)."""

import numpy as np

from repro.markov.ctmc import stationary_distribution


def drift_direct(a0, a1, a2):
    phi = stationary_distribution(np.asarray(a0) + a1 + a2)
    return phi @ a0 - phi @ a2


def drift_via_name(a0, a1, a2):
    generator = a0 + a1 + a2
    phi = stationary_distribution(generator)
    return phi @ a0 - phi @ a2
