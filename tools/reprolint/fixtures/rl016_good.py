"""Fixture twin: conformable block assembly, correctly split (no RL016)."""

import numpy as np

from repro.qbd.rmatrix import r_matrix
from repro.qbd.structure import QBDProcess


def kron_assembly(d1, m_g):
    # Row-oriented block enters the kron untransposed.
    a0 = np.kron(np.eye(m_g), d1)
    return a0


def boundary_split(n_b, m):
    b00 = np.zeros((n_b, n_b))
    b01 = np.zeros((n_b, m))
    b10 = np.zeros((m, n_b))
    a0 = np.zeros((m, m))
    a1 = np.zeros((m, m))
    a2 = np.zeros((m, m))
    return QBDProcess(b00=b00, b01=b01, b10=b10, a0=a0, a1=a1, a2=a2)


def straight_solve(a0, a1, a2):
    return r_matrix(a0, a1, a2)


def deliberate_vec_trick(a1, a2, r, eye):
    # The Newton Frechet derivative builds (B.T kron A); the transpose is
    # the vec identity, not a QBD block -- waived per convention.
    return np.kron(a2.T, r)  # noqa: RL016 -- vec-trick: vec(AXB) = (B.T kron A) vec(X)
