"""Fixture: unitless / wrong-unit time names at boundaries (RL003 x3)."""


def simulate(horizon_ms, timeout):
    return horizon_ms - timeout


def warm_up(delay_seconds):
    return delay_seconds


def run():
    return simulate(1_000.0, timeout=250.0)
