"""Fixture: job state written past the _to() lifecycle gate (RL012 x3)."""

import dataclasses
from dataclasses import dataclass, replace

OPEN = "open"
CLOSED = "closed"
ARCHIVED = "archived"

TRANSITIONS = {
    OPEN: frozenset({CLOSED}),
    CLOSED: frozenset(),
}


@dataclass(frozen=True)
class Ticket:
    state: str = OPEN
    updated_ms: float = 0.0
    finished_ms: float | None = None

    def _to(self, state, now_ms, **changes):
        if state not in TRANSITIONS[self.state]:
            raise RuntimeError(f"illegal transition {self.state} -> {state}")
        return replace(self, state=state, updated_ms=now_ms, **changes)

    def archived(self, now_ms):
        # RL012: ARCHIVED is not a destination of any declared transition.
        return self._to(ARCHIVED, now_ms)


def force_closed(ticket, now_ms):
    # RL012: replace(..., state=...) outside the _to() gate skips the
    # TRANSITIONS legality check entirely.
    return dataclasses.replace(ticket, state=CLOSED, finished_ms=now_ms)


def stamp_finished(ticket, now_ms):
    # RL012: object.__setattr__ on the gated terminal timestamp.
    object.__setattr__(ticket, "finished_ms", now_ms)
    return ticket
