"""Fixture: stale and reason-less noqa suppressions (RL009 x2)."""


def plain_helper(x):
    return x + 1  # noqa: RL005 -- stale: nothing fires on this line


def waived(timeout):  # noqa: RL003
    return timeout
