"""Fixture: precision hazards on rate/_ms quantities (RL020 x4)."""

import numpy as np


def narrow_factory(m):
    # RL020: float32 loses ~9 significant digits in the QBD iterations.
    return np.zeros((m, m), dtype=np.float32)


def narrow_cast(blocks):
    # RL020: string dtype spellings are just as narrowing.
    return blocks.astype("float16")


def removed_alias(m):
    # RL020: np.float_ was removed in numpy 2.0.
    return np.ones(m, dtype=np.float_)


def truncating_budget(budget_ms):
    # RL020: floor division truncates a continuous _ms duration.
    return budget_ms // 2
