"""Fixture twin: atomic durable writes, protected lock fds (no RL013)."""

import json
import os


class Ledger:
    def __init__(self, root):
        self.root = root
        self.path = root / "ledger.json"

    def save(self, payload):
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path)

    def lock(self):
        lock = self.path.with_suffix(".lock")
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        with os.fdopen(fd, "w") as handle:
            handle.write("held\n")
        return lock

    def lock_try_finally(self):
        lock = self.path.with_suffix(".lock")
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        try:
            os.write(fd, b"held\n")
        finally:
            os.close(fd)
        return lock


class SqlLedger:
    def __init__(self, root):
        import sqlite3

        self.conn = sqlite3.connect(root / "ledger.sqlite3")
        # Idempotent single-statement schema setup is exempt.
        self.conn.execute("CREATE TABLE IF NOT EXISTS ledger (key, payload)")

    def save(self, key, payload):
        # Transactional write: commits or rolls back as one unit, which
        # satisfies the durable-write discipline.
        with self.conn:
            self.conn.execute(
                "UPDATE ledger SET payload = ? WHERE key = ?", (payload, key)
            )

    def load(self, key):
        # Reads are exempt regardless of transaction context.
        return self.conn.execute(
            "SELECT payload FROM ledger WHERE key = ?", (key,)
        ).fetchone()


def scratch_dump(tmp_path, payload):
    # Not a durable path (not derived from self): test scratch files may
    # be written directly.
    with open(tmp_path / "scratch.json", "w") as handle:
        json.dump(payload, handle)
