"""Fixture twin: atomic durable writes, protected lock fds (no RL013)."""

import json
import os


class Ledger:
    def __init__(self, root):
        self.root = root
        self.path = root / "ledger.json"

    def save(self, payload):
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path)

    def lock(self):
        lock = self.path.with_suffix(".lock")
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        with os.fdopen(fd, "w") as handle:
            handle.write("held\n")
        return lock

    def lock_try_finally(self):
        lock = self.path.with_suffix(".lock")
        fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        try:
            os.write(fd, b"held\n")
        finally:
            os.close(fd)
        return lock


def scratch_dump(tmp_path, payload):
    # Not a durable path (not derived from self): test scratch files may
    # be written directly.
    with open(tmp_path / "scratch.json", "w") as handle:
        json.dump(payload, handle)
