"""Fixture twin package: every export carries contract evidence (no RL007)."""

from repro.contracts import check_generator

__all__ = ["GuardedResult", "checked_solve", "guarded_solve"]


class GuardedResult:
    def __init__(self, value):
        if value is None:
            raise ValueError("value must not be None")
        self.value = value


def guarded_solve(model):
    if model is None:
        raise ValueError("model must not be None")
    return GuardedResult(model)


def checked_solve(generator):
    check_generator(generator)
    return GuardedResult(generator)
