"""Fixture: suppression around the deliberate NaN (RL004 x2)."""

import warnings

import numpy as np


def completion_metrics(solution):
    with np.errstate(invalid="ignore"):
        rate = solution.bg_completion_rate * 2.0
    return rate


def tabulate(solutions):
    warnings.simplefilter("ignore")
    return [s.bg_completion_rate for s in solutions]
