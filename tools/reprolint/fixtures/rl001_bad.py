"""Fixture: frozen-dataclass mutation outside __post_init__ (RL001 x2)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class BadModel:
    rate: float

    def __post_init__(self):
        self.rate = max(self.rate, 0.0)  # plain assignment, even here

    def rescale(self, factor):
        object.__setattr__(self, "rate", self.rate * factor)
