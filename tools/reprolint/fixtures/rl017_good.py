"""Fixture twin: kinds routed to matching sinks (no RL017)."""

from repro.contracts.checks import check_probability_vector, check_stochastic
from repro.markov.ctmc import stationary_distribution


def full_phase_generator(d0, d1):
    return stationary_distribution(d0 + d1)


def stochastic_input(jump_matrix):
    # An unseeded name carries no kind fact: nothing to confuse.
    check_stochastic(jump_matrix)
    return jump_matrix


def probability_vector(pi):
    check_probability_vector(pi)
    return pi


def probability_from_ratio(mu, total_rate, model_cls):
    # A normalized ratio is a probability, not a rate.
    return model_cls(bg_probability=mu / total_rate)
