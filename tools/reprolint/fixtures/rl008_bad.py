"""Fixture: unit mismatches across call sites (RL008 x2)."""


def schedule(delay_seconds):  # noqa: RL003 -- fixture: wrong-unit callee under test
    return delay_seconds * 1000.0


def poll(poll_interval_ms):
    # RL008: milliseconds value into a seconds parameter.
    return schedule(poll_interval_ms)


def serve(slice_ms):
    return slice_ms


def misuse(quantum_sec):  # noqa: RL003 -- fixture: wrong-unit caller under test
    # RL008: seconds value into a milliseconds parameter.
    return serve(quantum_sec)
