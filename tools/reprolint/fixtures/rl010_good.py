"""Fixture twin: the sweep-engine API (no RL010)."""

from repro.experiments.sweeps import sweep_many, utilization_axis


def modern_series(base_model, metric):
    axis = utilization_axis([0.5, 0.7])
    return sweep_many(base_model, axis, metric, [0.01, 0.05])
