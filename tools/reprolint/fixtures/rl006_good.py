"""Fixture twin: certificates only over frozen arrays (no RL006)."""

from dataclasses import dataclass, field

import numpy as np

from repro.contracts import check_generator
from repro.qbd.rmatrix import r_matrix


@dataclass(frozen=True)
class GoodCertifiedProcess:
    rates: object
    d0: object = field(init=False)
    _generator_validated: bool = field(init=False, default=False)

    def __post_init__(self):
        base = np.asarray(self.rates, dtype=float)
        d0 = base - np.diag(base.sum(axis=1))
        check_generator(d0)
        d0.setflags(write=False)
        object.__setattr__(self, "d0", d0)
        object.__setattr__(self, "_generator_validated", True)


def cold_solve(a0, a1, a2):
    # No certificate: r_matrix validates the blocks itself.
    return r_matrix(a0, a1, a2)


def _freeze(*arrays):
    # Unconditional same-module helper: the freeze oracle recognizes it,
    # so certificates over helper-frozen arrays are sound.
    for array in arrays:
        array.setflags(write=False)


@dataclass(frozen=True)
class HelperFrozenProcess:
    rates: object
    d0: object = field(init=False)
    _generator_validated: bool = field(init=False, default=False)

    def __post_init__(self):
        base = np.asarray(self.rates, dtype=float)
        d0 = base - np.diag(base.sum(axis=1))
        check_generator(d0)
        _freeze(d0)
        object.__setattr__(self, "d0", d0)
        object.__setattr__(self, "_generator_validated", True)


def frozen_warm_solve(seed):
    a0 = np.zeros((2, 2))
    a1 = np.diag([-1.0, -1.0])
    a2 = np.eye(2)
    a0.setflags(write=False)
    a1.setflags(write=False)
    a2.setflags(write=False)
    initial_r = np.asarray(seed, dtype=float)
    initial_r.setflags(write=False)
    return r_matrix(a0, a1, a2, blocks_validated=True, initial_r=initial_r)
