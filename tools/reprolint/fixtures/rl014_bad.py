"""Fixture: laundered failure semantics (RL014 x3)."""

import math

from repro.contracts import ContractViolation
from repro.engine.resilience import FailedSolve, SweepCancelled


def swallow_contract_breach(solve, model):
    try:
        return solve(model)
    except ContractViolation:
        # RL014: the breach is dropped; downstream sees plausible data.
        return None


def cancellation_as_failure(solve, model, index):
    try:
        return solve(model)
    except SweepCancelled as exc:
        # RL014: cancellation recorded as if the solve had failed.
        return FailedSolve(index=index, error=str(exc))


def cancellation_as_nan(solve, model):
    try:
        return solve(model)
    except SweepCancelled:
        # RL014: cancellation rendered as a NaN point.
        return math.nan
