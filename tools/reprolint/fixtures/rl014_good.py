"""Fixture twin: failure semantics preserved (no RL014)."""

from repro.contracts import ContractViolation
from repro.engine.resilience import SweepCancelled


def quarantine_and_resolve(solve, model, record):
    try:
        return solve(model)
    except ContractViolation as exc:
        # The breach is recorded with its details, then recomputed.
        record(exc)
        return solve(model)


def reraise_contract_breach(solve, model):
    try:
        return solve(model)
    except ContractViolation:
        raise


def stand_down_on_cancellation(solve, model, write_cancelled):
    try:
        return solve(model)
    except SweepCancelled:
        # Cancellation is not a failure: record the CANCELLED state.
        return write_cancelled()
