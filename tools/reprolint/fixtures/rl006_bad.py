"""Fixture: certificates issued over still-writable arrays (RL006 x2)."""

from dataclasses import dataclass, field

import numpy as np

from repro.contracts import check_generator
from repro.qbd.rmatrix import r_matrix


@dataclass(frozen=True)
class BadCertifiedProcess:
    rates: object
    d0: object = field(init=False)
    _generator_validated: bool = field(init=False, default=False)

    def __post_init__(self):
        base = np.asarray(self.rates, dtype=float)
        d0 = base - np.diag(base.sum(axis=1))
        check_generator(d0)
        object.__setattr__(self, "d0", d0)
        # RL006: d0 was validated but never frozen before certifying.
        object.__setattr__(self, "_generator_validated", True)


def warm_solve(seed):
    a0 = np.zeros((2, 2))
    a1 = np.diag([-1.0, -1.0])
    a2 = np.eye(2)
    initial_r = np.asarray(seed, dtype=float)
    # RL006: hand-assembled writable blocks under blocks_validated=True.
    return r_matrix(a0, a1, a2, blocks_validated=True, initial_r=initial_r)


def _freeze_if(array, flag):
    # Conditionally freezing helper: NOT in the freeze oracle (the freeze
    # must hold on every path), so certificates relying on it stay flagged.
    if flag:
        array.setflags(write=False)


@dataclass(frozen=True)
class ConditionallyFrozenProcess:
    rates: object
    d0: object = field(init=False)
    _generator_validated: bool = field(init=False, default=False)

    def __post_init__(self):
        base = np.asarray(self.rates, dtype=float)
        d0 = base - np.diag(base.sum(axis=1))
        check_generator(d0)
        _freeze_if(d0, d0.size > 0)
        object.__setattr__(self, "d0", d0)
        # RL006: the helper freezes only on one path; the certificate is
        # not provably sound.
        object.__setattr__(self, "_generator_validated", True)
