"""Fixture twin: per-item batched ops with explicit axes (no RL018)."""

import numpy as np


def per_item_aggregates(m):
    stack = np.stack((np.zeros((m, m)), np.zeros((m, m))))
    row_sums = stack.sum(axis=2)
    item_maxima = stack.max(axis=(1, 2))
    return row_sums, item_maxima


def per_item_weights(m):
    stack = np.stack((np.zeros((m, m)), np.zeros((m, m))))
    weights = np.stack((1.0, 2.0))
    return stack * weights[:, None, None]


def stacked_solve_with_3d_rhs(stack, n, m):
    rhs = np.ones((n, m, 1))
    return np.linalg.solve(stack, rhs)[..., 0]
