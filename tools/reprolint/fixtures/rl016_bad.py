"""Fixture: non-conformable/non-square block assembly (RL016 x4)."""

import numpy as np

from repro.qbd.rmatrix import r_matrix
from repro.qbd.structure import QBDProcess


def transposed_kron_operand(d1, m_g):
    # RL016: d1 enters the kron through .T, swapping its transition
    # direction inside the assembled block.
    a0 = np.kron(np.eye(m_g), d1.T)
    return a0


def swapped_boundary_split(n_b, m):
    b00 = np.zeros((n_b, n_b))
    b01 = np.zeros((m, n_b))  # wrong row split: rows must be boundary states
    b10 = np.zeros((m, n_b))
    a0 = np.zeros((m, m))
    a1 = np.zeros((m, m))
    a2 = np.zeros((m, m))
    # RL016: b01 arrives transposed relative to the (n_b, m) declaration.
    return QBDProcess(b00=b00, b01=b01, b10=b10, a0=a0, a1=a1, a2=a2)


def transposed_block_at_sink(a0, a1, a2):
    # RL016: a2.T flips the down-transition block before the solve.
    return r_matrix(a0, a1, a2.T)


def numeric_mismatch():
    a0 = np.zeros((4, 4))
    a1 = np.zeros((4, 4))
    a2 = np.zeros((3, 3))  # RL016: triple members disagree numerically
    return r_matrix(a0, a1, a2)
