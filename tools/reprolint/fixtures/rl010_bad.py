"""Fixture: deprecated sweep API call sites (RL010 x2)."""

from repro.experiments.sweeps import idle_wait_sweep_series, load_sweep_series


def legacy_series(arrival, metric):
    utilizations = [0.5, 0.7]
    bg_probabilities = [0.01, 0.05]
    by_load = load_sweep_series(arrival, utilizations, bg_probabilities, metric)
    by_wait = idle_wait_sweep_series(
        arrival, [1.0, 2.0], bg_probabilities, metric
    )
    return by_load, by_wait
