"""Fixture twin: every state change goes through the _to() gate (no RL012)."""

from dataclasses import dataclass, replace

OPEN = "open"
CLOSED = "closed"

TRANSITIONS = {
    OPEN: frozenset({CLOSED}),
    CLOSED: frozenset(),
}


@dataclass(frozen=True)
class Ticket:
    state: str = OPEN
    updated_ms: float = 0.0
    finished_ms: float | None = None
    note: str = ""

    def _to(self, state, now_ms, **changes):
        if state not in TRANSITIONS[self.state]:
            raise RuntimeError(f"illegal transition {self.state} -> {state}")
        return replace(self, state=state, updated_ms=now_ms, **changes)

    def closed(self, now_ms):
        return self._to(CLOSED, now_ms, finished_ms=now_ms)

    def annotated(self, note, now_ms):
        # Non-state fields may evolve with a bare replace.
        return replace(self, note=note, updated_ms=now_ms)
