"""Fixture twin: bg_completion_rate behind the documented guard (no RL019)."""

import math


def pick_best(solutions):
    best = None
    for s in solutions:
        rate = s.bg_completion_rate
        if math.isnan(rate):
            continue  # p below NEAR_ZERO_BG_PROBABILITY: metric undefined
        if best is None or rate > best.bg_completion_rate:
            best = s
    return best


def total_coverage(solutions, near_zero):
    from repro.core.metrics import NEAR_ZERO_BG_PROBABILITY

    return sum(
        s.bg_completion_rate
        for s in solutions
        if s.bg_probability >= NEAR_ZERO_BG_PROBABILITY
    )
