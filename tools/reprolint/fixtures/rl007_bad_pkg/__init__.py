"""Fixture package: public entry points without contract coverage (RL007 x2)."""

__all__ = ["UncoveredResult", "uncovered_solve"]


class UncoveredResult:
    def __init__(self, value):
        self.value = value


def uncovered_solve(model):
    return UncoveredResult(model)
