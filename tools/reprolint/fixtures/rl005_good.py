"""Fixture twin: the SCC-aware drift, and solves on other matrices (no RL005)."""

from repro.markov.ctmc import stationary_distribution
from repro.qbd.rmatrix import drift


def stable(a0, a1, a2):
    return drift(a0, a1, a2) < 0.0


def phase_probabilities(generator_q):
    # A solve on a plain (irreducible) generator is fine.
    return stationary_distribution(generator_q)


def scc_block(sub):
    return stationary_distribution(sub)
