"""Fixture: batched-axis hazards on leading-N stacks (RL018 x3)."""

import numpy as np


def aggregate_across_items(m):
    stack = np.stack((np.zeros((m, m)), np.zeros((m, m))))
    # RL018: no axis -> one scalar across every item, not one per item.
    return stack.sum()


def reduce_over_item_axis(m):
    stack = np.stack((np.zeros((m, m)), np.zeros((m, m))))
    # RL018: axis=0 is the item axis.
    return stack.max(axis=0)


def per_item_weights_without_trailing_axes(m):
    stack = np.stack((np.zeros((m, m)), np.zeros((m, m))))
    weights = np.stack((1.0, 2.0))
    # RL018: (N,) against (N, m, m) aligns N onto a matrix axis.
    return stack * weights
