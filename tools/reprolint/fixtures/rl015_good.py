"""Fixture twin: REPRO_* reads through the designated accessors (no RL015)."""

import os

from repro._env import repro_env, repro_env_required
from repro.contracts.checks import ENV_SWITCH


def shard_count():
    return int(repro_env("REPRO_SWEEP_SHARDS", "1"))


def queue_root():
    return repro_env_required("REPRO_QUEUE_ROOT")


def save_and_restore_contracts(value):
    # Reads via a constant imported from an accessor module are that
    # module's configuration surface, not a new backdoor.
    previous = os.environ.get(ENV_SWITCH)
    os.environ[ENV_SWITCH] = value
    return previous


def unrelated_env():
    # Non-REPRO_ variables are out of scope.
    return os.environ.get("HOME", "")
