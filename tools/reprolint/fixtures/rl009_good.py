"""Fixture twin: a live, reasoned suppression (no RL009)."""


def waived(timeout):  # noqa: RL003 -- subprocess API, seconds by contract
    return timeout
