"""Fixture: bg_completion_rate compared without a NaN guard (RL019 x2)."""


def pick_best(solutions):
    best = None
    for s in solutions:
        # RL019: below NEAR_ZERO_BG_PROBABILITY the metric is NaN and
        # this comparison is silently False.
        if best is None or s.bg_completion_rate > best.bg_completion_rate:
            best = s
    return best


def total_coverage(solutions):
    rates = [s.bg_completion_rate for s in solutions]
    # RL019: sum() over NaN-bearing values poisons the aggregate.
    return sum(rates)
