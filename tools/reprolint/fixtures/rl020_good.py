"""Fixture twin: full precision on rate/_ms quantities (no RL020)."""

import numpy as np


def wide_factory(m):
    return np.zeros((m, m), dtype=float)


def explicit_double(blocks):
    return blocks.astype(np.float64)


def halved_budget(budget_ms):
    return budget_ms / 2


def integer_bucket_count(total_states, phases):
    # Floor division of *counts* is fine; only rate/_ms quantities are
    # continuous.
    return total_states // phases
