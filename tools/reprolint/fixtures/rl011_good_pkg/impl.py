"""Entry points: copy before writing; freezing is not mutation."""

import numpy as np

from .ops import damp


def normalize_rates(matrix):
    result = np.array(matrix, dtype=float)  # np.array copies
    damp(result)
    return result


def frozen_rates(matrix):
    result = np.array(matrix, dtype=float)
    # setflags(write=False) is the blessed freezing idiom, not a mutation.
    result.setflags(write=False)
    return result
