"""Fixture twin: solver entry points that never mutate inputs (no RL011)."""

from .impl import frozen_rates, normalize_rates

__all__ = ["frozen_rates", "normalize_rates"]
