"""Fixture: stochastic-kind confusion (RL017 x3)."""

from repro.contracts.checks import check_stochastic
from repro.markov.ctmc import stationary_distribution


def d0_as_standalone_generator(d0):
    # RL017: D0 alone is a subgenerator (rows sum to -D1 rows); the
    # stationary solve needs the full phase generator d0 + d1.
    return stationary_distribution(d0)


def generator_as_stochastic(d0, d1):
    q = d0 + d1
    # RL017: rows of a generator sum to 0, not 1.
    check_stochastic(q)
    return q


def rate_as_probability(mu, model_cls):
    # RL017: a per-ms rate flows into a [0, 1] probability slot.
    return model_cls(bg_probability=mu)
