"""Fixture twin: the sanctioned frozen-dataclass idiom (no RL001)."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GoodModel:
    rate: float

    def __post_init__(self):
        object.__setattr__(self, "rate", max(self.rate, 0.0))

    def rescale(self, factor):
        return replace(self, rate=self.rate * factor)
