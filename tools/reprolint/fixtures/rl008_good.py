"""Fixture twin: matched units, and explicit boundary conversion (no RL008)."""


def serve(slice_ms):
    return slice_ms


def relay(budget_ms):
    return serve(budget_ms)


def convert(quantum_sec):  # noqa: RL003 -- fixture: converted at the boundary
    return serve(quantum_sec * 1000.0)
