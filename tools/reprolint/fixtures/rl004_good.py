"""Fixture twin: the NaN is guarded, not suppressed (no RL004)."""

import math

NEAR_ZERO_BG_PROBABILITY = 1e-9


def completion_metrics(solution, bg_probability):
    if bg_probability < NEAR_ZERO_BG_PROBABILITY:
        return math.nan
    return solution.bg_completion_rate * 2.0


def tabulate(solutions, bg_probability):
    return [completion_metrics(s, bg_probability) for s in solutions]
