"""Fixture twin: milliseconds named as such (no RL003)."""


def simulate(horizon_ms, timeout_ms):
    return horizon_ms - timeout_ms


def warm_up(delay_ms):
    return delay_ms


def run():
    return simulate(1_000.0, timeout_ms=250.0)
