"""Fixture: REPRO_* config backdoors outside the accessors (RL015 x3)."""

import os

_ENV_SHARDS = "REPRO_SWEEP_SHARDS"


def shard_count():
    # RL015: literal read through a same-file constant.
    return int(os.environ.get(_ENV_SHARDS, "1"))


def worker_tag():
    # RL015: bare os.getenv of a REPRO_* name.
    return os.getenv("REPRO_WORKER_TAG", "")


def queue_root():
    # RL015: required read via subscript.
    return os.environ["REPRO_QUEUE_ROOT"]
