"""Shape & stochastic-structure abstract interpretation (RL016-RL020).

The repro codebase is a pipeline of *structured* numpy arrays: generator
blocks whose rows sum to zero, probability vectors that sum to one, QBD
block triples that must be square and mutually conformable, and a
batched kernel that stacks all of them on a leading ``N`` axis.  This
module interprets each function abstractly over a small lattice of
**array facts** and reports structural misuse before runtime:

``ArrayFact``
    ``shape`` -- a tuple of symbolic dimensions (``"m"``, ``"n_b"``,
    ``"2"``, ``"?"`` for unknown, products like ``"m_g*ph"`` from
    ``np.kron``), or ``None`` when the rank itself is unknown;
    ``kind`` -- one of the stochastic kinds below, or ``None``;
    ``transposed`` -- an oriented (row-convention) block observed
    through ``.T``;
    ``stacked`` -- a leading-axis batch (``np.stack`` result, or a
    canonical block name inside ``repro.qbd.batched``).

Stochastic kinds: ``GENERATOR`` (zero row sums), ``SUBGENERATOR``
(``D0``/``A1``/``B00``-style diagonal blocks), ``STOCHASTIC``,
``PROB_VECTOR``, ``RATE_BLOCK`` (non-negative off-diagonal rate blocks
such as ``D1``/``A0``/``A2``), ``RATE_SCALAR`` and ``PROB_SCALAR``.

Facts are *seeded* from the field declarations of the repo's core
models -- ``QBDProcess`` (``b00``/``b01``/``b10``/``a0``/``a1``/``a2``),
``MarkovianArrivalProcess`` (``d0``/``d1``) and ``FgBgModel``
(``service_rate``/``bg_probability``/``idle_wait_rate``) -- whenever a
parameter or attribute carries one of those canonical names, and are
pushed through transfer functions for the operations the codebase
actually uses: ``@``/``np.matmul``, ``np.kron``, ``np.linalg.solve``,
``np.eye``/``zeros``/``ones``/``full``, slicing/indexing, ``.T`` /
``transpose``, ``np.stack``, reductions and elementwise broadcasts.
The kind algebra knows the two assembly idioms ``D0 + D1 -> GENERATOR``
and ``A0 + A1 + A2 -> GENERATOR``.

The rules on top of the lattice:

RL016
    Non-conformable or non-square block assembly reaching
    ``r_matrix``/``drift``/``QBDProcess``: a transposed oriented block
    (``a2.T``, a transposed ``np.kron`` operand), a boundary block with
    a swapped row split (``b01`` shaped ``(m, n_b)``), numerically
    mismatched matmul operands.
RL017
    Stochastic-kind confusion: a subgenerator or rate block where a
    proper generator is expected (``D0`` standalone into
    ``stationary_distribution``/``validate_generator``), a generator
    where a stochastic matrix / probability vector is expected, a rate
    passed as a probability.
RL018
    Batched-axis hazards on leading-``N`` stacks: a reduction without
    an explicit axis (or over ``axis=0``) that silently aggregates
    *across items*; ``np.linalg.solve`` with a stacked LHS and a 2-D
    RHS (vector-vs-matrix dispatch differs across numpy versions); an
    elementwise op mixing a ``(N, m, m)`` stack with a ``(N, m)``
    operand.  Not applied under ``tests``/``benchmarks`` (aggregating
    across items is legitimate in assertions and summaries).
RL019
    NaN-policy violations: a value derived from ``bg_completion_rate``
    used in a comparison or aggregation in a scope with no visible
    NaN guard (``isnan``/``isfinite``/``nan_to_num``/nan-aware
    reduction or a ``NEAR_ZERO_BG_PROBABILITY`` test).  Not applied
    under ``tests`` (assertions pin exact scenarios).
RL020
    Precision hazards: narrowing float dtypes (``float32``/``half``/
    ...), the removed ``np.float_`` alias, and floor division on
    rate/millisecond quantities.

Like the RL006 freeze oracle, the layer is deliberately *syntactic*:
a fact survives straight-line dataflow, a branch joins facts by
agreement, and anything the transfer functions do not model drops to
unknown -- unknown never fires a rule.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, replace
from pathlib import PurePath
from typing import Any

from tools.reprolint.core import Violation

__all__ = [
    "ArrayFact",
    "CANONICAL_SEEDS",
    "KINDS",
    "analyze_shapes",
    "extract_shape_summary",
    "join",
    "shape_rules",
]

# ---------------------------------------------------------------------------
# The lattice
# ---------------------------------------------------------------------------

GENERATOR = "GENERATOR"
SUBGENERATOR = "SUBGENERATOR"
STOCHASTIC = "STOCHASTIC"
PROB_VECTOR = "PROB_VECTOR"
RATE_BLOCK = "RATE_BLOCK"
RATE_SCALAR = "RATE_SCALAR"
PROB_SCALAR = "PROB_SCALAR"

KINDS = frozenset(
    {
        GENERATOR,
        SUBGENERATOR,
        STOCHASTIC,
        PROB_VECTOR,
        RATE_BLOCK,
        RATE_SCALAR,
        PROB_SCALAR,
    }
)

#: Kinds that follow the row convention (rows index "from"-states); using
#: them transposed silently swaps the transition direction.
ORIENTED_KINDS = frozenset({GENERATOR, SUBGENERATOR, STOCHASTIC, RATE_BLOCK})

DIM_UNKNOWN = "?"


@dataclass(frozen=True)
class ArrayFact:
    """One abstract array value: symbolic shape + stochastic kind."""

    shape: tuple[str, ...] | None = None
    kind: str | None = None
    transposed: bool = False
    stacked: bool = False

    @property
    def ndim(self) -> int | None:
        return None if self.shape is None else len(self.shape)

    def to_json(self) -> dict[str, Any]:
        return {
            "s": list(self.shape) if self.shape is not None else None,
            "k": self.kind,
            "t": self.transposed,
            "st": self.stacked,
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "ArrayFact":
        shape = data.get("s")
        return ArrayFact(
            shape=tuple(shape) if shape is not None else None,
            kind=data.get("k"),
            transposed=bool(data.get("t", False)),
            stacked=bool(data.get("st", False)),
        )


def _join_dim(a: str, b: str) -> str:
    return a if a == b else DIM_UNKNOWN


def join(a: ArrayFact | None, b: ArrayFact | None) -> ArrayFact | None:
    """Least upper bound: facts survive a branch merge only by agreement."""
    if a is None or b is None:
        return None
    if a.shape is None or b.shape is None or len(a.shape) != len(b.shape):
        shape = None
    else:
        shape = tuple(_join_dim(x, y) for x, y in zip(a.shape, b.shape))
    return ArrayFact(
        shape=shape,
        kind=a.kind if a.kind == b.kind else None,
        transposed=a.transposed and b.transposed,
        stacked=a.stacked and b.stacked,
    )


def _known(dim: str) -> bool:
    return dim != DIM_UNKNOWN


def _numeric(dim: str) -> bool:
    return dim.isdigit()


def _dims_conflict(a: str, b: str) -> bool:
    """Provable inequality of two symbolic dimensions.

    Distinct *symbols* conflict (the layer compares declared structure,
    not runtime values -- ``m`` and ``n_b`` may coincide numerically,
    but a block indexed by the wrong one is still assembled wrong);
    anything involving ``?`` is compatible.
    """
    return _known(a) and _known(b) and a != b


#: The dimension symbols introduced by the canonical seeds.  A symbolic
#: matmul conflict is only provable between two of *these*: locally named
#: dimensions (``a``, ``phases``) often alias a canonical one at runtime.
_CANONICAL_DIMS = frozenset({"m", "n_b", "ph", "m_g", "N"})


def _matmul_inner_conflict(a: str, b: str) -> bool:
    if not (_known(a) and _known(b)) or a == b:
        return False
    if _numeric(a) and _numeric(b):
        return True
    return a in _CANONICAL_DIMS and b in _CANONICAL_DIMS


def _is_swap(shape: tuple[str, ...], expected: tuple[str, ...]) -> bool:
    """``shape`` is exactly the transposed ``expected`` with distinct dims."""
    if len(shape) != 2 or len(expected) != 2:
        return False
    r, c = expected
    if not (_known(r) and _known(c)) or r == c:
        return False
    return shape == (c, r)


# ---------------------------------------------------------------------------
# Seeds: canonical field declarations of the core models
# ---------------------------------------------------------------------------

#: Facts attached to parameters and attribute reads by canonical name,
#: mirroring the field declarations of ``QBDProcess`` (blocks),
#: ``MarkovianArrivalProcess`` (``d0``/``d1``) and ``FgBgModel``
#: (rates and probabilities).
CANONICAL_SEEDS: dict[str, ArrayFact] = {
    "b00": ArrayFact(("n_b", "n_b"), SUBGENERATOR),
    "b01": ArrayFact(("n_b", "m"), RATE_BLOCK),
    "b10": ArrayFact(("m", "n_b"), RATE_BLOCK),
    "a0": ArrayFact(("m", "m"), RATE_BLOCK),
    "a1": ArrayFact(("m", "m"), SUBGENERATOR),
    "a2": ArrayFact(("m", "m"), RATE_BLOCK),
    "d0": ArrayFact(("ph", "ph"), SUBGENERATOR),
    "d1": ArrayFact(("ph", "ph"), RATE_BLOCK),
    "r": ArrayFact(("m", "m"), None),
    "g": ArrayFact(("m", "m"), None),
    "service_rate": ArrayFact((), RATE_SCALAR),
    "idle_wait_rate": ArrayFact((), RATE_SCALAR),
    "arrival_rate": ArrayFact((), RATE_SCALAR),
    "mu": ArrayFact((), RATE_SCALAR),
    "alpha": ArrayFact((), RATE_SCALAR),
    "lam": ArrayFact((), RATE_SCALAR),
    "bg_probability": ArrayFact((), PROB_SCALAR),
}

#: Block names that are *stacks* inside the batched kernel: the same
#: declarations lifted to a leading item axis.
_BATCHED_STACK_NAMES = frozenset({"a0", "a1", "a2", "r", "g"})

_SCALAR_KINDS = frozenset({RATE_SCALAR, PROB_SCALAR})


def _seed_for(name: str, *, batched: bool) -> ArrayFact | None:
    key = name.lstrip("_")
    if batched and key in _BATCHED_STACK_NAMES:
        return ArrayFact(("N", "m", "m"), None, stacked=True)
    seed = CANONICAL_SEEDS.get(key)
    if seed is not None:
        return seed
    if key.endswith("_rate"):
        return ArrayFact((), RATE_SCALAR)
    if key.endswith("_probability") or key.endswith("_prob"):
        return ArrayFact((), PROB_SCALAR)
    return None


def _is_batched_path(path: str) -> bool:
    return "batched" in PurePath(path).name


def _path_parts(path: str) -> tuple[str, ...]:
    return PurePath(path).parts


def _is_test_path(path: str) -> bool:
    parts = _path_parts(path)
    name = PurePath(path).name
    return (
        "tests" in parts
        or name.startswith("test_")
        or name.startswith("conftest")
    )


def _is_benchmark_path(path: str) -> bool:
    parts = _path_parts(path)
    return "benchmarks" in parts or PurePath(path).name.startswith("bench_")


# ---------------------------------------------------------------------------
# Sink signatures: where structure is *consumed*
# ---------------------------------------------------------------------------

_GENERATOR_SINKS = frozenset(
    {"stationary_distribution", "validate_generator", "check_generator"}
)
_STOCHASTIC_SINKS = frozenset({"check_stochastic", "check_substochastic"})
_PROB_VECTOR_SINKS = frozenset({"check_probability_vector"})
#: ``(a0, a1, a2)`` triples of square, mutually conformable blocks.
_BLOCK_TRIPLE_SINKS = frozenset(
    {
        "r_matrix",
        "batched_r_matrix",
        "r_matrix_functional_iteration",
        "r_matrix_newton",
        "r_matrix_logarithmic_reduction",
        "r_matrix_natural_iteration",
        "g_matrix_logarithmic_reduction",
        "g_matrix_natural_iteration",
        "drift",
        "is_stable",
    }
)
_QBD_PARAMS = ("b00", "b01", "b10", "a0", "a1", "a2")
_QBD_SQUARE = frozenset({"b00", "a0", "a1", "a2"})

#: Every callable the per-file layer already checks by name.  The
#: cross-file pass skips these to avoid double-reporting a direct call.
SINK_NAMES = (
    _GENERATOR_SINKS
    | _STOCHASTIC_SINKS
    | _PROB_VECTOR_SINKS
    | _BLOCK_TRIPLE_SINKS
    | {"QBDProcess"}
)

_REDUCTIONS = frozenset(
    {
        "sum",
        "min",
        "max",
        "mean",
        "prod",
        "std",
        "var",
        "amin",
        "amax",
        "nansum",
        "nanmin",
        "nanmax",
        "nanmean",
        "median",
        "average",
    }
)

_NARROW_DTYPES = frozenset(
    {"float32", "float16", "half", "single", "csingle", "complex64"}
)

_NUMPY_BASES = frozenset({"np", "numpy"})

_NAN_GUARD_CALLS = frozenset(
    {"isnan", "isfinite", "nan_to_num", "nanmin", "nanmax", "nanmean", "nansum"}
)
_NAN_GUARD_NAME = "NEAR_ZERO_BG_PROBABILITY"
_NAN_SOURCE_ATTR = "bg_completion_rate"

_AGGREGATIONS = frozenset({"min", "max", "sum", "sorted", "mean", "average", "median", "amin", "amax"})

_RATEISH_NAMES = frozenset({"mu", "alpha", "lam"})


def _rateish(name: str) -> bool:
    return name.endswith("_ms") or name.endswith("_rate") or name in _RATEISH_NAMES


def _leaf_name(expr: ast.expr) -> str | None:
    """The rightmost identifier of a Name/Attribute chain."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _call_leaf(node: ast.Call) -> str | None:
    return _leaf_name(node.func)


def _is_numpy_call(node: ast.Call, name: str) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == name
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_BASES
    )


# ---------------------------------------------------------------------------
# The abstract interpreter
# ---------------------------------------------------------------------------


@dataclass
class _Finding:
    line: int
    col: int
    code: str
    message: str


@dataclass
class _SinkUse:
    """A parameter forwarded, unmodified, into a known sink slot."""

    param: str
    kind: str | None = None
    square: bool = False


class _Walker:
    """Forward abstract interpretation of one function (or module) body."""

    def __init__(
        self,
        path: str,
        *,
        batched: bool,
        class_name: str | None = None,
        params: dict[str, ArrayFact] | None = None,
        param_names: frozenset[str] = frozenset(),
        check_rl018: bool = True,
        check_rl020: bool = True,
    ) -> None:
        self.path = path
        self.batched = batched
        self.class_name = class_name
        self.env: dict[str, ArrayFact] = dict(params or {})
        self.param_names = param_names
        #: Names locally (re)assigned in this scope.  A canonical seed only
        #: applies to names the code never binds -- once ``d0 = base - ...``
        #: runs, later reads of ``d0`` mean *that* value, not the field
        #: declaration, even when the computed fact is unknown.
        self.assigned: set[str] = set()
        self.check_rl018 = check_rl018
        self.check_rl020 = check_rl020
        self.findings: list[_Finding] = []
        self.sink_uses: list[_SinkUse] = []
        self.calls: list[dict[str, Any]] = []

    # -- reporting ------------------------------------------------------
    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            _Finding(
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                code,
                message,
            )
        )

    # -- statements -----------------------------------------------------
    def run(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            fact = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, stmt.value, fact)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            fact = self._eval(stmt.value)
            self._bind(stmt.target, stmt.value, fact)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.env.pop(stmt.target.id, None)
                self.assigned.add(stmt.target.id)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._branch([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self.env.pop(stmt.target.id, None)
                self.assigned.add(stmt.target.id)
            self._branch([stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._branch([stmt.body, stmt.orelse])
        elif isinstance(stmt, ast.Try):
            blocks = [stmt.body, stmt.orelse, stmt.finalbody]
            blocks.extend(h.body for h in stmt.handlers)
            self._branch(blocks)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
            self.run(stmt.body)
        elif isinstance(stmt, (ast.Assert,)):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
                    self.assigned.add(target.id)
        # Nested defs/classes are walked separately by the driver.

    def _branch(self, blocks: list[list[ast.stmt]]) -> None:
        """Run each block from a copy of the entry env, join the exits."""
        entry = dict(self.env)
        exits: list[dict[str, ArrayFact]] = []
        for block in blocks:
            if not block:
                exits.append(entry)
                continue
            self.env = dict(entry)
            self.run(block)
            exits.append(self.env)
        merged: dict[str, ArrayFact] = {}
        for name in set().union(*(e.keys() for e in exits)) if exits else set():
            fact = exits[0].get(name)
            for other in exits[1:]:
                fact = join(fact, other.get(name))
                if fact is None:
                    break
            if fact is not None:
                merged[name] = fact
        self.env = merged

    def _bind(self, target: ast.expr, value: ast.expr, fact: ArrayFact | None) -> None:
        if isinstance(target, ast.Name):
            self.assigned.add(target.id)
            if fact is not None:
                self.env[target.id] = fact
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple):
            for t, v in zip(target.elts, value.elts):
                self._bind(t, v, self._eval(v))
        elif isinstance(target, ast.Tuple):
            for t in target.elts:
                if isinstance(t, ast.Name):
                    self.env.pop(t.id, None)
                    self.assigned.add(t.id)
        # Subscript / attribute stores do not bind facts.

    # -- expressions ----------------------------------------------------
    def _eval(self, expr: ast.expr) -> ArrayFact | None:
        if isinstance(expr, ast.Name):
            fact = self.env.get(expr.id)
            if fact is not None:
                return fact
            if expr.id in self.assigned:
                return None
            return _seed_for(expr.id, batched=self.batched)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr)
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, (int, float, complex)) and not isinstance(
                expr.value, bool
            ):
                return ArrayFact(())
            return None
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self._eval(elt)
            return None
        if isinstance(expr, ast.Compare):
            self._eval(expr.left)
            for comparator in expr.comparators:
                self._eval(comparator)
            return None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self._eval(value)
            return None
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            return join(self._eval(expr.body), self._eval(expr.orelse))
        if isinstance(expr, (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp)):
            return None
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        return None

    def _eval_attribute(self, expr: ast.Attribute) -> ArrayFact | None:
        if expr.attr == "T":
            base = self._eval(expr.value)
            if base is not None and base.ndim == 2:
                return replace(
                    base,
                    shape=(base.shape[1], base.shape[0]),
                    transposed=not base.transposed,
                )
            return None
        # Attribute *reads* seed from the canonical field declarations
        # (``qbd.a0``, ``arrival.d1``, ``model.service_rate``, ...).
        self._eval(expr.value)
        return _seed_for(expr.attr, batched=False)

    # -- elementwise / matmul -------------------------------------------
    def _eval_binop(self, expr: ast.BinOp) -> ArrayFact | None:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if isinstance(expr.op, ast.MatMult):
            return self._matmul(expr, left, right)
        if isinstance(expr.op, ast.FloorDiv):
            self._check_floordiv(expr)
            return None
        if isinstance(expr.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
            return self._elementwise(expr, left, right)
        return None

    def _check_floordiv(self, expr: ast.BinOp) -> None:
        if not self.check_rl020:
            return
        for side in (expr.left, expr.right):
            name = _leaf_name(side)
            if name is not None and _rateish(name):
                self._emit(
                    expr,
                    "RL020",
                    f"floor division on rate/millisecond quantity {name!r} "
                    "truncates toward zero; rates and _ms durations are "
                    "continuous -- use true division (/) and round "
                    "explicitly where an integer is really meant",
                )
                return

    def _matmul(
        self, expr: ast.BinOp, left: ArrayFact | None, right: ArrayFact | None
    ) -> ArrayFact | None:
        if left is None or right is None or left.shape is None or right.shape is None:
            stacked = bool(left and left.stacked) or bool(right and right.stacked)
            return ArrayFact(None, stacked=stacked) if stacked else None
        ls, rs = left.shape, right.shape
        inner: tuple[str, str] | None = None
        result: tuple[str, ...] | None = None
        if len(ls) == 2 and len(rs) == 2:
            inner, result = (ls[1], rs[0]), (ls[0], rs[1])
        elif len(ls) == 1 and len(rs) == 2:
            inner, result = (ls[0], rs[0]), (rs[1],)
        elif len(ls) == 2 and len(rs) == 1:
            inner, result = (ls[1], rs[0]), (ls[0],)
        elif len(ls) == 3 and len(rs) == 3:
            inner, result = (ls[2], rs[1]), (ls[0], ls[1], rs[2])
        elif len(ls) == 3 and len(rs) == 2:
            inner, result = (ls[2], rs[0]), (ls[0], ls[1], rs[1])
        elif len(ls) == 2 and len(rs) == 3:
            inner, result = (ls[1], rs[1]), (rs[0], ls[0], rs[2])
        elif len(ls) == 3 and len(rs) == 1:
            inner, result = (ls[2], rs[0]), (ls[0], ls[1])
        if inner is not None and _matmul_inner_conflict(*inner):
            self._emit(
                expr,
                "RL016",
                f"matmul operands are not conformable: inner dimensions "
                f"{inner[0]!r} and {inner[1]!r} differ -- a block is "
                "transposed or indexed by the wrong dimension",
            )
        if result is None:
            return None
        return ArrayFact(result, stacked=left.stacked or right.stacked)

    def _elementwise(
        self, expr: ast.BinOp, left: ArrayFact | None, right: ArrayFact | None
    ) -> ArrayFact | None:
        kind = None
        if isinstance(expr.op, ast.Add) and left is not None and right is not None:
            kind = _add_kinds(left.kind, right.kind)
        if left is None or right is None:
            base = left or right
            if base is None or base.shape is None:
                return ArrayFact(None, kind=kind) if kind else None
            return ArrayFact(base.shape, kind=kind, stacked=base.stacked)
        if left.shape is None or right.shape is None:
            stacked = left.stacked or right.stacked
            return ArrayFact(None, kind=kind, stacked=stacked)
        # Stack/slice misalignment: (N, m, m) combined elementwise with
        # (N, m) broadcasts the 2-D operand as a *matrix*, not per item.
        if self.check_rl018 and not _is_test_path(self.path):
            pair = _stack_misalignment(left, right)
            if pair is not None:
                self._emit(
                    expr,
                    "RL018",
                    "elementwise op mixes a leading-axis stack "
                    f"{_fmt(pair[0].shape)} with a per-item operand "
                    f"{_fmt(pair[1].shape)}: numpy aligns shapes from "
                    "the right, so the item axis lands on a matrix axis "
                    "instead of mapping item-to-item -- add explicit "
                    "trailing axes ([:, None, None] / [..., None])",
                )
        shape = _broadcast(left.shape, right.shape)
        if shape is None:
            return ArrayFact(None, kind=kind, stacked=left.stacked or right.stacked)
        return ArrayFact(
            shape, kind=kind, stacked=left.stacked or right.stacked
        )

    # -- subscripts ------------------------------------------------------
    def _eval_subscript(self, expr: ast.Subscript) -> ArrayFact | None:
        base = self._eval(expr.value)
        index = expr.slice
        if base is None or base.shape is None:
            return None
        dims = list(base.shape)
        elements = list(index.elts) if isinstance(index, ast.Tuple) else [index]
        result: list[str] = []
        consumed = 0
        for position, element in enumerate(elements):
            self._eval_index(element)
            if _is_none(element):
                result.append("1")
            elif _is_ellipsis(element):
                # Keep every axis the remaining explicit elements do not
                # consume.
                remaining = sum(
                    1
                    for e in elements[position + 1 :]
                    if not _is_none(e) and not _is_ellipsis(e)
                )
                keep = len(dims) - consumed - remaining
                for _ in range(max(keep, 0)):
                    result.append(dims[consumed])
                    consumed += 1
            elif isinstance(element, ast.Slice):
                if consumed < len(dims):
                    if (
                        element.lower is None
                        and element.upper is None
                        and element.step is None
                    ):
                        result.append(dims[consumed])
                    else:
                        result.append(DIM_UNKNOWN)
                    consumed += 1
            elif isinstance(element, ast.Constant) and isinstance(
                element.value, int
            ):
                consumed += 1  # scalar index: axis dropped
            else:
                # Name/expression index: an int drops the axis, a mask or
                # fancy index keeps the rank -- unknowable statically, so
                # keep the rank but forget the leading extent and the
                # stack pedigree.
                if consumed < len(dims):
                    result.append(DIM_UNKNOWN)
                    consumed += 1
                return ArrayFact(
                    tuple(result) + tuple(dims[consumed:]), kind=None
                )
        result.extend(dims[consumed:])
        return ArrayFact(
            tuple(result),
            kind=None,
            stacked=base.stacked and len(result) == 3,
        )

    def _dim_from_expr(self, expr: ast.expr) -> str:
        """Symbolic dimension named by a shape-tuple element."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return str(expr.value)
        name = _leaf_name(expr)
        if name is not None:
            return name
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.Mult, ast.Add)
        ):
            left = self._dim_from_expr(expr.left)
            right = self._dim_from_expr(expr.right)
            if _known(left) and _known(right):
                sep = "*" if isinstance(expr.op, ast.Mult) else "+"
                return f"{left}{sep}{right}"
            return DIM_UNKNOWN
        self._eval(expr)
        return DIM_UNKNOWN

    def _shape_from_expr(self, expr: ast.expr) -> tuple[str, ...] | None:
        if isinstance(expr, (ast.Tuple, ast.List)):
            return tuple(self._dim_from_expr(e) for e in expr.elts)
        if isinstance(expr, ast.Constant) and isinstance(expr.value, int):
            return (str(expr.value),)
        name = _leaf_name(expr)
        if name is not None:
            return (name,)
        return None

    def _eval_index(self, element: ast.expr) -> None:
        if isinstance(element, ast.Slice):
            for part in (element.lower, element.upper, element.step):
                if part is not None:
                    self._eval(part)
        elif not _is_ellipsis(element):
            self._eval(element)

    # -- calls -----------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> ArrayFact | None:
        leaf = _call_leaf(node)
        arg_facts = [self._eval(arg) for arg in node.args]
        kw_facts = {
            kw.arg: self._eval(kw.value) for kw in node.keywords if kw.arg
        }
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value)

        self._check_dtype_kwargs(node)
        if leaf is None:
            return None

        # numpy factories -------------------------------------------------
        if leaf in {"zeros", "ones", "empty", "full"} and node.args:
            shape = self._shape_from_expr(node.args[0])
            if shape is not None:
                return ArrayFact(shape)
            return None
        if leaf == "eye" and node.args:
            dim = self._dim_from_expr(node.args[0])
            return ArrayFact((dim, dim))
        if leaf in {"zeros_like", "ones_like", "empty_like", "full_like", "copy"}:
            return arg_facts[0] if arg_facts else None
        if leaf in {"asarray", "array", "ascontiguousarray", "asfortranarray"}:
            return arg_facts[0] if arg_facts else None
        if leaf == "astype":
            base = (
                self._eval(node.func.value)
                if isinstance(node.func, ast.Attribute)
                else None
            )
            self._check_astype(node)
            return base
        if leaf == "kron" and len(node.args) == 2:
            return self._kron(node, arg_facts[0], arg_facts[1])
        if leaf == "stack" and node.args:
            elem = self._stack_element_fact(node.args[0])
            if elem is not None and elem.shape is not None:
                return ArrayFact(("N", *elem.shape), stacked=True)
            return ArrayFact(None, stacked=True)
        if leaf == "transpose":
            return self._transpose_call(node, arg_facts)
        if leaf == "solve" and len(node.args) >= 2:
            return self._solve(node, arg_facts[0], arg_facts[1])
        if leaf == "lu_solve" and len(node.args) >= 2:
            return arg_facts[1]
        if leaf == "inv":
            return arg_facts[0] if arg_facts else None
        if leaf == "diag" and arg_facts and arg_facts[0] is not None:
            inner = arg_facts[0]
            if inner.ndim == 2:
                return ArrayFact((inner.shape[0],))
            if inner.ndim == 1:
                return ArrayFact((inner.shape[0], inner.shape[0]))
            return None
        if leaf in _REDUCTIONS:
            return self._reduction(node, leaf, arg_facts)
        if leaf in {"float", "int", "abs"}:
            inner = arg_facts[0] if arg_facts else None
            if inner is not None and inner.kind in _SCALAR_KINDS:
                return ArrayFact((), inner.kind)
            if leaf == "abs":
                return inner
            return ArrayFact(()) if arg_facts else None
        if leaf == "_as_block_stack":
            return ArrayFact(("N", "m", "m"), stacked=True)

        # structure sinks -------------------------------------------------
        self._check_sinks(node, leaf, arg_facts, kw_facts)
        self._record_call(node, arg_facts, kw_facts)
        return None

    def _transpose_call(
        self, node: ast.Call, arg_facts: list[ArrayFact | None]
    ) -> ArrayFact | None:
        base: ArrayFact | None
        perm_offset = 0
        if isinstance(node.func, ast.Attribute) and not (
            isinstance(node.func.value, ast.Name)
            and node.func.value.id in _NUMPY_BASES
        ):
            base = self._eval(node.func.value)
        else:
            base = arg_facts[0] if arg_facts else None
            perm_offset = 1
        if base is None or base.shape is None:
            return base
        perm = [
            a.value
            for a in node.args[perm_offset:]
            if isinstance(a, ast.Constant) and isinstance(a.value, int)
        ]
        if len(perm) == len(base.shape):
            return replace(base, shape=tuple(base.shape[i] for i in perm))
        if base.ndim == 2 and not perm:
            return replace(
                base,
                shape=(base.shape[1], base.shape[0]),
                transposed=not base.transposed,
            )
        return replace(base, shape=None)

    def _kron(
        self,
        node: ast.Call,
        left: ArrayFact | None,
        right: ArrayFact | None,
    ) -> ArrayFact | None:
        for operand in (left, right):
            if (
                operand is not None
                and operand.transposed
                and operand.kind in ORIENTED_KINDS
            ):
                self._emit(
                    node,
                    "RL016",
                    "transposed kron operand: a row-oriented "
                    f"{operand.kind} block enters np.kron through .T, "
                    "which swaps its transition direction in the "
                    "assembled block -- drop the transpose (or transpose "
                    "the assembled result deliberately)",
                )
        if (
            left is None
            or right is None
            or left.ndim != 2
            or right.ndim != 2
        ):
            return None
        dims = tuple(
            _dim_product(a, b)
            for a, b in zip(left.shape, right.shape)
        )
        return ArrayFact(dims)

    def _solve(
        self,
        node: ast.Call,
        lhs: ArrayFact | None,
        rhs: ArrayFact | None,
    ) -> ArrayFact | None:
        if (
            self.check_rl018
            and not _is_test_path(self.path)
            and lhs is not None
            and lhs.stacked
            and lhs.ndim == 3
            and rhs is not None
            and rhs.ndim == 2
        ):
            self._emit(
                node,
                "RL018",
                "np.linalg.solve with a stacked (N, m, m) LHS and a 2-D "
                "RHS: vector-vs-matrix dispatch for a 2-D RHS differs "
                "between numpy versions -- keep the RHS explicitly 3-D "
                "((N, m, 1), e.g. rhs[..., None])",
            )
        return rhs

    def _reduction(
        self, node: ast.Call, leaf: str, arg_facts: list[ArrayFact | None]
    ) -> ArrayFact | None:
        if isinstance(node.func, ast.Attribute) and not (
            isinstance(node.func.value, ast.Name)
            and node.func.value.id in _NUMPY_BASES
        ):
            base = self._eval(node.func.value)
        else:
            base = arg_facts[0] if arg_facts else None
        axis = self._reduction_axis(node)
        if (
            self.check_rl018
            and not _is_test_path(self.path)
            and not _is_benchmark_path(self.path)
            and base is not None
            and base.stacked
            and base.ndim == 3
            and axis in ("none", "0")
        ):
            how = (
                "with no axis argument"
                if axis == "none"
                else "over axis=0 (the item axis)"
            )
            self._emit(
                node,
                "RL018",
                f"reduction .{leaf}() {how} on a leading-axis (N, m, m) "
                "stack aggregates *across items* instead of per item -- "
                "reduce over the trailing axes (axis=(1, 2) or axis=-1) "
                "to keep one value per stacked item",
            )
        if base is None or base.shape is None:
            return None
        if axis == "none":
            return ArrayFact(())
        # Partial reductions: the reduced shape depends on which axes the
        # (possibly dynamic) axis argument names -- drop to unknown.
        return None

    @staticmethod
    def _reduction_axis(node: ast.Call) -> str:
        """``"none"``, ``"0"``, ``"trailing"`` or ``"other"``."""
        axis: ast.expr | None = None
        for kw in node.keywords:
            if kw.arg == "axis":
                axis = kw.value
        if axis is None:
            numpy_style = isinstance(node.func, ast.Name) or (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in _NUMPY_BASES
            )
            if numpy_style and len(node.args) >= 2:
                axis = node.args[1]
            elif not numpy_style and node.args:
                axis = node.args[0]
        if axis is None:
            return "none"
        if isinstance(axis, ast.Constant):
            if axis.value is None:
                return "none"
            if axis.value == 0:
                return "0"
        if isinstance(axis, ast.Tuple):
            values = [
                e.value
                for e in axis.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, int)
            ]
            if values and 0 not in values:
                return "trailing"
        if isinstance(axis, ast.Constant) and isinstance(axis.value, int):
            return "trailing" if axis.value != 0 else "0"
        if isinstance(axis, ast.UnaryOp):
            return "trailing"  # axis=-1 style
        return "other"

    def _stack_element_fact(self, arg: ast.expr) -> ArrayFact | None:
        if isinstance(arg, (ast.List, ast.Tuple)) and arg.elts:
            fact = self._eval(arg.elts[0])
            for elt in arg.elts[1:]:
                fact = join(fact, self._eval(elt))
            return fact
        if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
            return None
        return None

    # -- RL020 helpers ----------------------------------------------------
    def _check_dtype_kwargs(self, node: ast.Call) -> None:
        if not self.check_rl020:
            return
        for kw in node.keywords:
            if kw.arg == "dtype":
                self._check_dtype_value(kw.value)

    def _check_astype(self, node: ast.Call) -> None:
        if not self.check_rl020:
            return
        if node.args:
            self._check_dtype_value(node.args[0])
        for kw in node.keywords:
            if kw.arg == "dtype":
                self._check_dtype_value(kw.value)

    def _check_dtype_value(self, value: ast.expr) -> None:
        name: str | None = None
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            name = value.value
        else:
            name = _leaf_name(value)
        if name is None:
            return
        if name in _NARROW_DTYPES:
            self._emit(
                value,
                "RL020",
                f"narrowing float dtype {name!r}: rates, probabilities "
                "and _ms durations are float64 repo-wide -- a float32 "
                "downcast silently loses ~9 significant digits in the "
                "matrix-geometric iterations",
            )
        elif name == "float_":
            self._emit(
                value,
                "RL020",
                "np.float_ was removed in numpy 2.0 and reads as a "
                "narrowing alias -- spell the precision explicitly "
                "(float or np.float64)",
            )

    # -- sink checks ------------------------------------------------------
    def _check_sinks(
        self,
        node: ast.Call,
        leaf: str,
        arg_facts: list[ArrayFact | None],
        kw_facts: dict[str, ArrayFact | None],
    ) -> None:
        if leaf in _GENERATOR_SINKS:
            self._check_kind_sink(node, leaf, arg_facts, GENERATOR)
        elif leaf in _STOCHASTIC_SINKS:
            self._check_kind_sink(node, leaf, arg_facts, STOCHASTIC)
        elif leaf in _PROB_VECTOR_SINKS:
            self._check_kind_sink(node, leaf, arg_facts, PROB_VECTOR)
        elif leaf in _BLOCK_TRIPLE_SINKS:
            self._check_block_triple(node, leaf, arg_facts, kw_facts)
        elif leaf == "QBDProcess" or (
            leaf == "cls" and self.class_name == "QBDProcess"
        ):
            self._check_qbd_ctor(node, arg_facts, kw_facts)
        self._check_probability_kwargs(node, kw_facts)
        self._note_sink_uses(node, leaf)

    def _check_kind_sink(
        self,
        node: ast.Call,
        leaf: str,
        arg_facts: list[ArrayFact | None],
        expected: str,
    ) -> None:
        fact = arg_facts[0] if arg_facts else None
        if fact is None or fact.kind is None or fact.kind == expected:
            return
        if expected == GENERATOR and fact.kind in (
            SUBGENERATOR,
            RATE_BLOCK,
            STOCHASTIC,
        ):
            hint = (
                "D0 alone is a *sub*generator (rows sum to -D1 rows); "
                "pass the full phase generator (e.g. d0 + d1)"
                if fact.kind == SUBGENERATOR
                else "pass the full phase generator, not a "
                f"{fact.kind} block"
            )
            self._emit(
                node,
                "RL017",
                f"{leaf}() expects a proper generator but receives a "
                f"{fact.kind} value: {hint}",
            )
        elif expected in (STOCHASTIC, PROB_VECTOR) and fact.kind in (
            GENERATOR,
            SUBGENERATOR,
        ):
            self._emit(
                node,
                "RL017",
                f"{leaf}() expects a {expected.lower().replace('_', ' ')} "
                f"but receives a {fact.kind} (rows sum to 0, not 1); "
                "convert (e.g. embedded jump chain) before the call",
            )

    def _check_oriented(self, node: ast.Call, name: str, fact: ArrayFact | None) -> bool:
        if fact is not None and fact.transposed and fact.kind in ORIENTED_KINDS:
            self._emit(
                node,
                "RL016",
                f"block {name!r} is a transposed {fact.kind}: QBD blocks "
                "follow the row convention (rows index the from-state) -- "
                "passing .T swaps the transition direction",
            )
            return True
        return False

    def _check_square(self, node: ast.Call, name: str, fact: ArrayFact | None) -> None:
        if fact is None or fact.ndim != 2:
            return
        r, c = fact.shape
        if _matmul_inner_conflict(r, c):
            self._emit(
                node,
                "RL016",
                f"block {name!r} must be square, got shape "
                f"({r}, {c})",
            )

    def _check_block_triple(
        self,
        node: ast.Call,
        leaf: str,
        arg_facts: list[ArrayFact | None],
        kw_facts: dict[str, ArrayFact | None],
    ) -> None:
        names = ("a0", "a1", "a2")
        facts: dict[str, ArrayFact | None] = {}
        for index, name in enumerate(names):
            if name in kw_facts:
                facts[name] = kw_facts[name]
            elif index < len(arg_facts):
                facts[name] = arg_facts[index]
            else:
                facts[name] = None
        for name in names:
            if not self._check_oriented(node, name, facts[name]):
                self._check_square(node, name, facts[name])
        # Numerically incompatible triple members.
        shapes = {
            name: f.shape
            for name, f in facts.items()
            if f is not None and f.ndim == 2
        }
        numeric = {
            name: s
            for name, s in shapes.items()
            if all(_numeric(d) for d in s)
        }
        if len({s for s in numeric.values()}) > 1:
            listing = ", ".join(
                f"{name}={_fmt(s)}" for name, s in sorted(numeric.items())
            )
            self._emit(
                node,
                "RL016",
                f"{leaf}() requires same-shape square blocks, got "
                f"{listing}",
            )

    def _check_qbd_ctor(
        self,
        node: ast.Call,
        arg_facts: list[ArrayFact | None],
        kw_facts: dict[str, ArrayFact | None],
    ) -> None:
        facts: dict[str, ArrayFact | None] = {}
        for index, name in enumerate(_QBD_PARAMS):
            if name in kw_facts:
                facts[name] = kw_facts[name]
            elif index < len(arg_facts):
                facts[name] = arg_facts[index]
            else:
                facts[name] = None
        for name in _QBD_PARAMS:
            if self._check_oriented(node, name, facts[name]):
                continue
            if name in _QBD_SQUARE:
                self._check_square(node, name, facts[name])
        boundary = facts["b00"]
        repeating = facts["a1"]
        n_b = boundary.shape[0] if boundary is not None and boundary.ndim == 2 else None
        m = repeating.shape[0] if repeating is not None and repeating.ndim == 2 else None
        if n_b is None or m is None:
            return
        for name, expected in (("b01", (n_b, m)), ("b10", (m, n_b))):
            fact = facts[name]
            if fact is None or fact.ndim != 2 or fact.transposed:
                continue
            if _is_swap(fact.shape, expected):
                self._emit(
                    node,
                    "RL016",
                    f"boundary block {name!r} has the wrong row split: "
                    f"expected shape {_fmt(expected)} (rows = "
                    f"{'boundary' if name == 'b01' else 'repeating'} "
                    f"states), got the transposed {_fmt(fact.shape)}",
                )
            elif all(_numeric(d) for d in (*fact.shape, *expected)) and (
                fact.shape != expected
            ):
                self._emit(
                    node,
                    "RL016",
                    f"boundary block {name!r} must have shape "
                    f"{_fmt(expected)}, got {_fmt(fact.shape)}",
                )

    def _check_probability_kwargs(
        self, node: ast.Call, kw_facts: dict[str, ArrayFact | None]
    ) -> None:
        for kw in node.keywords:
            if kw.arg is None:
                continue
            if kw.arg == "bg_probability" or kw.arg.endswith("_probability"):
                fact = kw_facts.get(kw.arg)
                if fact is not None and fact.kind == RATE_SCALAR:
                    described = _leaf_name(kw.value) or "value"
                    self._emit(
                        node,
                        "RL017",
                        f"rate-valued {described!r} flows into probability "
                        f"parameter {kw.arg!r}: rates are per-ms and "
                        "unbounded, probabilities live in [0, 1] -- "
                        "normalize (rate ratio) before the call",
                    )

    # -- interprocedural extraction --------------------------------------
    def _note_sink_uses(self, node: ast.Call, leaf: str) -> None:
        """Record parameters forwarded unmodified into known sink slots."""
        expected_kind = (
            GENERATOR
            if leaf in _GENERATOR_SINKS
            else STOCHASTIC
            if leaf in _STOCHASTIC_SINKS
            else PROB_VECTOR
            if leaf in _PROB_VECTOR_SINKS
            else None
        )
        if expected_kind is not None and node.args:
            name = node.args[0].id if isinstance(node.args[0], ast.Name) else None
            if name in self.param_names:
                self.sink_uses.append(_SinkUse(name, kind=expected_kind))
        if leaf in _BLOCK_TRIPLE_SINKS:
            for arg in node.args[:3]:
                if isinstance(arg, ast.Name) and arg.id in self.param_names:
                    self.sink_uses.append(_SinkUse(arg.id, square=True))
            for kw in node.keywords:
                if (
                    kw.arg in ("a0", "a1", "a2")
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id in self.param_names
                ):
                    self.sink_uses.append(_SinkUse(kw.value.id, square=True))

    def _record_call(
        self,
        node: ast.Call,
        arg_facts: list[ArrayFact | None],
        kw_facts: dict[str, ArrayFact | None],
    ) -> None:
        """Record the call with arg facts for the cross-file shape pass."""
        if not any(arg_facts) and not any(kw_facts.values()):
            return
        func = node.func
        if isinstance(func, ast.Name):
            target: list[str] = ["name", func.id]
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            target = ["attr", func.value.id, func.attr]
        else:
            return
        self.calls.append(
            {
                "line": node.lineno,
                "col": node.col_offset,
                "target": target,
                "pos": [f.to_json() if f else None for f in arg_facts],
                "kw": {
                    k: (f.to_json() if f else None)
                    for k, f in kw_facts.items()
                },
            }
        )


def _is_none(e: ast.expr) -> bool:
    return isinstance(e, ast.Constant) and e.value is None


def _is_ellipsis(e: ast.expr) -> bool:
    return isinstance(e, ast.Constant) and e.value is Ellipsis


def _fmt(shape: tuple[str, ...]) -> str:
    return "(" + ", ".join(shape) + ")"


def _dim_product(a: str, b: str) -> str:
    if not _known(a) or not _known(b):
        return DIM_UNKNOWN
    if _numeric(a) and _numeric(b):
        return str(int(a) * int(b))
    if a == "1":
        return b
    if b == "1":
        return a
    return f"{a}*{b}"


def _broadcast(
    left: tuple[str, ...], right: tuple[str, ...]
) -> tuple[str, ...] | None:
    out: list[str] = []
    for i in range(1, max(len(left), len(right)) + 1):
        a = left[-i] if i <= len(left) else "1"
        b = right[-i] if i <= len(right) else "1"
        if a == b:
            out.append(a)
        elif a == "1":
            out.append(b)
        elif b == "1":
            out.append(a)
        elif not _known(a):
            out.append(b)
        elif not _known(b):
            out.append(a)
        elif _numeric(a) and _numeric(b):
            return None  # provably incompatible
        else:
            out.append(DIM_UNKNOWN)
    return tuple(reversed(out))


def _stack_misalignment(
    left: ArrayFact, right: ArrayFact
) -> tuple[ArrayFact, ArrayFact] | None:
    """A per-item operand broadcast against the *trailing* matrix axes.

    An elementwise op between a ``(N, m, m)`` stack and a per-item
    ``(N,)`` or ``(N, m)`` array aligns from the right, so the item
    axis lands on a matrix axis instead of mapping item-to-item.
    Detected only when the leading symbols provably coincide and the
    item count provably differs from the matrix dimension.
    """
    for stack, flat in ((left, right), (right, left)):
        if not (stack.stacked and stack.ndim == 3 and _known(stack.shape[0])):
            continue
        n = stack.shape[0]
        m = stack.shape[2]
        if flat.ndim == 1 and flat.shape[0] == n and _dims_conflict(m, n):
            return stack, flat
        if (
            flat.ndim == 2
            and flat.shape[0] == n
            and _dims_conflict(stack.shape[1], n)
            and not _dims_conflict(m, flat.shape[1])
        ):
            return stack, flat
    return None


def _add_kinds(a: str | None, b: str | None) -> str | None:
    """Kind algebra of ``+``: the two generator-assembly idioms."""
    pair = {a, b}
    if pair == {SUBGENERATOR, RATE_BLOCK} or pair == {GENERATOR, RATE_BLOCK}:
        return GENERATOR
    if pair == {RATE_BLOCK}:
        return RATE_BLOCK
    return None


# ---------------------------------------------------------------------------
# RL019: the bg_completion_rate NaN policy
# ---------------------------------------------------------------------------


def _scope_has_nan_guard(body: list[ast.stmt]) -> bool:
    for node in _walk_shallow(body):
        if isinstance(node, ast.Call):
            leaf = _call_leaf(node)
            if leaf in _NAN_GUARD_CALLS:
                return True
        if isinstance(node, ast.Name) and node.id == _NAN_GUARD_NAME:
            return True
        if isinstance(node, ast.Attribute) and node.attr == _NAN_GUARD_NAME:
            return True
    return False


def _walk_shallow(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _contains_nan_source(expr: ast.expr, derived: set[str]) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr == _NAN_SOURCE_ATTR:
            return True
        if isinstance(node, ast.Name) and node.id in derived:
            return True
    return False


def _rl019_scan(
    body: list[ast.stmt], path: str, findings: list[_Finding]
) -> None:
    if _scope_has_nan_guard(body):
        return
    derived: set[str] = set()
    for node in _walk_shallow(body):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.expr):
            if _contains_nan_source(node.value, derived):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        derived.add(target.id)
    for node in _walk_shallow(body):
        site: ast.AST | None = None
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if any(_contains_nan_source(o, derived) for o in operands):
                site = node
        elif isinstance(node, ast.Call):
            leaf = _call_leaf(node)
            if leaf in _AGGREGATIONS and any(
                _contains_nan_source(a, derived) for a in node.args
            ):
                site = node
        if site is not None:
            findings.append(
                _Finding(
                    site.lineno,
                    site.col_offset,
                    "RL019",
                    "value derived from bg_completion_rate used in a "
                    "comparison/aggregation with no NaN guard in scope: "
                    "below NEAR_ZERO_BG_PROBABILITY the metric is a "
                    "deliberate NaN and every comparison is silently "
                    "False -- test math.isnan()/np.isfinite() first (or "
                    "gate on bg_probability >= NEAR_ZERO_BG_PROBABILITY)",
                )
            )


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def _function_param_seeds(
    func: ast.FunctionDef | ast.AsyncFunctionDef, *, batched: bool
) -> tuple[dict[str, ArrayFact], frozenset[str]]:
    args = func.args
    names = [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ]
    if names and names[0] in {"self", "cls"}:
        names = names[1:]
    seeds: dict[str, ArrayFact] = {}
    for name in names:
        seed = _seed_for(name, batched=batched)
        if seed is not None:
            seeds[name] = seed
    return seeds, frozenset(names)


def _iter_scopes(
    tree: ast.Module,
) -> Iterator[tuple[str | None, str, ast.AST]]:
    """Yield ``(class_name, qualname, node)`` for the module and every
    function/method (module body yields ``("", "<module>")``-style)."""
    yield None, "<module>", tree
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, stmt.name, stmt
            for inner in ast.walk(stmt):
                if (
                    isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and inner is not stmt
                ):
                    yield None, f"{stmt.name}.{inner.name}", inner
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield stmt.name, f"{stmt.name}.{item.name}", item


def analyze_shapes(
    tree: ast.Module, path: str
) -> tuple[list[_Finding], dict[str, Any]]:
    """Run the abstract interpreter; returns ``(findings, summary)``.

    The summary is JSON-only and rides the project result cache:
    ``functions`` maps qualnames to sink-derived parameter expectations,
    ``calls`` lists call sites whose arguments carried facts (for the
    cross-file RL016/RL017 pass in :mod:`tools.reprolint.project`).
    """
    batched = _is_batched_path(path)
    is_test = _is_test_path(path)
    findings: list[_Finding] = []
    functions: dict[str, Any] = {}
    calls: list[dict[str, Any]] = []

    for class_name, qualname, node in _iter_scopes(tree):
        if isinstance(node, ast.Module):
            walker = _Walker(path, batched=batched)
            body = node.body
        else:
            assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            seeds, param_names = _function_param_seeds(node, batched=batched)
            walker = _Walker(
                path,
                batched=batched,
                class_name=class_name,
                params=seeds,
                param_names=param_names,
            )
            body = node.body
        walker.run(body)
        findings.extend(walker.findings)
        if not is_test:
            _rl019_scan(body, path, findings)
        for record in walker.calls:
            record["in_function"] = None if qualname == "<module>" else qualname
            calls.append(record)
        if walker.sink_uses:
            expect: dict[str, Any] = {}
            for use in walker.sink_uses:
                entry = expect.setdefault(
                    use.param, {"kind": None, "square": False}
                )
                if use.kind is not None:
                    entry["kind"] = use.kind
                if use.square:
                    entry["square"] = True
            functions[qualname] = {"expect": expect}

    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings, {"functions": functions, "calls": calls}


def extract_shape_summary(tree: ast.Module, path: str) -> dict[str, Any]:
    """The cacheable shape summary of one module (no violations)."""
    _, summary = analyze_shapes(tree, path)
    return summary


def shape_rules(tree: ast.Module, path: str) -> Iterator[Violation]:
    """The per-file RL016-RL020 rule driver (registered in FILE_RULES)."""
    findings, _ = analyze_shapes(tree, path)
    for finding in findings:
        yield Violation(
            path, finding.line, finding.col, finding.code, finding.message
        )
