"""Project-wide call graph over the symbol table's definition records.

A node is a ``(module, qualname)`` pair -- ``qualname`` is a top-level
function name or ``Class.method``.  Edges carry the JSON call record of
the call site (argument bindings included), which is what lets the
effect propagation of :mod:`tools.reprolint.effects` map a callee's
parameter mutation back to the caller's argument names.

The graph is built from the per-file ``defs`` summaries (cached with
their files); resolution of call targets through imports and re-export
chains is delegated to the caller (``Project.resolve`` provides it), so
this module stays a pure graph structure plus Tarjan's SCC algorithm.

:meth:`CallGraph.sccs` returns the strongly connected components in
**callees-first order** (reverse topological order of the condensation):
by the time a component is emitted, every component it can reach has
already been emitted -- exactly the order a bottom-up effect fixpoint
wants.  The implementation is iterative, so pathological call chains
cannot hit the interpreter's recursion limit.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

__all__ = ["CallGraph", "Node", "build_call_graph"]

#: ``(module, qualname)`` of one function or method definition.
Node = tuple[str, str]

#: JSON call record as produced by ``effects.extract_defs``.
CallRecord = dict[str, Any]


class CallGraph:
    """Directed multigraph of resolved call sites between definitions."""

    def __init__(self) -> None:
        self._edges: dict[Node, list[tuple[Node, CallRecord]]] = {}

    # -- construction ---------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._edges.setdefault(node, [])

    def add_edge(self, caller: Node, callee: Node, call: CallRecord) -> None:
        self.add_node(caller)
        self.add_node(callee)
        self._edges[caller].append((callee, call))

    # -- queries --------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        return sorted(self._edges)

    def callees(self, node: Node) -> list[tuple[Node, CallRecord]]:
        """Outgoing edges of ``node`` (one per resolved call site)."""
        return list(self._edges.get(node, ()))

    def callee_nodes(self, node: Node) -> list[Node]:
        """Distinct callee nodes of ``node``, sorted."""
        return sorted({callee for callee, _ in self._edges.get(node, ())})

    def sccs(self) -> list[list[Node]]:
        """Strongly connected components, callees first (Tarjan, iterative)."""
        index: dict[Node, int] = {}
        lowlink: dict[Node, int] = {}
        on_stack: set[Node] = set()
        stack: list[Node] = []
        components: list[list[Node]] = []
        counter = 0

        for root in self.nodes:
            if root in index:
                continue
            # Each frame is (node, iterator over callee nodes).
            work = [(root, iter(self.callee_nodes(root)))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, edges = work[-1]
                advanced = False
                for callee in edges:
                    if callee not in index:
                        index[callee] = lowlink[callee] = counter
                        counter += 1
                        stack.append(callee)
                        on_stack.add(callee)
                        work.append((callee, iter(self.callee_nodes(callee))))
                        advanced = True
                        break
                    if callee in on_stack:
                        lowlink[node] = min(lowlink[node], index[callee])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: list[Node] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(sorted(component))
        return components


def build_call_graph(
    defs: dict[Node, CallRecord],
    resolve: Callable[[str, str, CallRecord], Node | None],
    *,
    nodes: Iterable[Node] | None = None,
) -> CallGraph:
    """Wire ``defs`` into a :class:`CallGraph` using ``resolve``.

    ``resolve(module, qualname, call)`` maps one call record from the
    definition ``(module, qualname)`` to its callee node, or ``None``
    when the target is external/dynamic.  Unresolvable calls simply do
    not become edges -- the analysis stays conservative about what it
    *knows*, not about what it guesses.
    """
    graph = CallGraph()
    for node in nodes if nodes is not None else defs:
        graph.add_node(node)
    for node, record in defs.items():
        module, qualname = node
        for call in record.get("calls", ()):
            callee = resolve(module, qualname, call)
            if callee is not None and callee in defs:
                graph.add_edge(node, callee, call)
    return graph
