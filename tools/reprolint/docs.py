"""One registry of per-rule documentation: rationale, example, fix.

Feeds both ``python -m tools.reprolint --explain RLxxx`` and the SARIF
``help`` metadata (``reportingDescriptor.help.text``), so the console
explanation and the code-scanning UI always tell the same story.
"""

from __future__ import annotations

from dataclasses import dataclass

from tools.reprolint.rules import RULE_SUMMARIES

__all__ = ["RULE_DOCS", "RuleDoc", "explain", "help_text"]


@dataclass(frozen=True)
class RuleDoc:
    """Documentation of one rule beyond its one-line summary."""

    rationale: str
    example: str
    fix: str


RULE_DOCS: dict[str, RuleDoc] = {
    "RL001": RuleDoc(
        rationale=(
            "Models are frozen dataclasses: every solver relies on inputs "
            "that cannot change under it.  An attribute assignment outside "
            "__post_init__ (even via object.__setattr__) breaks that "
            "contract and silently invalidates cached solutions."
        ),
        example="model.bg_buffer = 10  # on a frozen FgBgModel",
        fix=(
            "Build a new instance (dataclasses.replace(model, "
            "bg_buffer=10)) instead of mutating the existing one."
        ),
    ),
    "RL002": RuleDoc(
        rationale=(
            "A numpy array stored on a (frozen) dataclass is still mutable "
            "through its buffer; read-only flags are what make the freeze "
            "real and the construction certificates sound."
        ),
        example="object.__setattr__(self, 'd0', d0)  # d0 still writable",
        fix="Call d0.setflags(write=False) before storing the array.",
    ),
    "RL003": RuleDoc(
        rationale=(
            "Time is milliseconds everywhere in this repo; a time-like "
            "parameter without the _ms suffix invites second/microsecond "
            "confusion at call sites."
        ),
        example="def solve(timeout): ...  # ms? s?",
        fix="Rename to timeout_ms (rates are per-ms for the same reason).",
    ),
    "RL004": RuleDoc(
        rationale=(
            "bg_completion_rate is a deliberate NaN below "
            "NEAR_ZERO_BG_PROBABILITY and never a RuntimeWarning; "
            "suppressing warnings near it hides genuine numerical faults."
        ),
        example="with np.errstate(invalid='ignore'): rate = ...",
        fix=(
            "Remove the suppression; guard the near-zero-p case explicitly "
            "instead."
        ),
    ),
    "RL005": RuleDoc(
        rationale=(
            "The phase process A0+A1+A2 of the FG/BG chain is reducible "
            "(background groups are transient), so a plain stationary "
            "solve is singular or wrong; drift() does the SCC-aware "
            "decomposition."
        ),
        example="pi = stationary_distribution(a0 + a1 + a2)",
        fix="Use repro.qbd.rmatrix.drift(a0, a1, a2) instead.",
    ),
    "RL006": RuleDoc(
        rationale=(
            "Construction certificates (_generator_validated, "
            "blocks_validated=True, warm-start seeds) let the contract "
            "layer skip re-validation -- which is only sound when the "
            "certified arrays were frozen on every path reaching the "
            "certificate."
        ),
        example="self._generator_validated = True  # d0 never frozen",
        fix=(
            "Freeze with setflags(write=False) on all paths before "
            "issuing the certificate; keep freeze helpers flat, "
            "same-module and unconditional so the checker can see them."
        ),
    ),
    "RL007": RuleDoc(
        rationale=(
            "Public entry points of repro.{core,engine,processes,qbd} "
            "carry runtime contracts by convention; an unguarded export "
            "is a hole in the validated surface."
        ),
        example="def solve_qbd(process): return _impl(process)",
        fix=(
            "Add @contracted, a check_*/validate_* call, or a raising "
            "guard; waive deliberate exceptions with a reasoned noqa or "
            "the baseline."
        ),
    ),
    "RL008": RuleDoc(
        rationale=(
            "A _ms value flowing into a non-_ms parameter (or vice versa) "
            "across a call site is a unit error the type system cannot "
            "catch."
        ),
        example="wait(seconds=timeout_ms)",
        fix="Convert explicitly (timeout_ms / 1000.0) or fix the name.",
    ),
    "RL009": RuleDoc(
        rationale=(
            "A noqa that no longer suppresses anything is debt pretending "
            "to be documentation, and one without a reason is "
            "unreviewable."
        ),
        example="x = 1  # noqa: RL001",
        fix=(
            "Delete stale suppressions (--fix does it); live ones need "
            "'# noqa: RLxxx -- reason'."
        ),
    ),
    "RL010": RuleDoc(
        rationale=(
            "load_sweep_series/idle_wait_sweep_series were removed; "
            "sweep_many is the single sweep surface."
        ),
        example="series = load_sweep_series(models)",
        fix="Call sweep_many (--fix rewrites simple call sites).",
    ),
    "RL011": RuleDoc(
        rationale=(
            "Solvers never mutate inputs: a parameter array written in "
            "place -- directly or through a callee's effect summary -- "
            "corrupts caller state and cache keys."
        ),
        example="def solve(a1): a1 += np.eye(len(a1))",
        fix="Copy first (a1 = a1.copy()) or build a new array.",
    ),
    "RL012": RuleDoc(
        rationale=(
            "Job state and terminal timestamps move only through the "
            "lifecycle._to() gate, which enforces the transition table; a "
            "raw write can fabricate impossible histories (DONE without "
            "finished_at_ms, RUNNING after CANCELLED)."
        ),
        example="job.state = JobState.DONE",
        fix="Go through lifecycle._to(job, JobState.DONE, ...).",
    ),
    "RL013": RuleDoc(
        rationale=(
            "Durable repository/cache writes must be crash-atomic "
            "(tmp.<pid> + os.replace for files; a 'with conn:' "
            "transaction for SQLite, which commits or rolls back as one "
            "unit) and O_EXCL lock fds must close on all paths, or a "
            "SIGKILL leaves torn files, half-applied updates and dead "
            "locks."
        ),
        example="path.write_text(payload)  # torn on crash",
        fix=(
            "Write to a tmp.<pid> sibling and os.replace it; run "
            "mutating SQL inside 'with conn:'; wrap lock fds in "
            "try/finally (--fix wraps simple locks)."
        ),
    ),
    "RL014": RuleDoc(
        rationale=(
            "A swallowed ContractViolation hides corruption; a "
            "SweepCancelled converted into a FailedSolve/NaN point turns "
            "deliberate cancellation into fake solver failure."
        ),
        example="except ContractViolation: pass",
        fix=(
            "Re-raise, record with details, or quarantine; cancellation "
            "must propagate as cancellation."
        ),
    ),
    "RL015": RuleDoc(
        rationale=(
            "REPRO_* environment reads live in repro._env and friends so "
            "configuration has one audited surface; scattered literal "
            "reads grow divergent backdoors in distributed workers."
        ),
        example="budget = os.environ.get('REPRO_SOLVER_BUDGET_MS')",
        fix=(
            "Use repro_env/repro_env_required (--fix rewrites simple "
            "reads)."
        ),
    ),
    "RL016": RuleDoc(
        rationale=(
            "QBD blocks follow the row convention (rows index the "
            "from-state) and must be square and mutually conformable; a "
            "transposed kron operand or a boundary block with a swapped "
            "row split assembles a structurally wrong chain that often "
            "still solves -- to the wrong answer."
        ),
        example="QBDProcess(b00=b00, b01=np.zeros((m, n_b)), ...)",
        fix=(
            "Match the declarations: b01 is (boundary, repeating), b10 "
            "the reverse, a0/a1/a2 square and same-shape; drop stray .T "
            "(the Newton vec-trick transpose is the documented waiver)."
        ),
    ),
    "RL017": RuleDoc(
        rationale=(
            "Generators (rows sum to 0), stochastic matrices (rows sum "
            "to 1), probability vectors and rates are different algebraic "
            "objects; D0 alone is a *sub*generator and a per-ms rate is "
            "not a probability.  Confusing them passes shape checks and "
            "fails silently."
        ),
        example="pi = stationary_distribution(d0)  # needs d0 + d1",
        fix=(
            "Assemble the full object first (d0 + d1 for the phase "
            "generator; normalize rates to ratios before probability "
            "slots)."
        ),
    ),
    "RL018": RuleDoc(
        rationale=(
            "The batched kernel stacks blocks on a leading N axis; numpy "
            "aligns shapes from the *right*, so a reduction without an "
            "axis aggregates across items and a per-item (N,) operand "
            "broadcasts onto a matrix axis.  Both are silent."
        ),
        example="residuals = np.abs(stack).max()  # one scalar for all items",
        fix=(
            "Reduce over trailing axes (axis=(1, 2)); give per-item "
            "operands explicit trailing axes ([:, None, None]); keep "
            "stacked-solve RHS 3-D ((N, m, 1))."
        ),
    ),
    "RL019": RuleDoc(
        rationale=(
            "bg_completion_rate is a deliberate NaN below "
            "NEAR_ZERO_BG_PROBABILITY (including exactly p = 0).  NaN "
            "comparisons are silently False and NaN poisons aggregates, "
            "so an unguarded consumer quietly drops or corrupts the "
            "near-zero-p regime."
        ),
        example="if s.bg_completion_rate >= floor: accept(s)",
        fix=(
            "Test math.isnan()/np.isfinite() first, or gate on "
            "bg_probability >= NEAR_ZERO_BG_PROBABILITY (test code is "
            "exempt: assertions pin exact scenarios)."
        ),
    ),
    "RL020": RuleDoc(
        rationale=(
            "Rates, probabilities and _ms durations are float64 "
            "repo-wide; a float32/half downcast loses ~9 significant "
            "digits inside the matrix-geometric iterations, np.float_ "
            "was removed in numpy 2.0, and floor division truncates "
            "continuous quantities."
        ),
        example="np.zeros((m, m), dtype=np.float32)",
        fix=(
            "Spell float64 (or plain float); use true division on "
            "rate/_ms values and round explicitly where an integer is "
            "really meant."
        ),
    ),
}


def explain(code: str) -> str | None:
    """The full console explanation for ``code`` (None if unknown)."""
    doc = RULE_DOCS.get(code)
    summary = RULE_SUMMARIES.get(code)
    if doc is None or summary is None:
        return None
    return (
        f"{code}: {summary}\n"
        f"\n"
        f"Why\n  {doc.rationale}\n"
        f"\n"
        f"Example\n  {doc.example}\n"
        f"\n"
        f"Fix\n  {doc.fix}"
    )


def help_text(code: str) -> str | None:
    """Single-paragraph help string for SARIF ``help.text``."""
    doc = RULE_DOCS.get(code)
    if doc is None:
        return None
    return f"{doc.rationale} Example: {doc.example} Fix: {doc.fix}"
