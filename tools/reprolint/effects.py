"""Per-function effect summaries and the interprocedural fixpoint.

The interprocedural layer works in two stages:

1. **Local extraction** (:func:`extract_defs`) runs per file, so its
   output is cacheable alongside the file's other summary data: every
   top-level function and every method gets a JSON record of its *local*
   effects -- which parameters it may mutate in place (augmented
   assignment, subscript/attribute stores, ``setflags(write=True)``,
   in-place ndarray methods, ``out=`` aliasing, including through
   ``np.asarray``-style aliases of a parameter), which parameters it
   provably freezes on every non-raising path, whether it writes files,
   acquires/releases ``O_EXCL`` locks, may raise, and whether it carries
   *strong* contract evidence (an ``@contracted`` decorator or a
   ``validate_*``/``check_*`` call) -- plus its outgoing call sites with
   argument name bindings.

2. **Propagation** (:func:`propagate`) runs in the always-recomputed
   project pass: a bottom-up walk over the SCCs of the call graph unions
   callee effects into callers, with a per-SCC fixpoint for recursion.
   ``solve()`` calling ``_step(x)`` that does ``x *= 2`` thereby reports
   ``solve`` as mutating its own argument.

May-facts (mutation, file writes, lock traffic, raising) only ever
*grow* during propagation, so the fixpoint terminates.  Must-facts (the
freeze set) are deliberately **not** propagated interprocedurally:
inside a cycle a freeze cannot be certified bottom-up, and cross-module
must-facts would make the per-file result cache unsound (a caller's
cached verdict would have to be invalidated by an edit to another
module).  The freeze oracle consumed by RL002/RL006
(:func:`freeze_oracle`) is therefore restricted to *directly called,
same-module, unconditionally freezing helpers* -- one level, no
transitivity -- which is also the contract CLAUDE.md documents.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from typing import Any

from tools.reprolint import dataflow
from tools.reprolint.callgraph import CallGraph, Node

__all__ = [
    "extract_defs",
    "freeze_oracle",
    "local_effects",
    "propagate",
    "walk_scope",
]

_NUMPY_MODULES = {"np", "numpy"}

#: numpy calls that may *alias* their first argument (no copy guarantee).
_ALIASING_FACTORIES = {"asarray", "ascontiguousarray", "asfortranarray", "atleast_1d", "atleast_2d"}

#: ndarray methods that mutate the receiver in place.
_INPLACE_METHODS = {"fill", "sort", "partition", "put", "itemset", "resize", "setfield", "byteswap"}

_VALIDATION_PREFIXES = ("check_", "validate_")
_VALIDATION_NAMES = {"contracts_enabled"}
_CONTRACT_DECORATOR = "contracted"

_WRITE_MODES = ("w", "a", "x")


def walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` restricted to one scope: nested defs are not entered."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if node is not root and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node is root:
                continue
            stack.append(child)


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[list[str], list[str], str | None]:
    args = func.args
    positional = [a.arg for a in (*args.posonlyargs, *args.args)]
    if positional and positional[0] in {"self", "cls"}:
        positional = positional[1:]
    kwonly = [a.arg for a in args.kwonlyargs]
    vararg = args.vararg.arg if args.vararg is not None else None
    return positional, kwonly, vararg


def _leaf_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_aliasing_factory(call: ast.Call) -> bool:
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr in _ALIASING_FACTORIES
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_MODULES
    )


def _alias_map(func: ast.FunctionDef | ast.AsyncFunctionDef, params: set[str]) -> dict[str, str]:
    """Local name -> the parameter it may alias (identity-preserving flows).

    Tracks ``x = p`` and ``x = np.asarray(p, ...)`` (the asarray family
    returns its input unchanged when it is already a matching ndarray,
    so mutating the result mutates the caller's array).  Conservative:
    reassignments never *remove* an alias.
    """
    aliases: dict[str, str] = {p: p for p in params}
    # Two passes reach x = p; y = x chains regardless of walk order.
    for _ in range(2):
        for node in walk_scope(func):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            source: str | None = None
            if isinstance(value, ast.Name):
                source = value.id
            elif (
                isinstance(value, ast.Call)
                and _is_aliasing_factory(value)
                and value.args
                and isinstance(value.args[0], ast.Name)
            ):
                source = value.args[0].id
            if source is None or source not in aliases:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.setdefault(target.id, aliases[source])
    return aliases


def _mutation_events(
    func: ast.FunctionDef | ast.AsyncFunctionDef, aliases: dict[str, str]
) -> dict[str, str]:
    """Parameter name -> human-readable reason it may be mutated in place."""

    def root_of(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Name):
            return aliases.get(expr.id)
        if isinstance(expr, ast.Subscript):
            return root_of(expr.value)
        return None

    mutated: dict[str, str] = {}

    def record(param: str | None, what: str, line: int) -> None:
        if param is not None and param not in mutated:
            mutated[param] = f"{what} in {func.name}() at line {line}"

    for node in walk_scope(func):
        if isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name):
                record(aliases.get(target.id), "augmented assignment", node.lineno)
            elif isinstance(target, ast.Subscript):
                record(root_of(target.value), "augmented subscript store", node.lineno)
            elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
                record(aliases.get(target.value.id), "augmented attribute store", node.lineno)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    record(root_of(target.value), "subscript store", node.lineno)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.attr != "writeable"  # x.flags.writeable=False is a freeze
                ):
                    record(aliases.get(target.value.id), "attribute store", node.lineno)
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
                receiver = aliases.get(fn.value.id)
                if fn.attr == "setflags" and any(
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                ):
                    record(receiver, "setflags(write=True)", node.lineno)
                elif fn.attr in _INPLACE_METHODS:
                    record(receiver, f"in-place .{fn.attr}()", node.lineno)
            for kw in node.keywords:
                if kw.arg == "out" and isinstance(kw.value, ast.Name):
                    record(aliases.get(kw.value.id), "out= target", node.lineno)
    return mutated


def _freezes(func: ast.FunctionDef | ast.AsyncFunctionDef, params: list[str]) -> list[str]:
    """Parameters provably read-only at every non-raising exit."""
    analysis = dataflow.analyze_function(func)
    return [
        p
        for p in params
        if dataflow.READONLY in analysis.exit_state.get(p, frozenset())
    ]


def _freezes_all_varargs(
    func: ast.FunctionDef | ast.AsyncFunctionDef, vararg: str | None
) -> bool:
    """``for a in <vararg>: a.setflags(write=False)`` as a top-level stmt.

    Vacuously sound: every member of the vararg tuple goes through the
    loop body, so each positional argument at a call site ends frozen.
    """
    if vararg is None:
        return False
    for stmt in func.body:
        if not isinstance(stmt, ast.For):
            continue
        if not (isinstance(stmt.iter, ast.Name) and stmt.iter.id == vararg):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        item = stmt.target.id
        for inner in stmt.body:
            if not isinstance(inner, ast.Expr) or not isinstance(inner.value, ast.Call):
                continue
            call = inner.value
            fn = call.func
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "setflags"
                and isinstance(fn.value, ast.Name)
                and fn.value.id == item
                and any(
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in call.keywords
                )
            ):
                return True
    return False


def _open_mode_writes(call: ast.Call) -> bool:
    mode: ast.expr | None = None
    if len(call.args) > 1:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and any(flag in mode.value for flag in _WRITE_MODES)
    )


def _booleans(func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, bool]:
    writes_file = acquires_lock = releases_lock = may_raise = strong = False
    for decorator in func.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _leaf_name(target) == _CONTRACT_DECORATOR:
            strong = True
    for node in walk_scope(func):
        if isinstance(node, (ast.Raise, ast.Assert)):
            may_raise = True
        elif isinstance(node, ast.Call):
            fn = node.func
            leaf = _leaf_name(fn)
            if leaf is None:
                continue
            if leaf in _VALIDATION_NAMES or leaf.startswith(_VALIDATION_PREFIXES):
                strong = True
            if isinstance(fn, ast.Name):
                if leaf == "open" and _open_mode_writes(node):
                    writes_file = True
            elif isinstance(fn, ast.Attribute):
                base = fn.value
                base_name = base.id if isinstance(base, ast.Name) else None
                if leaf in {"write_text", "write_bytes"}:
                    writes_file = True
                elif leaf == "open" and _open_mode_writes(node):
                    writes_file = True
                elif leaf == "dump" and base_name in {"json", "pickle", "marshal"}:
                    writes_file = True
                elif base_name == "os" and leaf == "open" and _mentions_o_excl(node):
                    acquires_lock = True
                elif base_name == "os" and leaf == "close":
                    releases_lock = True
                elif leaf == "acquire":
                    acquires_lock = True
                elif leaf == "release":
                    releases_lock = True
    return {
        "writes_file": writes_file,
        "acquires_lock": acquires_lock,
        "releases_lock": releases_lock,
        "may_raise": may_raise,
        "strong_evidence": strong,
    }


def _mentions_o_excl(call: ast.Call) -> bool:
    for node in ast.walk(call):
        if isinstance(node, ast.Attribute) and node.attr == "O_EXCL":
            return True
        if isinstance(node, ast.Name) and node.id == "O_EXCL":
            return True
    return False


def _call_records(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[dict[str, Any]]:
    records: list[dict[str, Any]] = []
    for node in walk_scope(func):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        if isinstance(fn, ast.Name):
            target: list[str] = ["name", fn.id]
        elif isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
            if fn.value.id == "self":
                target = ["self", fn.attr]
            else:
                target = ["attr", fn.value.id, fn.attr]
        else:
            continue
        pos_names = [
            arg.id if isinstance(arg, ast.Name) else None
            for arg in node.args
            if not isinstance(arg, ast.Starred)
        ]
        kw_names = {
            kw.arg: (kw.value.id if isinstance(kw.value, ast.Name) else None)
            for kw in node.keywords
            if kw.arg is not None
        }
        records.append(
            {
                "line": node.lineno,
                "col": node.col_offset,
                "target": target,
                "pos_names": pos_names,
                "kw_names": kw_names,
            }
        )
    return records


def local_effects(func: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, Any]:
    """The JSON-able local effect record of one function body."""
    positional, kwonly, vararg = _param_names(func)
    params = set(positional) | set(kwonly)
    aliases = _alias_map(func, params)
    effects = {
        "mutates": _mutation_events(func, aliases),
        "freezes": _freezes(func, [*positional, *kwonly]),
        "freezes_all_args": _freezes_all_varargs(func, vararg),
        **_booleans(func),
    }
    return effects


def extract_defs(tree: ast.Module) -> dict[str, dict[str, Any]]:
    """Qualname -> definition record for every function/method in a module.

    Qualnames are top-level function names and ``Class.method``; nested
    functions and deeper class nesting are out of scope (the effect
    analysis treats them as part of their enclosing definition's body
    only insofar as their *calls* are not attributed -- conservative for
    must-facts, and may-facts of nested defs rarely matter in this
    codebase's idiom).
    """
    defs: dict[str, dict[str, Any]] = {}

    def record(func: ast.FunctionDef | ast.AsyncFunctionDef, qualname: str) -> None:
        positional, kwonly, vararg = _param_names(func)
        defs[qualname] = {
            "line": func.lineno,
            "col": func.col_offset,
            "params": positional,
            "kwonly": kwonly,
            "vararg": vararg is not None,
            "effects": local_effects(func),
            "calls": _call_records(func),
        }

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            record(stmt, stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    record(item, f"{stmt.name}.{item.name}")
    return defs


def freeze_oracle(tree: ast.Module) -> dict[str, dict[str, Any]]:
    """Same-module helper functions that *unconditionally* freeze arguments.

    Returns ``{helper_name: {"params": [...], "freezes": [...],
    "all_args": bool}}`` for every top-level function that provably
    freezes at least one of its parameters on all non-raising paths, or
    freezes its whole vararg tuple via the
    ``for a in arrays: a.setflags(write=False)`` idiom.  This is the
    one-level helper contract RL002/RL006 honour: the oracle is built
    from the helper's *own* body only (no transitivity), so a freeze
    hidden two helpers deep -- or behind a condition -- stays invisible
    and the certificate is still flagged.
    """
    oracle: dict[str, dict[str, Any]] = {}
    for stmt in tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        positional, kwonly, vararg = _param_names(stmt)
        frozen = _freezes(stmt, [*positional, *kwonly])
        all_args = _freezes_all_varargs(stmt, vararg)
        if frozen or all_args:
            oracle[stmt.name] = {
                "params": positional,
                "freezes": frozen,
                "all_args": all_args,
            }
    return oracle


# ---------------------------------------------------------------------------
# Interprocedural propagation
# ---------------------------------------------------------------------------


def _bindings(
    call: dict[str, Any], callee: dict[str, Any]
) -> Iterator[tuple[str, str]]:
    """``(caller_arg_name, callee_param_name)`` pairs of one call site."""
    params = callee["params"]
    for index, name in enumerate(call["pos_names"]):
        if name is None:
            continue
        if index < len(params):
            yield name, params[index]
    for kw, name in call["kw_names"].items():
        if name is None:
            continue
        if kw in params or kw in callee["kwonly"]:
            yield name, kw


_BOOL_EFFECTS = ("writes_file", "acquires_lock", "releases_lock", "may_raise")


def propagate(
    defs: dict[Node, dict[str, Any]],
    resolve: Callable[[str, str, dict[str, Any]], Node | None],
    *,
    graph: CallGraph | None = None,
) -> dict[Node, dict[str, Any]]:
    """Transitive effect summaries, bottom-up over call-graph SCCs.

    ``defs`` maps ``(module, qualname)`` to the records of
    :func:`extract_defs`; ``resolve`` maps a call record to its callee
    node (or ``None`` for external/dynamic targets).  Returns a summary
    per node: the local effects plus everything reachable through
    resolved calls.  Within an SCC the union iterates to a fixpoint;
    effects only grow, so termination is bounded by the SCC's total
    effect count.
    """
    if graph is None:
        from tools.reprolint.callgraph import build_call_graph

        graph = build_call_graph(defs, resolve)
    summaries: dict[Node, dict[str, Any]] = {}
    for component in graph.sccs():
        members = [node for node in component if node in defs]
        for node in members:
            local = defs[node]["effects"]
            summaries[node] = {
                "mutates": dict(local["mutates"]),
                **{flag: bool(local[flag]) for flag in _BOOL_EFFECTS},
                "strong_evidence": bool(local["strong_evidence"]),
            }
        changed = True
        while changed:
            changed = False
            for node in members:
                mine = summaries[node]
                record = defs[node]
                own_params = set(record["params"]) | set(record["kwonly"])
                for callee, call in graph.callees(node):
                    theirs = summaries.get(callee)
                    if theirs is None:
                        continue  # callee outside defs (should not happen)
                    for flag in _BOOL_EFFECTS:
                        if theirs[flag] and not mine[flag]:
                            mine[flag] = True
                            changed = True
                    if not theirs["mutates"]:
                        continue
                    for arg_name, param in _bindings(call, defs[callee]):
                        if (
                            param in theirs["mutates"]
                            and arg_name in own_params
                            and arg_name not in mine["mutates"]
                        ):
                            mine["mutates"][arg_name] = (
                                f"via call to {callee[1]}() at line {call['line']} "
                                f"({theirs['mutates'][param]})"
                            )
                            changed = True
    return summaries
