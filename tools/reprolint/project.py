"""Project-level analysis: one parse of every file, cross-file rules.

:class:`Project` turns a set of paths into

* per-file results -- the single-file rule violations plus a
  JSON-serializable *module summary* (definitions, imports, ``__all__``,
  call sites with dataflow-derived unit evidence, noqa comments);
* a cross-file **symbol table** mapping dotted module names to their
  summaries, through which exported names and call targets resolve
  (following re-export chains such as ``repro.qbd.__init__``);
* the project rules that need that context:

  RL007
      Public entry points of the contract packages (``repro.qbd``,
      ``repro.core``, ``repro.engine``, ``repro.processes``) must show
      contract coverage -- ``@contracted``, validation calls or raising
      guards in the body / ``__init__`` / ``__post_init__`` (inherited
      coverage counts) -- or carry a ``# noqa: RL007 -- reason`` waiver
      on the ``def``/``class`` line.
  RL008
      Unit flow across call sites: a milliseconds-valued argument
      (``*_ms`` name, or proven milliseconds by the dataflow pass)
      passed to a parameter whose name claims another unit (``*_sec``,
      bare ``timeout``/``delay``/...), and vice versa.
  RL009
      Noqa audit: a reprolint suppression whose rule does not actually
      fire on that line (stale), or one without the mandated
      ``-- reason`` trailer.
  RL011
      Solver purity: a public entry point of the solver packages
      (``repro.core``, ``repro.processes``, ``repro.qbd``) whose
      interprocedural effect summary says a parameter array may be
      mutated in place -- directly or through any chain of callees.

The interprocedural layer lives on top of the same summaries: each
file's cached entry carries per-function *definition records* (params,
local effects, outgoing calls); the project pass wires them into a call
graph (:mod:`tools.reprolint.callgraph`) and runs the bottom-up effect
fixpoint (:mod:`tools.reprolint.effects`).  RL007's evidence search
reuses the graph (a one-hop call into a strongly-evidenced callee --
``@contracted`` or a validation call -- counts as coverage).

Results are cached per file keyed by content hash (with an
``mtime_ns``/size fast path that avoids re-reading unchanged files), so
warm re-runs skip parsing and the dataflow pass entirely; the cheap
cross-file passes always run from the summaries.  Parsing/analysis of
cold files fans out over a process pool when ``jobs > 1``.
"""

from __future__ import annotations

import ast
import concurrent.futures
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from tools.reprolint import dataflow, effects
from tools.reprolint.callgraph import CallGraph, Node, build_call_graph
from tools.reprolint.core import (
    NoqaComment,
    Violation,
    iter_python_files,
    noqa_map,
    raw_lint_source,
    suppressed,
)
from tools.reprolint.shapes import (
    GENERATOR,
    ORIENTED_KINDS,
    PROB_VECTOR,
    RATE_BLOCK,
    SINK_NAMES,
    STOCHASTIC,
    SUBGENERATOR,
    ArrayFact,
    extract_shape_summary,
)

__all__ = [
    "FileAnalysis",
    "Project",
    "DEFAULT_CONTRACT_PACKAGES",
    "DEFAULT_PURITY_PACKAGES",
]

#: Bump to invalidate every cache entry (rule or summary format changes).
ENGINE_VERSION = "reprolint-4.0"

#: Packages whose exports RL007 holds to contract coverage.
DEFAULT_CONTRACT_PACKAGES = (
    "repro.core",
    "repro.engine",
    "repro.processes",
    "repro.qbd",
)

#: Packages whose exports RL011 holds to solver purity (solvers never
#: mutate inputs; repro.engine is excluded -- its objects own mutable
#: run state by design).
DEFAULT_PURITY_PACKAGES = (
    "repro.core",
    "repro.processes",
    "repro.qbd",
)

_VALIDATION_PREFIXES = ("check_", "validate_")
_VALIDATION_NAMES = {"contracts_enabled"}
_CONTRACT_DECORATOR = "contracted"

Summary = dict[str, Any]


@dataclass
class FileAnalysis:
    """Everything the project pass knows about one file."""

    path: str
    module: str
    #: Single-file rule violations, *before* noqa suppression.
    raw: list[Violation]
    summary: Summary
    noqa: dict[int, NoqaComment]


# ---------------------------------------------------------------------------
# Per-file summarization (runs in worker processes; JSON-only output)
# ---------------------------------------------------------------------------


def _dotted(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = _dotted(expr.value)
        return f"{base}.{expr.attr}" if base else None
    return None


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef) -> list[str]:
    names = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _dotted(target)
        if name:
            names.append(name.rsplit(".", maxsplit=1)[-1])
    return names


def _body_has_validation_evidence(node: ast.AST) -> bool:
    """Raising guards or validation calls anywhere in a body."""
    for child in ast.walk(node):
        if isinstance(child, ast.Raise) and child.exc is not None:
            return True
        if isinstance(child, ast.Call):
            name = _dotted(child.func)
            if name is None:
                continue
            leaf = name.rsplit(".", maxsplit=1)[-1]
            if leaf in _VALIDATION_NAMES or leaf.startswith(_VALIDATION_PREFIXES):
                return True
    return False


def _function_evidence(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    if _CONTRACT_DECORATOR in _decorator_names(node):
        return True
    return _body_has_validation_evidence(node)


def _param_lists(
    args: ast.arguments,
) -> tuple[list[str], list[str], bool, bool]:
    positional = [a.arg for a in (*args.posonlyargs, *args.args)]
    if positional and positional[0] in {"self", "cls"}:
        positional = positional[1:]
    kwonly = [a.arg for a in args.kwonlyargs]
    return positional, kwonly, args.vararg is not None, args.kwarg is not None


def _call_record(event: dataflow.CallEvent, in_function: str | None) -> Summary | None:
    func = event.node.func
    if isinstance(func, ast.Name):
        target: list[str] = ["name", func.id]
    elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        target = ["attr", func.value.id, func.attr]
    else:
        return None
    return {
        "line": event.node.lineno,
        "col": event.node.col_offset,
        "target": target,
        "pos": [sorted(f) if f else None for f in event.pos_facts],
        "pos_names": event.pos_names,
        "kw": {k: (sorted(f) if f else None) for k, f in event.kw_facts.items()},
        "kw_names": event.kw_names,
        "in_function": in_function,
    }


def _extract_all(tree: ast.Module) -> list[str] | None:
    for stmt in tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            names = [
                e.value
                for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            return names
    return None


def summarize_module(
    tree: ast.Module, module: str, *, is_package: bool = False
) -> Summary:
    """The cross-file-relevant facts of one parsed module."""
    imports: dict[str, str] = {}
    functions: dict[str, Summary] = {}
    classes: dict[str, Summary] = {}
    calls: list[Summary] = []

    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", maxsplit=1)[0]
                    imports[top] = top
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                # Relative import: resolve against this module's package.
                package_parts = module.split(".")
                # level 1 = the containing package; __init__ module names
                # are already the package, plain modules drop their leaf.
                cut = len(package_parts) - (stmt.level - 1)
                if not is_package:
                    cut -= 1
                base = ".".join(package_parts[: max(cut, 0)])
                if stmt.module:
                    prefix = f"{base}.{stmt.module}" if base else stmt.module
                else:
                    prefix = base
            elif stmt.module is not None:
                prefix = stmt.module
            else:
                continue
            if not prefix:
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = f"{prefix}.{alias.name}"
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            positional, kwonly, has_vararg, has_kwarg = _param_lists(stmt.args)
            functions[stmt.name] = {
                "line": stmt.lineno,
                "col": stmt.col_offset,
                "params": positional,
                "kwonly": kwonly,
                "has_vararg": has_vararg,
                "has_kwarg": has_kwarg,
                "evidence": _function_evidence(stmt),
            }
        elif isinstance(stmt, ast.ClassDef):
            init_params: list[str] | None = None
            init_kwonly: list[str] = []
            has_vararg = has_kwarg = False
            evidence = False
            is_dataclass = "dataclass" in _decorator_names(stmt)
            for item in stmt.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name == "__init__":
                    init_params, init_kwonly, has_vararg, has_kwarg = _param_lists(
                        item.args
                    )
                if item.name in {"__init__", "__post_init__"}:
                    evidence = evidence or _body_has_validation_evidence(item)
            if is_dataclass and init_params is None:
                # Synthesized __init__: field order is the param order.
                init_params = [
                    t.target.id
                    for t in stmt.body
                    if isinstance(t, ast.AnnAssign) and isinstance(t.target, ast.Name)
                ]
            classes[stmt.name] = {
                "line": stmt.lineno,
                "col": stmt.col_offset,
                "bases": [b for b in map(_dotted, stmt.bases) if b],
                "init_params": init_params,
                "init_kwonly": init_kwonly,
                "has_vararg": has_vararg,
                "has_kwarg": has_kwarg,
                "evidence": evidence,
            }

    # Call sites with dataflow facts: module level plus every function
    # and method body.
    module_analysis = dataflow.analyze_module_level(tree)
    for event in module_analysis.calls:
        record = _call_record(event, None)
        if record:
            calls.append(record)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analysis = dataflow.analyze_function(node)
            for event in analysis.calls:
                record = _call_record(event, node.name)
                if record:
                    calls.append(record)

    return {
        "module": module,
        "all": _extract_all(tree),
        "imports": imports,
        "functions": functions,
        "classes": classes,
        "calls": calls,
        # Definition records for the interprocedural layer: per-function
        # params, local effects and outgoing call sites (JSON-only, so
        # they cache with the file like everything else).
        "defs": effects.extract_defs(tree),
    }


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the project root."""
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        relative = Path(path.name)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else path.stem


def _violation_to_json(v: Violation) -> Summary:
    return {
        "path": v.path,
        "line": v.line,
        "col": v.col,
        "code": v.code,
        "message": v.message,
        "extra": list(v.extra_noqa_lines),
    }


def _violation_from_json(data: Summary) -> Violation:
    return Violation(
        path=data["path"],
        line=data["line"],
        col=data["col"],
        code=data["code"],
        message=data["message"],
        extra_noqa_lines=tuple(data.get("extra", ())),
    )


def _noqa_to_json(comments: dict[int, NoqaComment]) -> list[Summary]:
    return [
        {
            "line": c.line,
            "col": c.col,
            "end_col": c.end_col,
            "codes": list(c.codes) if c.codes is not None else None,
            "has_reason": c.has_reason,
        }
        for c in comments.values()
    ]


def _noqa_from_json(data: list[Summary]) -> dict[int, NoqaComment]:
    return {
        entry["line"]: NoqaComment(
            line=entry["line"],
            col=entry["col"],
            end_col=entry["end_col"],
            codes=tuple(entry["codes"]) if entry["codes"] is not None else None,
            has_reason=entry["has_reason"],
        )
        for entry in data
    }


def analyze_source(source: str, path: str, module: str) -> Summary:
    """Parse + lint + summarize one source string (JSON-only result)."""
    raw = raw_lint_source(source, path)
    is_package = Path(path).name == "__init__.py"
    try:
        tree = ast.parse(source, filename=path)
        summary = summarize_module(tree, module, is_package=is_package)
        # Shape/kind facts for the cross-file RL016/RL017 pass; JSON-only
        # so they ride the result cache with everything else.
        summary["shapes"] = extract_shape_summary(tree, path)
    except SyntaxError:
        summary = {
            "module": module,
            "all": None,
            "imports": {},
            "functions": {},
            "classes": {},
            "calls": [],
            "defs": {},
            "shapes": {"functions": {}, "calls": []},
        }
    return {
        "raw": [_violation_to_json(v) for v in raw],
        "summary": summary,
        "noqa": _noqa_to_json(noqa_map(source)),
    }


def _analyze_path_worker(args: tuple[str, str]) -> tuple[str, str, Summary]:
    path, module = args
    source = Path(path).read_text(encoding="utf-8")
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return path, digest, analyze_source(source, path, module)


# ---------------------------------------------------------------------------
# The project
# ---------------------------------------------------------------------------


class Project:
    """Cross-file analyzer over a set of files/directories."""

    def __init__(
        self,
        paths: list[Path],
        *,
        root: Path | None = None,
        cache_path: Path | None = None,
        jobs: int = 1,
        contract_packages: tuple[str, ...] = DEFAULT_CONTRACT_PACKAGES,
        purity_packages: tuple[str, ...] = DEFAULT_PURITY_PACKAGES,
    ) -> None:
        self.paths = [Path(p) for p in paths]
        self.root = Path(root) if root is not None else Path.cwd()
        self.cache_path = Path(cache_path) if cache_path is not None else None
        self.jobs = max(jobs, 1)
        self.contract_packages = contract_packages
        self.purity_packages = purity_packages
        self.files: dict[str, FileAnalysis] = {}
        #: Cold/warm accounting for the cache (exposed for tests/CLI -q).
        self.stats = {"analyzed": 0, "cache_hits": 0}
        self._graph: CallGraph | None = None
        self._summaries: dict[Node, Summary] | None = None

    # -- cache ----------------------------------------------------------
    def _load_cache(self) -> Summary:
        if self.cache_path is None or not self.cache_path.exists():
            return {}
        try:
            data = json.loads(self.cache_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return {}
        if data.get("version") != ENGINE_VERSION:
            return {}
        files = data.get("files")
        return files if isinstance(files, dict) else {}

    def _save_cache(self, entries: Summary) -> None:
        if self.cache_path is None:
            return
        payload = {"version": ENGINE_VERSION, "files": entries}
        try:
            self.cache_path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.cache_path.with_name(
                f"{self.cache_path.name}.tmp.{os.getpid()}"
            )
            tmp.write_text(
                json.dumps(payload, separators=(",", ":")), encoding="utf-8"
            )
            os.replace(tmp, self.cache_path)
        except OSError:
            pass  # a read-only checkout must not break linting

    # -- analysis -------------------------------------------------------
    def analyze(self) -> dict[str, FileAnalysis]:
        """Populate :attr:`files` (cached, parallel where requested)."""
        discovered = list(dict.fromkeys(iter_python_files(self.paths)))
        cache = self._load_cache()
        next_cache: Summary = {}
        pending: list[tuple[str, str]] = []
        self.files = {}
        self.stats = {"analyzed": 0, "cache_hits": 0}
        self._graph = None
        self._summaries = None

        for file_path in discovered:
            key = str(file_path)
            module = module_name_for(file_path, self.root)
            entry = cache.get(key)
            if entry is not None and entry.get("module") == module:
                try:
                    stat = file_path.stat()
                except OSError:
                    continue
                if (
                    entry.get("mtime_ns") == stat.st_mtime_ns
                    and entry.get("size") == stat.st_size
                ):
                    self._accept(key, module, entry["result"])
                    next_cache[key] = entry
                    self.stats["cache_hits"] += 1
                    continue
                source = file_path.read_text(encoding="utf-8")
                digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
                if entry.get("sha256") == digest:
                    refreshed = dict(entry)
                    refreshed["mtime_ns"] = stat.st_mtime_ns
                    refreshed["size"] = stat.st_size
                    self._accept(key, module, entry["result"])
                    next_cache[key] = refreshed
                    self.stats["cache_hits"] += 1
                    continue
            pending.append((key, module))

        for key, digest, result in self._run_pending(pending):
            module = result["summary"]["module"]
            self._accept(key, module, result)
            stat = Path(key).stat()
            next_cache[key] = {
                "module": module,
                "mtime_ns": stat.st_mtime_ns,
                "size": stat.st_size,
                "sha256": digest,
                "result": result,
            }
            self.stats["analyzed"] += 1

        self._save_cache(next_cache)
        return self.files

    def _run_pending(
        self, pending: list[tuple[str, str]]
    ) -> list[tuple[str, str, Summary]]:
        if not pending:
            return []
        if self.jobs == 1 or len(pending) < 4:
            return [_analyze_path_worker(item) for item in pending]
        workers = min(self.jobs, len(pending), os.cpu_count() or 1)
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_analyze_path_worker, pending, chunksize=8))

    def _accept(self, path: str, module: str, result: Summary) -> None:
        self.files[path] = FileAnalysis(
            path=path,
            module=module,
            raw=[_violation_from_json(v) for v in result["raw"]],
            summary=result["summary"],
            noqa=_noqa_from_json(result["noqa"]),
        )

    # -- symbol table ----------------------------------------------------
    def _modules(self) -> dict[str, FileAnalysis]:
        return {analysis.module: analysis for analysis in self.files.values()}

    def resolve(
        self,
        module: str,
        name: str,
        modules: dict[str, FileAnalysis],
        depth: int = 8,
    ) -> tuple[str, str, str] | None:
        """Resolve ``name`` in ``module`` to ``(kind, module, name)``.

        Follows import/re-export chains (``repro.qbd`` ->
        ``repro.qbd.rmatrix``); kind is ``"function"`` or ``"class"``.
        Returns None for unresolvable names (external modules,
        constants, dynamic exports).
        """
        if depth <= 0:
            return None
        analysis = modules.get(module)
        if analysis is None:
            return None
        summary = analysis.summary
        if name in summary["functions"]:
            return "function", module, name
        if name in summary["classes"]:
            return "class", module, name
        target = summary["imports"].get(name)
        if target is None or "." not in target:
            return None
        parent, leaf = target.rsplit(".", maxsplit=1)
        return self.resolve(parent, leaf, modules, depth - 1)

    # -- interprocedural layer --------------------------------------------
    def _defs_table(self) -> dict[Node, Summary]:
        """``(module, qualname) -> definition record`` over every file."""
        defs: dict[Node, Summary] = {}
        for analysis in self.files.values():
            for qualname, record in analysis.summary.get("defs", {}).items():
                defs[(analysis.module, qualname)] = record
        return defs

    def _resolve_def(
        self,
        module: str,
        name: str,
        modules: dict[str, FileAnalysis],
        defs: dict[Node, Summary],
    ) -> Node | None:
        """A name in a module -> the definition node it calls into.

        Functions map to themselves; classes map to their ``__init__``
        (the body a constructor call actually runs).
        """
        resolved = self.resolve(module, name, modules)
        if resolved is None:
            return None
        kind, target_module, target_name = resolved
        if kind == "function":
            node = (target_module, target_name)
            return node if node in defs else None
        node = (target_module, f"{target_name}.__init__")
        return node if node in defs else None

    def _resolve_call(
        self,
        module: str,
        qualname: str,
        call: Summary,
        modules: dict[str, FileAnalysis],
        defs: dict[Node, Summary],
    ) -> Node | None:
        """One call record -> its callee node (None for external/dynamic)."""
        target = call["target"]
        if target[0] == "name":
            return self._resolve_def(module, target[1], modules, defs)
        if target[0] == "self":
            # Method call on the caller's own class.
            if "." not in qualname:
                return None
            cls = qualname.split(".", maxsplit=1)[0]
            node = (module, f"{cls}.{target[1]}")
            return node if node in defs else None
        # ["attr", base, attr]: resolvable when base is an imported module.
        base, attr = target[1], target[2]
        analysis = modules.get(module)
        if analysis is None:
            return None
        base_target = analysis.summary["imports"].get(base)
        if base_target is None:
            return None
        return self._resolve_def(base_target, attr, modules, defs)

    def call_graph(self) -> CallGraph:
        """The project-wide call graph (built lazily, after analyze)."""
        if self._graph is None:
            if not self.files:
                self.analyze()
            modules = self._modules()
            defs = self._defs_table()
            self._graph = build_call_graph(
                defs,
                lambda m, q, call: self._resolve_call(m, q, call, modules, defs),
            )
        return self._graph

    def effect_summaries(self) -> dict[Node, Summary]:
        """Transitive per-definition effect summaries (lazy, memoized)."""
        if self._summaries is None:
            if not self.files:
                self.analyze()
            modules = self._modules()
            defs = self._defs_table()
            self._summaries = effects.propagate(
                defs,
                lambda m, q, call: self._resolve_call(m, q, call, modules, defs),
                graph=self.call_graph(),
            )
        return self._summaries

    # -- project rules ----------------------------------------------------
    def _rl011_solver_purity(
        self,
        modules: dict[str, FileAnalysis],
        defs: dict[Node, Summary],
        summaries: dict[Node, Summary],
    ) -> list[Violation]:
        violations: list[Violation] = []
        seen: set[Node] = set()
        for package in self.purity_packages:
            package_analysis = modules.get(package)
            if package_analysis is None:
                continue
            for export in package_analysis.summary["all"] or []:
                resolved = self.resolve(package, export, modules)
                if resolved is None:
                    continue
                kind, module, name = resolved
                if kind == "function":
                    quals = [name]
                else:
                    quals = [f"{name}.__init__", f"{name}.__post_init__"]
                for qualname in quals:
                    node = (module, qualname)
                    record = defs.get(node)
                    summary = summaries.get(node)
                    if record is None or summary is None or node in seen:
                        continue
                    seen.add(node)
                    params = set(record["params"]) | set(record["kwonly"])
                    mutated = {
                        param: reason
                        for param, reason in summary["mutates"].items()
                        if param in params
                    }
                    for param, reason in sorted(mutated.items()):
                        violations.append(
                            Violation(
                                modules[module].path,
                                record["line"],
                                record["col"],
                                "RL011",
                                f"public entry point {package}.{export} may "
                                f"mutate its parameter {param!r} ({reason}); "
                                "solvers never mutate inputs -- copy before "
                                "writing, or freeze and fix the callee",
                            )
                        )
        return violations

    def _rl007_contract_coverage(
        self,
        modules: dict[str, FileAnalysis],
        defs: dict[Node, Summary] | None = None,
    ) -> list[Violation]:
        violations: list[Violation] = []
        seen: set[tuple[str, str]] = set()
        for package in self.contract_packages:
            package_analysis = modules.get(package)
            if package_analysis is None:
                continue
            exports = package_analysis.summary["all"] or []
            for export in exports:
                resolved = self.resolve(package, export, modules)
                if resolved is None:
                    continue  # constants / external names are not entry points
                kind, module, name = resolved
                if (module, name) in seen:
                    continue
                seen.add((module, name))
                definition = modules[module]
                table = definition.summary[
                    "functions" if kind == "function" else "classes"
                ]
                info = table[name]
                if self._has_contract_evidence(kind, module, name, modules):
                    continue
                if defs is not None and self._one_hop_strong_evidence(
                    kind, module, name, modules, defs
                ):
                    continue
                violations.append(
                    Violation(
                        definition.path,
                        info["line"],
                        info["col"],
                        "RL007",
                        f"public entry point {package}.{export} "
                        f"({kind} {module}.{name}) has no contract coverage: "
                        "no @contracted decorator and no validation call or "
                        "raising guard in its body/__init__/__post_init__; "
                        "add checks or waive with '# noqa: RL007 -- reason'",
                    )
                )
        return violations

    def _has_contract_evidence(
        self,
        kind: str,
        module: str,
        name: str,
        modules: dict[str, FileAnalysis],
        depth: int = 5,
    ) -> bool:
        if depth <= 0:
            return False
        analysis = modules.get(module)
        if analysis is None:
            # Unresolvable base class: assume covered rather than guess.
            return True
        table = analysis.summary["functions" if kind == "function" else "classes"]
        info = table.get(name)
        if info is None:
            return False
        if info["evidence"]:
            return True
        if kind == "class":
            for base in info["bases"]:
                leaf = base.rsplit(".", maxsplit=1)[-1]
                resolved = self.resolve(module, leaf, modules)
                if resolved is None:
                    continue
                base_kind, base_module, base_name = resolved
                if base_kind == "class" and self._has_contract_evidence(
                    base_kind, base_module, base_name, modules, depth - 1
                ):
                    return True
        return False

    def _one_hop_strong_evidence(
        self,
        kind: str,
        module: str,
        name: str,
        modules: dict[str, FileAnalysis],
        defs: dict[Node, Summary],
    ) -> bool:
        """Coverage via the call graph: one direct call into a callee with
        *strong* evidence (``@contracted`` or a validation call -- mere
        raising in the callee does not count, so delegated coverage stays
        deliberate rather than accidental)."""
        if kind == "function":
            qualnames = [name]
        else:
            qualnames = [f"{name}.__init__", f"{name}.__post_init__"]
        for qualname in qualnames:
            record = defs.get((module, qualname))
            if record is None:
                continue
            for call in record["calls"]:
                callee = self._resolve_call(module, qualname, call, modules, defs)
                if callee is None:
                    continue
                if defs[callee]["effects"]["strong_evidence"]:
                    return True
        return False

    @staticmethod
    def _unit_of(facts: list[str] | None) -> str | None:
        if not facts:
            return None
        for unit in (dataflow.MS, dataflow.OTHERUNIT, dataflow.BARETIME):
            if unit in facts:
                return unit
        return None

    def _rl008_unit_flow(self, modules: dict[str, FileAnalysis]) -> list[Violation]:
        violations: list[Violation] = []
        for analysis in self.files.values():
            summary = analysis.summary
            for call in summary["calls"]:
                resolved = self._resolve_call_target(call, analysis, modules)
                if resolved is None:
                    continue
                params, kwonly, has_vararg, has_kwarg, callee_label = resolved
                checks: list[tuple[str, list[str] | None, str | None]] = []
                for index, facts in enumerate(call["pos"]):
                    if index >= len(params):
                        break  # *args or miscounted -- stay quiet
                    checks.append(
                        (params[index], facts, call["pos_names"][index])
                    )
                for kw, facts in call["kw"].items():
                    if kw in params or kw in kwonly:
                        checks.append((kw, facts, call["kw_names"].get(kw)))
                for param, facts, arg_name in checks:
                    message = self._unit_mismatch(
                        param, facts, arg_name, callee_label
                    )
                    if message is not None:
                        violations.append(
                            Violation(
                                analysis.path,
                                call["line"],
                                call["col"],
                                "RL008",
                                message,
                            )
                        )
        return violations

    def _resolve_call_target(
        self,
        call: Summary,
        analysis: FileAnalysis,
        modules: dict[str, FileAnalysis],
    ) -> tuple[list[str], list[str], bool, bool, str] | None:
        target = call["target"]
        if target[0] == "name":
            resolved = self.resolve(analysis.module, target[1], modules)
            label = target[1]
        else:
            base, attr = target[1], target[2]
            base_target = analysis.summary["imports"].get(base)
            if base_target is None:
                return None
            resolved = self.resolve(base_target, attr, modules)
            label = f"{base}.{attr}"
        if resolved is None:
            return None
        kind, module, name = resolved
        info = modules[module].summary[
            "functions" if kind == "function" else "classes"
        ]
        entry = info[name]
        if kind == "function":
            return (
                entry["params"],
                entry["kwonly"],
                entry["has_vararg"],
                entry["has_kwarg"],
                label,
            )
        if entry["init_params"] is None:
            return None
        return (
            entry["init_params"],
            entry.get("init_kwonly", []),
            entry["has_vararg"],
            entry["has_kwarg"],
            label,
        )

    def _unit_mismatch(
        self,
        param: str,
        facts: list[str] | None,
        arg_name: str | None,
        callee: str,
    ) -> str | None:
        arg_unit = self._unit_of(facts)
        param_unit = dataflow.unit_evidence_of_name(param)
        if arg_unit is None or param_unit is None:
            return None
        described = arg_name or "argument"
        if arg_unit == dataflow.MS and param_unit != dataflow.MS:
            return (
                f"milliseconds value {described!r} flows into parameter "
                f"{param!r} of {callee}(), which is not a '_ms' name; "
                "convert at the boundary or fix the parameter's unit"
            )
        if arg_unit != dataflow.MS and param_unit == dataflow.MS:
            return (
                f"non-milliseconds value {described!r} flows into "
                f"milliseconds parameter {param!r} of {callee}(); time is "
                "milliseconds repo-wide -- convert before the call"
            )
        return None

    def _rl009_noqa_audit(self, raw_by_file: dict[str, list[Violation]]) -> list[Violation]:
        violations: list[Violation] = []
        for analysis in self.files.values():
            anchored: dict[int, set[str]] = {}
            for violation in raw_by_file.get(analysis.path, ()):
                for line in (violation.line, *violation.extra_noqa_lines):
                    anchored.setdefault(line, set()).add(violation.code)
            for comment in analysis.noqa.values():
                rl_codes = comment.rl_codes
                if not rl_codes:
                    continue
                present = anchored.get(comment.line, set())
                stale = [c for c in rl_codes if c not in present]
                live = [c for c in rl_codes if c in present]
                for code in stale:
                    violations.append(
                        Violation(
                            analysis.path,
                            comment.line,
                            comment.col,
                            "RL009",
                            f"# noqa suppresses {code} but no {code} "
                            "violation fires on this line; remove the stale "
                            "suppression (--fix does this mechanically)",
                        )
                    )
                if live and not comment.has_reason:
                    violations.append(
                        Violation(
                            analysis.path,
                            comment.line,
                            comment.col,
                            "RL009",
                            "reprolint suppression without the mandated "
                            "'-- reason' trailer; write "
                            f"'# noqa: {', '.join(live)} -- <why>'",
                        )
                    )
        return violations

    # -- RL016/RL017 interprocedural: facts through project wrappers -------
    _SHAPE_KIND_CONFLICTS = {
        GENERATOR: frozenset({SUBGENERATOR, RATE_BLOCK, STOCHASTIC}),
        STOCHASTIC: frozenset({GENERATOR, SUBGENERATOR}),
        PROB_VECTOR: frozenset({GENERATOR, SUBGENERATOR}),
    }

    def _rl016_rl017_shape_flow(
        self, modules: dict[str, FileAnalysis]
    ) -> list[Violation]:
        """Shape/kind facts flowing into project wrappers.

        The per-file layer checks direct calls to the known sinks
        (``r_matrix``, ``stationary_distribution``, ...).  This pass
        follows one level further: a project function that *forwards* a
        parameter into such a sink inherits that slot's expectation, and
        every cross-file call site with a conflicting fact is flagged at
        the caller.
        """
        violations: list[Violation] = []
        for analysis in self.files.values():
            shapes = analysis.summary.get("shapes") or {}
            for call in shapes.get("calls", []):
                target = call["target"]
                if target[0] == "name":
                    name = target[1]
                    resolved = self.resolve(analysis.module, name, modules)
                elif target[0] == "attr":
                    name = target[2]
                    base_target = analysis.summary["imports"].get(target[1])
                    resolved = (
                        self.resolve(base_target, name, modules)
                        if base_target
                        else None
                    )
                else:
                    continue
                if name in SINK_NAMES:
                    continue  # already checked by the per-file layer
                if resolved is None or resolved[0] != "function":
                    continue
                _, callee_module, callee_name = resolved
                callee = modules.get(callee_module)
                if callee is None:
                    continue
                callee_shapes = callee.summary.get("shapes") or {}
                expect = (
                    callee_shapes.get("functions", {})
                    .get(callee_name, {})
                    .get("expect")
                )
                if not expect:
                    continue
                signature = callee.summary["functions"].get(callee_name, {})
                params = signature.get("params", [])
                bound: list[tuple[str, ArrayFact]] = []
                for index, fact_json in enumerate(call.get("pos", [])):
                    if fact_json is not None and index < len(params):
                        bound.append(
                            (params[index], ArrayFact.from_json(fact_json))
                        )
                for kw_name, fact_json in call.get("kw", {}).items():
                    if fact_json is not None:
                        bound.append((kw_name, ArrayFact.from_json(fact_json)))
                for param, fact in bound:
                    slot = expect.get(param)
                    if not slot:
                        continue
                    violations.extend(
                        self._shape_slot_conflicts(
                            analysis.path, call, callee_name, param, slot, fact
                        )
                    )
        return violations

    def _shape_slot_conflicts(
        self,
        path: str,
        call: Summary,
        callee_name: str,
        param: str,
        slot: Summary,
        fact: ArrayFact,
    ) -> list[Violation]:
        violations: list[Violation] = []
        expected_kind = slot.get("kind")
        if (
            expected_kind
            and fact.kind in self._SHAPE_KIND_CONFLICTS.get(expected_kind, ())
        ):
            violations.append(
                Violation(
                    path,
                    call["line"],
                    call["col"],
                    "RL017",
                    f"{callee_name}() forwards parameter {param!r} into a "
                    f"{expected_kind}-expecting sink, but this call passes "
                    f"a {fact.kind} value -- convert it (e.g. d0 + d1 for "
                    "the full phase generator) before the call",
                )
            )
        if slot.get("square"):
            if fact.transposed and fact.kind in ORIENTED_KINDS:
                violations.append(
                    Violation(
                        path,
                        call["line"],
                        call["col"],
                        "RL016",
                        f"{callee_name}() forwards parameter {param!r} "
                        "into a square-block sink, but this call passes a "
                        f"transposed {fact.kind}: QBD blocks follow the "
                        "row convention -- drop the .T",
                    )
                )
            elif (
                fact.shape is not None
                and len(fact.shape) == 2
                and all(d.isdigit() for d in fact.shape)
                and fact.shape[0] != fact.shape[1]
            ):
                violations.append(
                    Violation(
                        path,
                        call["line"],
                        call["col"],
                        "RL016",
                        f"{callee_name}() forwards parameter {param!r} "
                        "into a square-block sink, but this call passes "
                        f"shape ({fact.shape[0]}, {fact.shape[1]})",
                    )
                )
        return violations

    # -- entry points ------------------------------------------------------
    def raw_violations(self) -> dict[str, list[Violation]]:
        """All violations before noqa suppression, keyed by file path."""
        if not self.files:
            self.analyze()
        modules = self._modules()
        defs = self._defs_table()
        summaries = self.effect_summaries()
        by_file: dict[str, list[Violation]] = {
            path: list(analysis.raw) for path, analysis in self.files.items()
        }
        for violation in (
            *self._rl007_contract_coverage(modules, defs),
            *self._rl008_unit_flow(modules),
            *self._rl011_solver_purity(modules, defs, summaries),
            *self._rl016_rl017_shape_flow(modules),
        ):
            by_file.setdefault(violation.path, []).append(violation)
        for violation in self._rl009_noqa_audit(by_file):
            by_file.setdefault(violation.path, []).append(violation)
        return by_file

    def lint(self) -> list[Violation]:
        """The unsuppressed violations of the whole project, sorted."""
        by_file = self.raw_violations()
        result: list[Violation] = []
        for path, violations in by_file.items():
            analysis = self.files.get(path)
            comments = analysis.noqa if analysis is not None else {}
            result.extend(
                v for v in violations if not suppressed(v, comments)
            )
        return sorted(result, key=lambda v: (v.path, v.line, v.col, v.code))
