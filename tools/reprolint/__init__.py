"""reprolint -- repo-specific AST linter for the repro codebase.

Run as ``python -m tools.reprolint src tests``.  See
:mod:`tools.reprolint.rules` for the rule catalogue (RL001-RL005).
"""

from tools.reprolint.core import (
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    render,
)
from tools.reprolint.rules import ALL_RULES, RULE_SUMMARIES

__all__ = [
    "ALL_RULES",
    "RULE_SUMMARIES",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render",
]
