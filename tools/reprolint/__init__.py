"""reprolint -- repo-specific static analyzer for the repro codebase.

Run as ``python -m tools.reprolint src tests``.  See
:mod:`tools.reprolint.rules` for the rule catalogue (RL001-RL020):
per-file AST rules -- including the shape/stochastic-kind abstract
interpreter of :mod:`tools.reprolint.shapes` (RL016-RL020) -- plus
project-level analyses (certificate soundness, contract coverage, unit
flow, noqa audit, effect summaries, cross-file shape flow) driven by
:class:`tools.reprolint.project.Project`.  ``--explain RLxxx`` prints
one rule's rationale, example and fix.
"""

from tools.reprolint.baseline import (
    apply_baseline,
    load_baseline,
    update_baseline,
)
from tools.reprolint.core import (
    Violation,
    lint_file,
    lint_paths,
    lint_source,
    render,
)
from tools.reprolint.fix import fix_paths
from tools.reprolint.formats import render_github, render_report, render_sarif
from tools.reprolint.project import Project
from tools.reprolint.rules import ALL_RULES, FILE_RULES, RULE_SUMMARIES

__all__ = [
    "ALL_RULES",
    "FILE_RULES",
    "Project",
    "RULE_SUMMARIES",
    "Violation",
    "apply_baseline",
    "fix_paths",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "render",
    "render_github",
    "render_report",
    "render_sarif",
    "update_baseline",
]
