"""Command-line entry point: ``python -m tools.reprolint src tests``.

Exit status: 0 when clean, 1 when violations were found, 2 on usage
errors (e.g. a named path that does not exist).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.reprolint.core import lint_paths, render
from tools.reprolint.rules import RULE_SUMMARIES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Repo-specific linter for repro invariants (RL001-RL005).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress output when there are no violations",
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for code in sorted(RULE_SUMMARIES):
            print(f"{code}  {RULE_SUMMARIES[code]}")
        return 0

    paths = [Path(p) for p in options.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"reprolint: no such path: {p}", file=sys.stderr)
        return 2

    violations = lint_paths(paths)
    if violations or not options.quiet:
        print(render(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
