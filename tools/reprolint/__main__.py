"""Command-line entry point: ``python -m tools.reprolint src tests``.

Exit status: 0 when clean (modulo an applied baseline), 1 when
violations were found, 2 on usage errors (e.g. a named path that does
not exist).

Common invocations::

    python -m tools.reprolint src tests tools benchmarks examples
    python -m tools.reprolint --format sarif --output reprolint.sarif src
    python -m tools.reprolint --update-baseline src tests
    python -m tools.reprolint --fix tests
    python -m tools.reprolint --cache --jobs 4 src tests

A committed ``.reprolint-baseline.json`` in the working directory is
applied automatically; pass ``--no-baseline`` to see the full debt.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.reprolint.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    update_baseline,
)
from tools.reprolint.fix import fix_paths
from tools.reprolint.formats import FORMATS, render_report
from tools.reprolint.project import Project
from tools.reprolint.rules import RULE_SUMMARIES

DEFAULT_CACHE_NAME = ".reprolint-cache.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "Repo-specific linter for repro invariants (RL001-RL020): "
            "per-file AST rules (including the shape/stochastic-kind "
            "abstract interpreter) plus project-wide certificate-"
            "soundness, contract-coverage, unit-flow, noqa-audit and "
            "shape-flow analyses."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=sorted(FORMATS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            "baseline file of accepted violations "
            f"(default: {DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report the full debt",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept the current violations, then exit",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes (stale noqa removal, RL010 rewrite) first",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help=f"cache per-file results in {DEFAULT_CACHE_NAME} across runs",
    )
    parser.add_argument(
        "--cache-file",
        type=Path,
        default=None,
        metavar="FILE",
        help="cache location (implies --cache)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse/analyze files with N worker processes (default: 1)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RLxxx",
        default=None,
        help="print one rule's rationale, example and fix, then exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress output when there are no violations",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code in sorted(RULE_SUMMARIES):
            print(f"{code}  {RULE_SUMMARIES[code]}")
        return 0

    if options.explain is not None:
        from tools.reprolint.docs import explain

        code = options.explain.upper()
        text = explain(code)
        if text is None:
            print(
                f"reprolint: unknown rule {options.explain!r} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        print(text)
        return 0

    paths = [Path(p) for p in options.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"reprolint: no such path: {p}", file=sys.stderr)
        return 2
    if options.jobs < 1:
        print("reprolint: --jobs must be >= 1", file=sys.stderr)
        return 2

    if options.fix:
        outcome = fix_paths(paths, jobs=options.jobs)
        if not options.quiet and outcome.total:
            for path, count in sorted(outcome.fixes.items()):
                noun = "fix" if count == 1 else "fixes"
                print(f"reprolint: applied {count} {noun} in {path}")

    cache_path = options.cache_file
    if cache_path is None and options.cache:
        cache_path = Path(DEFAULT_CACHE_NAME)
    project = Project(paths, cache_path=cache_path, jobs=options.jobs)
    violations = project.lint()

    baseline_path = options.baseline
    if baseline_path is None:
        default = Path(DEFAULT_BASELINE_NAME)
        if default.exists():
            baseline_path = default

    if options.update_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE_NAME)
        update_baseline(target, violations, linted_paths=paths)
        if not options.quiet:
            noun = "violation" if len(violations) == 1 else "violations"
            print(
                f"reprolint: baseline {target} now accepts "
                f"{len(violations)} {noun}"
            )
        return 0

    dropped = 0
    if baseline_path is not None and not options.no_baseline:
        violations, dropped = apply_baseline(
            violations, load_baseline(baseline_path)
        )

    report = render_report(violations, options.fmt)
    if options.output is not None:
        options.output.write_text(report + "\n", encoding="utf-8")
        if not options.quiet:
            print(f"reprolint: report written to {options.output}")
    elif violations or not options.quiet or options.fmt == "sarif":
        print(report)
    if dropped and not options.quiet and options.fmt == "text":
        print(f"reprolint: {dropped} baselined violation(s) not shown")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
