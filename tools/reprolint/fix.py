"""Mechanical fixes: RL009 noqa surgery, RL010/RL013/RL015 rewrites.

``fix_paths`` runs the project analysis, applies every mechanical fix,
and re-lints until nothing fixable remains -- so a second invocation is
always a no-op (idempotence is guaranteed by construction, and the CLI
asserts it).  Four fix classes exist, all behavior-preserving:

* **stale noqa codes** (RL009) are removed from their comment (the whole
  comment goes when no codes remain and nothing else was suppressed);
  missing-``-- reason`` findings are *not* auto-fixed -- a tool cannot
  write the reason;
* **deprecated sweep calls** (RL010: ``load_sweep_series`` /
  ``idle_wait_sweep_series``) are rewritten to the exact delegation the
  deprecated wrapper performs (``sweep_many`` over the matching axis and
  an explicit ``FgBgModel``), provided the call shape is simple enough
  to rewrite faithfully (no ``**kwargs``, no unknown keywords);
  missing imports are added, and a deprecated import left without
  references is dropped;
* **unprotected O_EXCL lock fds** (RL013) whose ``os.open`` /
  ``os.close`` pair sits in one statement list with only simple
  single-line statements between them are wrapped in ``try``/``finally``
  so a raising path can no longer leak the lock -- the statements run
  in the same order on the happy path, only the raising paths change
  (to release the lock, which is the point);
* **literal REPRO_* env reads** (RL015: ``os.environ[...]``,
  ``os.environ.get``, ``os.getenv``) are rewritten to the designated
  accessors ``repro_env`` / ``repro_env_required`` from ``repro._env``,
  which delegate to the exact same ``os.environ`` operations; the
  import is added when missing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from tools.reprolint import rules
from tools.reprolint.core import NoqaComment, Violation, noqa_map
from tools.reprolint.project import Project

__all__ = ["FixOutcome", "fix_paths", "fixable"]

_MAX_PASSES = 4

_DEPRECATED = {
    "load_sweep_series": ("utilization_axis", "utilizations"),
    "idle_wait_sweep_series": ("idle_wait_axis", "idle_wait_multiples"),
}
_WRAPPER_PARAMS = ("arrival", None, "bg_probabilities", "metric", "service_rate")


def fixable(violation: Violation) -> bool:
    """True when ``--fix`` can mechanically resolve this violation."""
    if violation.code in {"RL010", "RL015"}:
        return True
    if violation.code == "RL013":
        return "O_EXCL" in violation.message
    return violation.code == "RL009" and "stale" in violation.message


@dataclass
class FixOutcome:
    """What one ``--fix`` run did."""

    passes: int = 0
    #: path -> number of individual fixes applied there.
    fixes: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.fixes.values())


# ---------------------------------------------------------------------------
# RL009: noqa comment surgery
# ---------------------------------------------------------------------------


def _stale_noqa_codes(
    project: Project, path: str
) -> dict[int, tuple[NoqaComment, list[str]]]:
    """Per line: the noqa comment and its provably stale RL codes."""
    raw = project.raw_violations().get(path, [])
    anchored: dict[int, set[str]] = {}
    for violation in raw:
        if violation.code == "RL009":
            continue  # the audit itself does not anchor suppressions
        for line in (violation.line, *violation.extra_noqa_lines):
            anchored.setdefault(line, set()).add(violation.code)
    analysis = project.files.get(path)
    if analysis is None:
        return {}
    out: dict[int, tuple[NoqaComment, list[str]]] = {}
    for comment in analysis.noqa.values():
        rl_codes = comment.rl_codes
        if not rl_codes or "RL009" in rl_codes:
            continue  # opted out of the audit on this line
        present = anchored.get(comment.line, set())
        stale = [code for code in rl_codes if code not in present]
        if stale:
            out[comment.line] = (comment, stale)
    return out


def _rewrite_noqa_line(line: str, comment: NoqaComment, stale: list[str]) -> str:
    assert comment.codes is not None
    keep = [code for code in comment.codes if code not in stale]
    head = line[: comment.col].rstrip()
    if not keep:
        return head
    tail = line[comment.end_col :]
    reason = ""
    if comment.has_reason:
        trailer = line[comment.col : comment.end_col]
        marker = trailer.find("--")
        if marker != -1:
            reason = " " + trailer[marker:].rstrip()
    rebuilt = f"# noqa: {', '.join(keep)}{reason}"
    spacer = "  " if head else ""
    return f"{head}{spacer}{rebuilt}{tail.rstrip()}"


def _apply_noqa_fixes(
    source: str, stale_map: dict[int, tuple[NoqaComment, list[str]]]
) -> tuple[str, int]:
    if not stale_map:
        return source, 0
    lines = source.splitlines(keepends=True)
    applied = 0
    for line_number, (comment, stale) in stale_map.items():
        index = line_number - 1
        if not 0 <= index < len(lines):
            continue
        text = lines[index]
        ending = "\n" if text.endswith("\n") else ""
        rewritten = _rewrite_noqa_line(text.rstrip("\n"), comment, stale)
        lines[index] = rewritten.rstrip() + ending if rewritten.strip() else ending
        applied += len(stale)
    return "".join(lines), applied


# ---------------------------------------------------------------------------
# RL010: deprecated sweep call rewrite
# ---------------------------------------------------------------------------


def _offsets(source: str) -> list[int]:
    starts = [0]
    for line in source.splitlines(keepends=True):
        starts.append(starts[-1] + len(line))
    return starts


def _abs_offset(starts: list[int], line: int, col: int) -> int:
    return starts[line - 1] + col


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _wrapper_arguments(
    node: ast.Call, axis_value_name: str
) -> dict[str, ast.expr] | None:
    """Map a deprecated call's args to wrapper parameter names, or None."""
    names = [
        "arrival",
        axis_value_name,
        "bg_probabilities",
        "metric",
        "service_rate",
    ]
    bound: dict[str, ast.expr] = {}
    if len(node.args) > len(names):
        return None
    for index, arg in enumerate(node.args):
        if isinstance(arg, ast.Starred):
            return None
        bound[names[index]] = arg
    for keyword in node.keywords:
        if keyword.arg is None or keyword.arg not in names:
            return None  # **model_kwargs or unknown keyword: not mechanical
        if keyword.arg in bound:
            return None
        bound[keyword.arg] = keyword.value
    if not all(name in bound for name in names[:4]):
        return None
    return bound


def _rewrite_deprecated_calls(source: str, path: str) -> tuple[str, int]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, 0
    comments = noqa_map(source)
    starts = _offsets(source)
    edits: list[tuple[int, int, str]] = []
    needed: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _DEPRECATED:
            continue
        comment = comments.get(node.lineno)
        if comment is not None and comment.suppresses("RL010"):
            continue
        axis_fn, axis_value_name = _DEPRECATED[name]
        bound = _wrapper_arguments(node, axis_value_name)
        if bound is None:
            continue

        def segment(key: str) -> str | None:
            expr = bound.get(key)
            return None if expr is None else ast.get_source_segment(source, expr)

        arrival = segment("arrival")
        values = segment(axis_value_name)
        probabilities = segment("bg_probabilities")
        metric = segment("metric")
        if None in (arrival, values, probabilities, metric):
            continue
        service = segment("service_rate")
        if service is None:
            service = "SERVICE_RATE_PER_MS"
            needed.add("SERVICE_RATE_PER_MS")
        needed.update({"sweep_many", axis_fn, "FgBgModel"})
        replacement = (
            f"sweep_many(FgBgModel(arrival={arrival}, "
            f"service_rate={service}, bg_probability=0.0), "
            f"{axis_fn}({values}), {metric}, {probabilities})"
        )
        begin = _abs_offset(starts, node.lineno, node.col_offset)
        end = _abs_offset(starts, node.end_lineno or node.lineno, node.end_col_offset or 0)
        edits.append((begin, end, replacement))
    if not edits:
        return source, 0
    for begin, end, replacement in sorted(edits, reverse=True):
        source = source[:begin] + replacement + source[end:]
    source = _ensure_imports(source, path, needed)
    source = _drop_unused_deprecated_imports(source, path)
    return source, len(edits)


_IMPORT_LINES = {
    "FgBgModel": "from repro.core import FgBgModel",
    "SERVICE_RATE_PER_MS": "from repro.workloads.paper import SERVICE_RATE_PER_MS",
    "sweep_many": "from repro.experiments.sweeps import sweep_many",
    "utilization_axis": "from repro.experiments.sweeps import utilization_axis",
    "idle_wait_axis": "from repro.experiments.sweeps import idle_wait_axis",
}


def _bound_names(tree: ast.Module) -> set[str]:
    bound: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".", maxsplit=1)[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bound.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


def _ensure_imports(source: str, path: str, needed: set[str]) -> str:
    if not needed:
        return source
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source
    missing = sorted(needed - _bound_names(tree))
    if not missing:
        return source
    sweeps_names = [
        name
        for name in ("sweep_many", "utilization_axis", "idle_wait_axis")
        if name in missing
    ]
    env_names = [
        name
        for name in ("repro_env", "repro_env_required")
        if name in missing
    ]
    lines: list[str] = []
    if env_names:
        lines.append(f"from repro._env import {', '.join(env_names)}")
    if "FgBgModel" in missing:
        lines.append(_IMPORT_LINES["FgBgModel"])
    if sweeps_names:
        lines.append(
            f"from repro.experiments.sweeps import {', '.join(sweeps_names)}"
        )
    if "SERVICE_RATE_PER_MS" in missing:
        lines.append(_IMPORT_LINES["SERVICE_RATE_PER_MS"])
    last_import_end = 0
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            last_import_end = stmt.end_lineno or stmt.lineno
    source_lines = source.splitlines(keepends=True)
    insertion = "".join(f"{line}\n" for line in lines)
    if last_import_end == 0:
        # No imports yet: insert after a module docstring if present.
        docstring_end = 0
        if (
            tree.body
            and isinstance(tree.body[0], ast.Expr)
            and isinstance(tree.body[0].value, ast.Constant)
            and isinstance(tree.body[0].value.value, str)
        ):
            docstring_end = tree.body[0].end_lineno or 0
        prefix = "".join(source_lines[:docstring_end])
        suffix = "".join(source_lines[docstring_end:])
        separator = "\n" if docstring_end else ""
        return f"{prefix}{separator}{insertion}{suffix}"
    prefix = "".join(source_lines[:last_import_end])
    suffix = "".join(source_lines[last_import_end:])
    return f"{prefix}{insertion}{suffix}"


def _drop_unused_deprecated_imports(source: str, path: str) -> str:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            used.add(node.attr)
    starts = _offsets(source)
    edits: list[tuple[int, int, str]] = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.ImportFrom):
            continue
        dead = [
            alias
            for alias in stmt.names
            if alias.name in _DEPRECATED and (alias.asname or alias.name) not in used
        ]
        if not dead:
            continue
        keep = [alias for alias in stmt.names if alias not in dead]
        begin = _abs_offset(starts, stmt.lineno, stmt.col_offset)
        end_line = stmt.end_lineno or stmt.lineno
        end = _abs_offset(starts, end_line, stmt.end_col_offset or 0)
        if not keep:
            # Swallow the trailing newline with the statement.
            if end < len(source) and source[end] == "\n":
                end += 1
            edits.append((begin, end, ""))
        else:
            rendered = ", ".join(
                alias.name if alias.asname is None else f"{alias.name} as {alias.asname}"
                for alias in keep
            )
            module = "." * stmt.level + (stmt.module or "")
            edits.append((begin, end, f"from {module} import {rendered}"))
    for begin, end, replacement in sorted(edits, reverse=True):
        source = source[:begin] + replacement + source[end:]
    return source


# ---------------------------------------------------------------------------
# RL013: wrap unprotected O_EXCL lock fds in try/finally
# ---------------------------------------------------------------------------

#: Statement kinds safe to move under ``try:`` -- straight-line only, so
#: the happy path is byte-for-byte the same sequence of operations.
_SIMPLE_BETWEEN = (ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign)


def _lock_open_fd(stmt: ast.stmt) -> str | None:
    """The fd name when ``stmt`` is ``fd = os.open(...)``, else None."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    call = stmt.value
    if not isinstance(target, ast.Name) or not isinstance(call, ast.Call):
        return None
    fn = call.func
    if (
        isinstance(fn, ast.Attribute)
        and fn.attr == "open"
        and isinstance(fn.value, ast.Name)
        and fn.value.id == "os"
    ):
        return target.id
    return None


def _is_os_close(stmt: ast.stmt, fd: str) -> bool:
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return False
    call = stmt.value
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "close"
        and isinstance(call.func.value, ast.Name)
        and call.func.value.id == "os"
        and len(call.args) == 1
        and isinstance(call.args[0], ast.Name)
        and call.args[0].id == fd
    )


def _rebinds(stmt: ast.stmt, name: str) -> bool:
    return any(
        isinstance(node, ast.Name)
        and node.id == name
        and isinstance(node.ctx, (ast.Store, ast.Del))
        for node in ast.walk(stmt)
    )


def _lock_wrap_sites(
    tree: ast.Module, flagged: set[int]
) -> list[tuple[int, int]]:
    """(open end_lineno, close lineno) pairs safe to wrap in try/finally."""
    sites: list[tuple[int, int]] = []
    for parent in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            stmts = getattr(parent, attr, None)
            if not isinstance(stmts, list) or not stmts:
                continue
            for index, stmt in enumerate(stmts):
                fd = _lock_open_fd(stmt)
                if fd is None or stmt.value.lineno not in flagged:
                    continue
                close_at = next(
                    (
                        j
                        for j in range(index + 1, len(stmts))
                        if _is_os_close(stmts[j], fd)
                    ),
                    None,
                )
                if close_at is None or close_at == index + 1:
                    continue  # nothing between: no raising path to protect
                between = stmts[index + 1 : close_at]
                close = stmts[close_at]
                if not all(
                    isinstance(s, _SIMPLE_BETWEEN)
                    and s.lineno == s.end_lineno
                    and not _rebinds(s, fd)
                    for s in between
                ):
                    continue
                if close.lineno != close.end_lineno:
                    continue
                sites.append((stmt.end_lineno or stmt.lineno, close.lineno))
    return sites


def _wrap_lock_try_finally(source: str, path: str) -> tuple[str, int]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, 0
    comments = noqa_map(source)
    flagged = {
        v.line
        for v in rules.rl013_durable_write_discipline(tree, path)
        if "O_EXCL" in v.message
        and not (
            (c := comments.get(v.line)) is not None and c.suppresses("RL013")
        )
    }
    if not flagged:
        return source, 0
    sites = _lock_wrap_sites(tree, flagged)
    if not sites:
        return source, 0
    lines = source.splitlines(keepends=True)
    for open_end, close_line in sorted(sites, reverse=True):
        open_line = lines[open_end - 1]
        indent = open_line[: len(open_line) - len(open_line.lstrip())]
        body = [
            "    " + text if text.strip() else text
            for text in lines[open_end : close_line - 1]
        ]
        close = lines[close_line - 1]
        block = [f"{indent}try:\n", *body, f"{indent}finally:\n", "    " + close]
        lines[open_end:close_line] = block
    return "".join(lines), len(sites)


# ---------------------------------------------------------------------------
# RL015: rewrite literal env reads to the repro._env accessors
# ---------------------------------------------------------------------------


def _rewrite_env_reads(source: str, path: str) -> tuple[str, int]:
    normalized = str(path).replace("\\", "/")
    if any(
        normalized.endswith(suffix) for suffix in rules.ENV_ACCESSOR_MODULES
    ):
        return source, 0
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return source, 0
    comments = noqa_map(source)
    constants = rules._module_env_constants(tree)
    starts = _offsets(source)
    edits: list[tuple[int, int, str]] = []
    needed: set[str] = set()

    def key_source(expr: ast.expr | None) -> str | None:
        if (
            isinstance(expr, ast.Constant)
            and isinstance(expr.value, str)
            and expr.value.startswith("REPRO_")
        ):
            return ast.get_source_segment(source, expr)
        if isinstance(expr, ast.Name) and expr.id in constants:
            return expr.id
        return None

    for node in ast.walk(tree):
        replacement: str | None = None
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.ctx, ast.Load)
            and rules._is_environ_expr(node.value)
        ):
            key = key_source(node.slice)
            if key is not None:
                replacement = f"repro_env_required({key})"
                needed.add("repro_env_required")
        elif isinstance(node, ast.Call):
            fn = node.func
            is_env_get = (
                (isinstance(fn, ast.Name) and fn.id == "getenv")
                or (
                    isinstance(fn, ast.Attribute)
                    and fn.attr == "getenv"
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id == "os"
                )
                or (
                    isinstance(fn, ast.Attribute)
                    and fn.attr == "get"
                    and rules._is_environ_expr(fn.value)
                )
            )
            if is_env_get and node.args and len(node.args) <= 2 and not node.keywords:
                key = key_source(node.args[0])
                if key is not None:
                    default = (
                        ast.get_source_segment(source, node.args[1])
                        if len(node.args) == 2
                        else None
                    )
                    arguments = key if default is None else f"{key}, {default}"
                    replacement = f"repro_env({arguments})"
                    needed.add("repro_env")
        if replacement is None:
            continue
        comment = comments.get(node.lineno)
        if comment is not None and comment.suppresses("RL015"):
            continue
        begin = _abs_offset(starts, node.lineno, node.col_offset)
        end = _abs_offset(
            starts, node.end_lineno or node.lineno, node.end_col_offset or 0
        )
        edits.append((begin, end, replacement))
    if not edits:
        return source, 0
    edits.sort()
    pruned: list[tuple[int, int, str]] = []
    last_end = -1
    for begin, end, replacement in edits:
        if begin < last_end:
            continue  # nested inside an outer rewrite: the outer one wins
        pruned.append((begin, end, replacement))
        last_end = end
    for begin, end, replacement in sorted(pruned, reverse=True):
        source = source[:begin] + replacement + source[end:]
    source = _ensure_imports(source, path, needed)
    return source, len(pruned)


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def fix_paths(
    paths: list[Path],
    *,
    root: Path | None = None,
    jobs: int = 1,
) -> FixOutcome:
    """Apply every mechanical fix under ``paths`` until none remain."""
    outcome = FixOutcome()
    for _ in range(_MAX_PASSES):
        project = Project(paths, root=root, jobs=jobs)
        project.analyze()
        changed = False
        for path in sorted(project.files):
            source = Path(path).read_text(encoding="utf-8")
            new_source, n_noqa = _apply_noqa_fixes(
                source, _stale_noqa_codes(project, path)
            )
            new_source, n_calls = _rewrite_deprecated_calls(new_source, path)
            new_source, n_locks = _wrap_lock_try_finally(new_source, path)
            new_source, n_env = _rewrite_env_reads(new_source, path)
            if new_source != source:
                Path(path).write_text(new_source, encoding="utf-8")
                outcome.fixes[path] = (
                    outcome.fixes.get(path, 0)
                    + n_noqa
                    + n_calls
                    + n_locks
                    + n_env
                )
                changed = True
        outcome.passes += 1
        if not changed:
            break
    return outcome
