"""The reprolint rules.

Per-file rules are callables ``(tree, path) -> Iterator[Violation]``
collected in :data:`FILE_RULES`; the cross-file rules (RL007-RL009)
run inside :mod:`tools.reprolint.project` where the symbol table and
raw-violation map exist.  The rules encode repo-specific invariants
(see DESIGN.md and the gotchas in CLAUDE.md):

RL001
    Mutation of a frozen-dataclass attribute outside the
    ``__post_init__`` / ``object.__setattr__`` idiom.  Plain
    ``self.attr = ...`` in a frozen dataclass raises at runtime; an
    ``object.__setattr__`` outside ``__post_init__`` silently breaks the
    immutability the solve cache and fingerprinting rely on.
RL002
    A numpy array stored on a dataclass without a read-only guard
    (``.setflags(write=False)`` or ``.flags.writeable = False``).
    Models are frozen and content-addressed; a writable array makes the
    frozen dataclass silently mutable and the fingerprint stale.
RL003
    A time-like parameter or keyword argument crossing a function
    boundary without a ``_ms`` unit (bare ``timeout``/``idle_wait``/... or
    a ``_sec``-style suffix).  Time is milliseconds repo-wide; unit bugs
    produce plausible numbers, not errors.
RL004
    A blanket ``np.errstate(...="ignore")`` / ``warnings.simplefilter``
    suppression inside a scope that touches ``bg_completion_rate``.  The
    NaN there is deliberate and guarded (``NEAR_ZERO_BG_PROBABILITY``);
    suppression hides genuine numerical failures.
RL005
    A plain stationary solve of the phase-process sum ``A0+A1+A2``.  The
    FG/BG phase process is *reducible*; use the SCC-aware
    ``repro.qbd.rmatrix.drift`` instead.
RL006
    Certificate soundness.  A construction certificate
    (``self._generator_validated = True``, or a call passing
    ``blocks_validated=True``) claims the certified arrays are validated
    *and frozen*; issuing one where the arrays are not provably
    read-only on all paths (``setflags(write=False)``) makes the
    contract layer skip re-validation of data that can still mutate --
    the exact bug class CLAUDE.md warns silently corrupts every solve.
    A warm-start seed (``initial_r=``) built locally and still writable
    is flagged when it rides in under such a certificate.
RL010
    Call of a deprecated sweep entry point (``load_sweep_series`` /
    ``idle_wait_sweep_series``); mechanically rewritable to
    ``sweep_many`` over the matching axis (``--fix`` applies it).
RL012
    Lifecycle-gate bypass.  ``_to()`` is the *only* place a job's state
    may change (that is what makes :data:`TRANSITIONS` unbypassable);
    a ``replace(..., state=...)``/``finished_ms=...`` or a direct
    ``job.state = ...`` outside ``_to`` reintroduces the unchecked
    writes the gate exists to prevent.  A ``_to()`` call targeting a
    state no declared transition reaches is flagged too (the table is
    extracted statically from the module, so the rule tracks the code).
RL013
    Durable-write discipline.  Writes landing in repository/cache
    paths (paths derived from ``self``) must use the
    ``tmp.<pid>`` + ``os.replace`` idiom, or a SIGKILL mid-write leaves
    a torn file; ``O_EXCL`` lock fds must be closed via a context
    manager or try/finally, or a raising path leaks the lock forever.
RL014
    Exception laundering.  The failure-semantics contract forbids two
    conversions outright: silently dropping a ``ContractViolation``
    (the record must keep its details), and turning a
    ``SweepCancelled`` into a ``FailedSolve``/NaN point (cancellation
    is *not* a solve failure).
RL015
    Env-var hygiene.  Literal ``REPRO_*`` reads of ``os.environ`` /
    ``os.getenv`` outside the designated accessor modules (contracts,
    faults, solver budget, ``repro._env``) grow divergent config
    backdoors that distributed workers then disagree on (``--fix``
    rewrites to the ``repro._env`` accessors).

RL011 (solver purity: a public entry point of the solver packages
mutating a parameter array, directly or through a callee) needs the
project-wide call graph and effect summaries, so it runs inside
:mod:`tools.reprolint.project` next to RL007-RL009.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint import dataflow, effects
from tools.reprolint.core import Violation
from tools.reprolint.shapes import shape_rules

__all__ = ["ALL_RULES", "FILE_RULES", "RULE_SUMMARIES"]

RULE_SUMMARIES = {
    "RL001": "frozen-dataclass attribute mutated outside __post_init__",
    "RL002": "numpy array stored on a dataclass without a read-only guard",
    "RL003": "time-like name crosses a function boundary without a _ms unit",
    "RL004": "error/warning suppression around bg_completion_rate",
    "RL005": "plain stationary solve on the reducible phase sum A0+A1+A2",
    "RL006": "construction certificate issued over arrays not provably frozen",
    "RL007": "public entry point without contract coverage or waiver",
    "RL008": "unit mismatch between argument and parameter across a call site",
    "RL009": "stale # noqa suppression, or one missing its '-- reason' trailer",
    "RL010": "call of a deprecated sweep API (load/idle_wait_sweep_series)",
    "RL011": "solver entry point mutates a parameter array (possibly via a callee)",
    "RL012": "job state/terminal timestamp written outside the _to() lifecycle gate",
    "RL013": "durable write without tmp+os.replace, or unprotected O_EXCL lock fd",
    "RL014": "ContractViolation dropped, or SweepCancelled laundered into a failure",
    "RL015": "literal REPRO_* env read outside the designated accessor modules",
    "RL016": "non-conformable or non-square block assembly reaching a QBD sink",
    "RL017": "stochastic-kind confusion (generator vs stochastic vs probability)",
    "RL018": "batched-axis hazard: op aggregates/broadcasts across the item axis",
    "RL019": "bg_completion_rate compared/aggregated outside the NaN guard",
    "RL020": "precision hazard: narrowing float dtype or floor-divided rate/_ms",
}

_NUMPY_MODULES = {"np", "numpy"}
_ARRAY_FACTORIES = {
    "array",
    "asarray",
    "ascontiguousarray",
    "asfortranarray",
    "copy",
    "empty",
    "empty_like",
    "eye",
    "full",
    "full_like",
    "ones",
    "ones_like",
    "zeros",
    "zeros_like",
}

# RL003 vocabulary: bare names that are times without saying so, and
# suffixes that say so in the wrong unit.
_BARE_TIME_NAMES = {
    "timeout",
    "idle_wait",
    "delay",
    "interval",
    "duration",
    "wait_time",
    "sleep_time",
}
_BAD_UNIT_SUFFIXES = (
    "_sec",
    "_secs",
    "_seconds",
    "_minutes",
    "_hours",
    "_us",
    "_micros",
    "_ns",
    "_nanos",
)


def _dataclass_decoration(node: ast.ClassDef) -> tuple[bool, bool]:
    """``(is_dataclass, is_frozen)`` from the class's decorator list."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name != "dataclass":
            continue
        frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen":
                    frozen = bool(
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    )
        return True, frozen
    return False, False


def _is_object_setattr_on_self(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "__setattr__"
        and isinstance(func.value, ast.Name)
        and func.value.id == "object"
        and bool(node.args)
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id == "self"
    )


def _methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


def rl001_frozen_mutation(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL001: frozen-dataclass mutation outside the sanctioned idiom."""
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        is_dc, frozen = _dataclass_decoration(class_node)
        if not (is_dc and frozen):
            continue
        for method in _methods(class_node):
            in_post_init = method.name == "__post_init__"
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            yield Violation(
                                path,
                                node.lineno,
                                node.col_offset,
                                "RL001",
                                f"assignment to frozen attribute "
                                f"'self.{target.attr}' in "
                                f"{class_node.name}.{method.name}; frozen "
                                "dataclasses are initialised via "
                                "object.__setattr__ in __post_init__ only",
                            )
                elif isinstance(node, ast.Call) and _is_object_setattr_on_self(node):
                    if not in_post_init:
                        attr = "?"
                        if len(node.args) > 1 and isinstance(
                            node.args[1], ast.Constant
                        ):
                            attr = str(node.args[1].value)
                        yield Violation(
                            path,
                            node.lineno,
                            node.col_offset,
                            "RL001",
                            f"object.__setattr__ on frozen attribute {attr!r} "
                            f"outside __post_init__ (in "
                            f"{class_node.name}.{method.name}); frozen models "
                            "must stay immutable after construction",
                        )


def _is_array_factory_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _ARRAY_FACTORIES
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in _NUMPY_MODULES
    )


def _oracle_protected_names(
    call: ast.Call, oracle: dict[str, dict]
) -> Iterator[str]:
    """Names frozen by a call to an unconditionally-freezing helper."""
    func = call.func
    if not (isinstance(func, ast.Name) and func.id in oracle):
        return
    info = oracle[func.id]
    params: list[str] = info.get("params", [])
    frozen = set(info.get("freezes", ()))
    all_args = bool(info.get("all_args", False))
    for index, arg in enumerate(call.args):
        if not isinstance(arg, ast.Name):
            continue
        if all_args or (index < len(params) and params[index] in frozen):
            yield arg.id
    for kw in call.keywords:
        if kw.arg in frozen and isinstance(kw.value, ast.Name):
            yield kw.value.id


def rl002_writable_array_on_dataclass(
    tree: ast.AST, path: str
) -> Iterator[Violation]:
    """RL002: numpy array stored on a dataclass while still writeable.

    Freezing through a directly-called, unconditionally-freezing helper
    defined in the same module counts (the one-level helper contract;
    see :func:`tools.reprolint.effects.freeze_oracle`).
    """
    oracle = (
        effects.freeze_oracle(tree) if isinstance(tree, ast.Module) else {}
    )
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        is_dc, _ = _dataclass_decoration(class_node)
        if not is_dc:
            continue
        for method in _methods(class_node):
            if method.name not in {"__post_init__", "__init__"}:
                continue
            array_names: set[str] = set()
            protected: set[str] = set()
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_array_factory_call(
                    node.value
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            array_names.add(target.id)
                elif isinstance(node, ast.Call):
                    protected.update(_oracle_protected_names(node, oracle))
                    # x.setflags(write=False)
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "setflags"
                        and isinstance(func.value, ast.Name)
                    ):
                        protected.add(func.value.id)
                elif isinstance(node, ast.Assign):
                    # x.flags.writeable = False
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "writeable"
                            and isinstance(target.value, ast.Attribute)
                            and target.value.attr == "flags"
                            and isinstance(target.value.value, ast.Name)
                        ):
                            protected.add(target.value.value.id)

            def unprotected(value: ast.expr) -> bool:
                if _is_array_factory_call(value):
                    return True
                return (
                    isinstance(value, ast.Name)
                    and value.id in array_names
                    and value.id not in protected
                )

            for node in ast.walk(method):
                attr: str | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Call) and _is_object_setattr_on_self(node):
                    if len(node.args) == 3 and isinstance(
                        node.args[1], ast.Constant
                    ):
                        attr = str(node.args[1].value)
                        value = node.args[2]
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attr = target.attr
                            value = node.value
                if attr is not None and value is not None and unprotected(value):
                    yield Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "RL002",
                        f"numpy array stored on dataclass attribute "
                        f"{class_node.name}.{attr} without a read-only guard; "
                        "call .setflags(write=False) before storing",
                    )


def _time_name_problem(name: str) -> str | None:
    if name in _BARE_TIME_NAMES:
        return (
            f"time-like name {name!r} has no unit; time is milliseconds "
            f"repo-wide -- rename to '{name}_ms' or convert explicitly"
        )
    for suffix in _BAD_UNIT_SUFFIXES:
        if name.endswith(suffix):
            return (
                f"time-like name {name!r} is not in milliseconds; convert "
                "at the boundary and pass a '_ms' name"
            )
    return None


def rl003_unitless_time(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL003: time-like names crossing function boundaries without _ms."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ]:
                if arg.arg in {"self", "cls"}:
                    continue
                problem = _time_name_problem(arg.arg)
                if problem is not None:
                    # A noqa on the `def` line also suppresses, so a
                    # multi-line signature can be waived in one place.
                    anchors = (node.lineno,) if node.lineno != arg.lineno else ()
                    yield Violation(
                        path,
                        arg.lineno,
                        arg.col_offset,
                        "RL003",
                        f"parameter of {node.name}(): {problem}",
                        extra_noqa_lines=anchors,
                    )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                problem = _time_name_problem(keyword.arg)
                if problem is not None:
                    # Anchor multi-line calls at the call's first line too.
                    anchors = (
                        (node.lineno,)
                        if node.lineno != keyword.value.lineno
                        else ()
                    )
                    yield Violation(
                        path,
                        keyword.value.lineno,
                        keyword.value.col_offset,
                        "RL003",
                        f"keyword argument: {problem}",
                        extra_noqa_lines=anchors,
                    )


def _mentions_bg_completion_rate(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Name) and node.id == "bg_completion_rate":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "bg_completion_rate":
            return True
        if isinstance(node, ast.keyword) and node.arg == "bg_completion_rate":
            return True
    return False


def _suppression_nodes(scope: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(scope):
        if isinstance(node, ast.withitem):
            expr = node.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "errstate"
                and isinstance(expr.func.value, ast.Name)
                and expr.func.value.id in _NUMPY_MODULES
                and any(
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value == "ignore"
                    for kw in expr.keywords
                )
            ):
                yield expr, "np.errstate(...='ignore')"
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in {"simplefilter", "filterwarnings"}
                and isinstance(func.value, ast.Name)
                and func.value.id == "warnings"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "ignore"
            ):
                yield node, f"warnings.{func.attr}('ignore')"


def rl004_suppression_near_nan_guard(
    tree: ast.AST, path: str
) -> Iterator[Violation]:
    """RL004: blanket suppression in scopes touching bg_completion_rate."""
    scopes: list[ast.AST] = [tree]
    scopes.extend(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    seen: set[tuple[int, int]] = set()
    for scope in scopes:
        if isinstance(scope, ast.Module):
            # Only consider module-level statements outside functions, or
            # every function would be double-reported via the module scope.
            continue
        if not _mentions_bg_completion_rate(scope):
            continue
        for node, what in _suppression_nodes(scope):
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield Violation(
                path,
                node.lineno,
                node.col_offset,
                "RL004",
                f"{what} in a scope computing bg_completion_rate; the NaN "
                "there is deliberate (NEAR_ZERO_BG_PROBABILITY guard) -- "
                "do not blanket-suppress numerical errors around it",
            )


def _phase_sum_leaves(expr: ast.expr) -> list[str] | None:
    """Leaf names of a ``+`` chain, looking through ``np.asarray(...)``."""
    if isinstance(expr, ast.BinOp):
        if not isinstance(expr.op, ast.Add):
            return None
        left = _phase_sum_leaves(expr.left)
        right = _phase_sum_leaves(expr.right)
        if left is None or right is None:
            return None
        return left + right
    if _is_array_factory_call(expr):
        call = expr  # type: ignore[assignment]
        if isinstance(call, ast.Call) and call.args:
            return _phase_sum_leaves(call.args[0])
        return None
    if isinstance(expr, ast.Name):
        return [expr.id]
    if isinstance(expr, ast.Attribute):
        return [expr.attr]
    return None


def _is_phase_process_sum(expr: ast.expr) -> bool:
    leaves = _phase_sum_leaves(expr)
    if leaves is None or len(leaves) != 3:
        return False
    return {leaf.lower() for leaf in leaves} == {"a0", "a1", "a2"}


def rl005_stationary_on_phase_sum(
    tree: ast.AST, path: str
) -> Iterator[Violation]:
    """RL005: stationary solve on A0+A1+A2 instead of the SCC-aware drift."""
    # Track names assigned from a phase-process sum, per enclosing scope.
    # A function body is walked both as its own scope and as part of the
    # module scope; dedupe by source location.
    seen: set[tuple[int, int]] = set()
    for scope in ast.walk(tree):
        if not isinstance(
            scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        summed: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and _is_phase_process_sum(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        summed.add(target.id)
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name != "stationary_distribution" or not node.args:
                continue
            arg = node.args[0]
            direct = _is_phase_process_sum(arg)
            via_name = isinstance(arg, ast.Name) and arg.id in summed
            key = (node.lineno, node.col_offset)
            if (direct or via_name) and key not in seen:
                seen.add(key)
                yield Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "RL005",
                    "stationary solve on the phase sum A0+A1+A2: the FG/BG "
                    "phase process is reducible (transient BG groups, one "
                    "closed class per full-buffer occupancy); use the "
                    "SCC-aware repro.qbd.rmatrix.drift instead",
                )


def _function_nodes(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


_CERTIFIED_BLOCK_KWARGS = ("a0", "a1", "a2")


def rl006_certificate_soundness(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL006: certificates issued over arrays that may still be writable.

    A freeze performed by a directly-called helper in the same module is
    recognized through the freeze oracle -- but only when the helper
    freezes *unconditionally*; a data-dependent freeze leaves the helper
    out of the oracle and the certificate stays flagged.
    """
    oracle = (
        effects.freeze_oracle(tree) if isinstance(tree, ast.Module) else {}
    )
    for func in _function_nodes(tree):
        analysis = dataflow.analyze_function(func, oracle)

        if analysis.certificates:
            unfrozen = analysis.unfrozen_self_arrays()
            if unfrozen:
                event = analysis.certificates[0]
                attrs = ", ".join(unfrozen)
                yield Violation(
                    path,
                    event.node.lineno,
                    event.node.col_offset,
                    "RL006",
                    f"_generator_validated certificate set in {func.name}() "
                    f"while {attrs} is not provably frozen on all paths; "
                    "call .setflags(write=False) before certifying -- a "
                    "writable certified array silently invalidates every "
                    "downstream solve",
                )

        for call in analysis.calls:
            flag = self_kw_value(call.node, "blocks_validated")
            if not (isinstance(flag, ast.Constant) and flag.value is True):
                continue
            suspect: list[str] = []
            for facts, name in zip(call.pos_facts, call.pos_names):
                if (
                    facts is not None
                    and name is not None
                    and dataflow.ARRAY in facts
                    and dataflow.READONLY not in facts
                ):
                    suspect.append(name)
            for kw, facts in call.kw_facts.items():
                if kw not in (*_CERTIFIED_BLOCK_KWARGS, "initial_r"):
                    continue
                name = call.kw_names.get(kw)
                if (
                    facts is not None
                    and name is not None
                    and dataflow.ARRAY in facts
                    and dataflow.READONLY not in facts
                ):
                    suspect.append(f"{kw}={name}" if kw == "initial_r" else name)
            if suspect:
                names = ", ".join(sorted(set(suspect)))
                yield Violation(
                    path,
                    call.node.lineno,
                    call.node.col_offset,
                    "RL006",
                    f"blocks_validated=True passed for hand-assembled, "
                    f"still-writable arrays ({names}); the certificate is "
                    "only sound for validated read-only blocks (e.g. off a "
                    "QBDProcess) -- freeze with .setflags(write=False) and "
                    "validate, or drop the certificate",
                )


def self_kw_value(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


_DEPRECATED_SWEEP_CALLS = {
    "load_sweep_series": "sweep_many(base_model, utilization_axis(...), metric, ...)",
    "idle_wait_sweep_series": "sweep_many(base_model, idle_wait_axis(...), metric, ...)",
}


def rl010_deprecated_sweep_api(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL010: call sites of the deprecated pre-engine sweep entry points."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in _DEPRECATED_SWEEP_CALLS:
            yield Violation(
                path,
                node.lineno,
                node.col_offset,
                "RL010",
                f"{name} was removed from repro.experiments.sweeps; use "
                f"{_DEPRECATED_SWEEP_CALLS[name]} instead "
                "(mechanical rewrite available via --fix)",
            )


# ---------------------------------------------------------------------------
# RL012: lifecycle-gate bypass
# ---------------------------------------------------------------------------

_GATED_JOB_KEYWORDS = ("state", "finished_ms")


def _transition_table(tree: ast.Module) -> tuple[set[str], set[str]] | None:
    """``(destination_names, destination_strings)`` of a TRANSITIONS table.

    The table is extracted statically from the module (``TRANSITIONS =
    {FROM: frozenset({TO, ...}), ...}``) so the rule tracks the code; a
    module without one gets no destination checking.
    """
    constants: dict[str, str] = {}
    table: ast.expr | None = None
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id == "TRANSITIONS":
                table = value
            elif isinstance(value, ast.Constant) and isinstance(value.value, str):
                constants[target.id] = value.value
    if not isinstance(table, ast.Dict):
        return None
    dest_names: set[str] = set()
    dest_strings: set[str] = set()

    def collect(element: ast.expr) -> None:
        if isinstance(element, ast.Name):
            dest_names.add(element.id)
            if element.id in constants:
                dest_strings.add(constants[element.id])
        elif isinstance(element, ast.Constant) and isinstance(element.value, str):
            dest_strings.add(element.value)

    for value in table.values:
        elements: list[ast.expr] = []
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            elements = list(value.elts)
        elif isinstance(value, ast.Call) and value.args:
            # frozenset({...}) / set((...)): look inside the literal.
            inner = value.args[0]
            if isinstance(inner, (ast.Set, ast.Tuple, ast.List)):
                elements = list(inner.elts)
        for element in elements:
            collect(element)
    return dest_names, dest_strings


def _is_replace_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "replace"
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "replace"
        and isinstance(func.value, ast.Name)
        and func.value.id == "dataclasses"
    )


def rl012_lifecycle_gate_bypass(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL012: job state written outside _to(), or _to() off the table."""
    if not isinstance(tree, ast.Module):
        return
    destinations = _transition_table(tree)
    for func in _function_nodes(tree):
        in_gate = func.name == "_to"
        for node in effects.walk_scope(func):
            if isinstance(node, ast.Call) and _is_replace_call(node) and not in_gate:
                gated = sorted(
                    kw.arg
                    for kw in node.keywords
                    if kw.arg in _GATED_JOB_KEYWORDS
                )
                if gated:
                    yield Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "RL012",
                        f"replace(..., {', '.join(f'{k}=...' for k in gated)}) "
                        f"in {func.name}() bypasses the _to() lifecycle gate; "
                        "state and terminal timestamps may only change through "
                        "_to(), which enforces the TRANSITIONS table",
                    )
            elif isinstance(node, (ast.Assign, ast.AnnAssign)) and not in_gate:
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _GATED_JOB_KEYWORDS
                        and isinstance(target.value, ast.Name)
                        and target.value.id not in {"self"}
                    ):
                        yield Violation(
                            path,
                            node.lineno,
                            node.col_offset,
                            "RL012",
                            f"direct write to .{target.attr} bypasses the "
                            "_to() lifecycle gate (and raises on the frozen "
                            "Job dataclass); evolve jobs through the "
                            "transition helpers",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__setattr__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "object"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and node.args[1].value in _GATED_JOB_KEYWORDS
            ):
                yield Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "RL012",
                    f"object.__setattr__(..., {node.args[1].value!r}, ...) "
                    "bypasses the _to() lifecycle gate; state and terminal "
                    "timestamps may only change through _to()",
                )
            if (
                destinations is not None
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_to"
                and node.args
            ):
                dest_names, dest_strings = destinations
                target_state = node.args[0]
                bad: str | None = None
                if isinstance(target_state, ast.Name):
                    if (
                        target_state.id not in dest_names
                        and target_state.id.isupper()
                    ):
                        bad = target_state.id
                elif isinstance(target_state, ast.Constant) and isinstance(
                    target_state.value, str
                ):
                    if target_state.value not in dest_strings:
                        bad = repr(target_state.value)
                if bad is not None:
                    yield Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "RL012",
                        f"_to({bad}, ...) targets a state no declared "
                        "transition reaches; add the edge to TRANSITIONS or "
                        "fix the call",
                    )


# ---------------------------------------------------------------------------
# RL013: durable-write discipline
# ---------------------------------------------------------------------------


def _chain_root(expr: ast.expr) -> ast.Name | None:
    """The root Name of an attribute/call/subscript chain, if any."""
    while True:
        if isinstance(expr, ast.Call):
            expr = expr.func
        elif isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        else:
            break
    return expr if isinstance(expr, ast.Name) else None


def _self_derived_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Local names whose value derives from ``self`` (paths the instance
    owns -- repository roots, manifest paths, cache dirs)."""
    derived: set[str] = set()
    for _ in range(2):  # two passes reach p = self.x; q = p.with_name(...)
        for node in effects.walk_scope(func):
            value: ast.expr | None = None
            names: list[str] = []
            if isinstance(node, ast.Assign):
                value = node.value
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value = node.value
                if isinstance(node.target, ast.Name):
                    names = [node.target.id]
            if value is None or not names:
                continue
            root = _chain_root(value)
            if root is not None and (root.id == "self" or root.id in derived):
                derived.update(names)
    return derived


def _is_self_derived(expr: ast.expr, derived: set[str]) -> bool:
    root = _chain_root(expr)
    return root is not None and (root.id == "self" or root.id in derived)


def _open_write_mode(call: ast.Call) -> bool:
    mode: ast.expr | None = call.args[1] if len(call.args) > 1 else None
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and any(flag in mode.value for flag in ("w", "a", "x"))
    )


def rl013_durable_write_discipline(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL013: non-atomic durable writes, unprotected O_EXCL lock fds."""
    for func in _function_nodes(tree):
        derived = _self_derived_names(func)
        replaced: set[str] = set()
        fdopen_with: set[str] = set()
        closed_in_finally: set[str] = set()
        returned: set[str] = set()
        for node in effects.walk_scope(func):
            if isinstance(node, ast.Call):
                fn = node.func
                if (
                    isinstance(fn, ast.Attribute)
                    and fn.attr == "replace"
                    and isinstance(fn.value, ast.Name)
                    and fn.value.id == "os"
                    and node.args
                ):
                    replaced.add(ast.unparse(node.args[0]))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Call)
                        and isinstance(expr.func, ast.Attribute)
                        and expr.func.attr == "fdopen"
                        and isinstance(expr.func.value, ast.Name)
                        and expr.func.value.id == "os"
                        and expr.args
                        and isinstance(expr.args[0], ast.Name)
                    ):
                        fdopen_with.add(expr.args[0].id)
            elif isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for inner in ast.walk(stmt):
                        if (
                            isinstance(inner, ast.Call)
                            and isinstance(inner.func, ast.Attribute)
                            and inner.func.attr == "close"
                            and isinstance(inner.func.value, ast.Name)
                            and inner.func.value.id == "os"
                            and inner.args
                            and isinstance(inner.args[0], ast.Name)
                        ):
                            closed_in_finally.add(inner.args[0].id)
            elif isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                returned.add(node.value.id)

        for node in effects.walk_scope(func):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            # (a) durable writes without the tmp.<pid> + os.replace idiom
            write_target: ast.expr | None = None
            what: str | None = None
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr in {"write_text", "write_bytes"}
                and _is_self_derived(fn.value, derived)
            ):
                write_target, what = fn.value, f".{fn.attr}()"
            elif (
                isinstance(fn, ast.Name)
                and fn.id == "open"
                and node.args
                and _open_write_mode(node)
                and _is_self_derived(node.args[0], derived)
            ):
                write_target, what = node.args[0], "open(..., 'w')"
            elif (
                isinstance(fn, ast.Attribute)
                and fn.attr == "open"
                and _open_write_mode(node)
                and _is_self_derived(fn.value, derived)
            ):
                write_target, what = fn.value, ".open('w')"
            if write_target is not None:
                target_repr = ast.unparse(write_target)
                if target_repr not in replaced:
                    yield Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "RL013",
                        f"{what} on durable path {target_repr!r} without the "
                        "atomic-write idiom; write to a sibling "
                        "'<name>.tmp.<pid>' and os.replace() it into place, "
                        "or a mid-write kill leaves a torn file",
                    )
                continue
            # (b) O_EXCL lock fds not protected on raising paths
            if (
                isinstance(fn, ast.Attribute)
                and fn.attr == "open"
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "os"
                and any(
                    (isinstance(flag, ast.Attribute) and flag.attr == "O_EXCL")
                    or (isinstance(flag, ast.Name) and flag.id == "O_EXCL")
                    for arg in node.args
                    for flag in ast.walk(arg)
                )
            ):
                fd_names = _assigned_names_of_call(func, node)
                protected_fd = any(
                    name in fdopen_with
                    or name in closed_in_finally
                    or name in returned
                    for name in fd_names
                )
                if not protected_fd:
                    yield Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "RL013",
                        "O_EXCL lock fd is not closed on all paths; hand it "
                        "to 'with os.fdopen(fd, ...)' or close it in a "
                        "try/finally, or a raising path leaks the lock "
                        "forever (--fix wraps simple cases)",
                    )
        # (c) mutating SQL in autocommit mode (outside ``with conn:``)
        yield from _rl013_sqlite_autocommit(func, path)


#: SQL verbs that mutate durable state.  SELECT/PRAGMA/CREATE are exempt:
#: reads are harmless and idempotent schema setup is a single statement.
_SQLITE_MUTATING = frozenset({"insert", "update", "delete", "replace"})


def _looks_like_connection(expr: ast.expr) -> bool:
    """Name-seeded detection, like the shape layer: a receiver whose
    final segment is ``conn``-ish (``self._conn``, ``conn``,
    ``connection``) is taken to be a sqlite connection."""
    if isinstance(expr, ast.Attribute):
        segment = expr.attr
    elif isinstance(expr, ast.Name):
        segment = expr.id
    else:
        return False
    return "conn" in segment.lower()


def _rl013_sqlite_autocommit(
    func: ast.FunctionDef | ast.AsyncFunctionDef, path: str
) -> Iterator[Violation]:
    """RL013(c): mutating SQL executed outside the connection's own
    transaction context.

    ``with conn:`` wraps the enclosed statements in one transaction --
    committed together, rolled back together on an exception -- which is
    the SQLite analogue of the ``tmp.<pid>`` + ``os.replace`` idiom and
    therefore *satisfies* the durable-write discipline.  A mutating
    ``conn.execute(...)`` in autocommit mode leaves no rollback point: a
    crash between statements durably applies half an update, the
    transactional form of a torn file.
    """

    def visit(node: ast.AST, active: tuple[str, ...]) -> Iterator[Violation]:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            and node is not func
        ):
            return  # nested scopes are linted on their own
        if isinstance(node, (ast.With, ast.AsyncWith)):
            grown = active + tuple(
                ast.unparse(item.context_expr) for item in node.items
            )
            for child in node.body:
                yield from visit(child, grown)
            return
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"execute", "executemany", "executescript"}
            and node.args
            and _looks_like_connection(node.func.value)
        ):
            sql = node.args[0]
            if isinstance(sql, ast.Constant) and isinstance(sql.value, str):
                words = sql.value.split()
                head = words[0].lower() if words else ""
                if (
                    head in _SQLITE_MUTATING
                    and ast.unparse(node.func.value) not in active
                ):
                    yield Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "RL013",
                        f"mutating SQL ({head.upper()}) on "
                        f"{ast.unparse(node.func.value)!r} in autocommit "
                        "mode; run it inside 'with "
                        f"{ast.unparse(node.func.value)}:' so the write "
                        "commits or rolls back as one transaction (the "
                        "SQLite form of the atomic-write idiom)",
                    )
        for child in ast.iter_child_nodes(node):
            yield from visit(child, active)

    for stmt in func.body:
        yield from visit(stmt, ())


def _assigned_names_of_call(
    func: ast.FunctionDef | ast.AsyncFunctionDef, call: ast.Call
) -> list[str]:
    for node in effects.walk_scope(func):
        if isinstance(node, ast.Assign) and node.value is call:
            return [t.id for t in node.targets if isinstance(t, ast.Name)]
        if (
            isinstance(node, ast.AnnAssign)
            and node.value is call
            and isinstance(node.target, ast.Name)
        ):
            return [node.target.id]
    return []


# ---------------------------------------------------------------------------
# RL014: exception laundering
# ---------------------------------------------------------------------------


def _handler_catches(handler: ast.ExceptHandler, name: str) -> bool:
    if handler.type is None:
        return False
    candidates: list[ast.expr]
    if isinstance(handler.type, ast.Tuple):
        candidates = list(handler.type.elts)
    else:
        candidates = [handler.type]
    for candidate in candidates:
        leaf = (
            candidate.id
            if isinstance(candidate, ast.Name)
            else candidate.attr
            if isinstance(candidate, ast.Attribute)
            else None
        )
        if leaf == name:
            return True
    return False


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _handler_uses_exception(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    return any(
        isinstance(node, ast.Name) and node.id == handler.name
        for stmt in handler.body
        for node in ast.walk(stmt)
    )


def _handler_builds_failure(handler: ast.ExceptHandler) -> str | None:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, (ast.Name, ast.Attribute))
            ):
                leaf = (
                    node.func.id
                    if isinstance(node.func, ast.Name)
                    else node.func.attr
                )
                if leaf == "FailedSolve":
                    return "a FailedSolve record"
                if leaf == "float" and any(
                    isinstance(a, ast.Constant) and a.value == "nan"
                    for a in node.args
                ):
                    return "a NaN point"
            if isinstance(node, ast.Attribute) and node.attr == "nan":
                return "a NaN point"
    return None


def rl014_exception_laundering(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL014: dropped ContractViolations, laundered cancellations."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _handler_catches(node, "ContractViolation"):
            if not _handler_reraises(node) and not _handler_uses_exception(node):
                yield Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "RL014",
                    "ContractViolation caught and dropped; the failure "
                    "semantics require its details to be re-raised or "
                    "recorded (a silently swallowed contract breach hides "
                    "corrupt data from every downstream consumer)",
                )
        if _handler_catches(node, "SweepCancelled"):
            laundered = _handler_builds_failure(node)
            if laundered is not None:
                yield Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "RL014",
                    f"SweepCancelled converted into {laundered}; "
                    "cancellation is deliberately NOT a solve failure -- "
                    "stand down or record the CANCELLED state instead",
                )


# ---------------------------------------------------------------------------
# RL015: env-var hygiene
# ---------------------------------------------------------------------------

#: Modules allowed to read REPRO_* directly (path suffixes, '/'-normal).
ENV_ACCESSOR_MODULES = (
    "repro/_env.py",
    "repro/contracts/checks.py",
    "repro/faults/injector.py",
    "repro/qbd/rmatrix.py",
)

_ENV_PREFIX = "REPRO_"


def _module_env_constants(tree: ast.Module) -> set[str]:
    constants: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if (
            isinstance(value, ast.Constant)
            and isinstance(value.value, str)
            and value.value.startswith(_ENV_PREFIX)
        ):
            constants.update(
                t.id for t in targets if isinstance(t, ast.Name)
            )
    return constants


def _env_key_expr(call_or_sub: ast.Call | ast.Subscript) -> ast.expr | None:
    if isinstance(call_or_sub, ast.Call):
        return call_or_sub.args[0] if call_or_sub.args else None
    key = call_or_sub.slice
    return key


def _is_environ_expr(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id == "environ"
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == "environ"
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "os"
    )


def rl015_env_hygiene(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL015: REPRO_* env reads outside the designated accessor modules."""
    normalized = str(path).replace("\\", "/")
    if any(normalized.endswith(suffix) for suffix in ENV_ACCESSOR_MODULES):
        return
    constants = (
        _module_env_constants(tree) if isinstance(tree, ast.Module) else set()
    )

    def is_repro_key(expr: ast.expr | None) -> str | None:
        if (
            isinstance(expr, ast.Constant)
            and isinstance(expr.value, str)
            and expr.value.startswith(_ENV_PREFIX)
        ):
            return expr.value
        if isinstance(expr, ast.Name) and expr.id in constants:
            return expr.id
        return None

    for node in ast.walk(tree):
        key: str | None = None
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id == "getenv":
                key = is_repro_key(_env_key_expr(node))
            elif isinstance(fn, ast.Attribute) and fn.attr in {"getenv", "get"}:
                if fn.attr == "getenv":
                    if isinstance(fn.value, ast.Name) and fn.value.id == "os":
                        key = is_repro_key(_env_key_expr(node))
                elif _is_environ_expr(fn.value):
                    key = is_repro_key(_env_key_expr(node))
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            if _is_environ_expr(node.value):
                key = is_repro_key(_env_key_expr(node))
        if key is not None:
            yield Violation(
                path,
                node.lineno,
                node.col_offset,
                "RL015",
                f"literal read of {key} outside the designated accessor "
                "modules; route it through repro._env (repro_env / "
                "repro_env_required) so distributed workers cannot grow "
                "divergent config backdoors (--fix rewrites simple reads)",
            )


#: Single-file rules, runnable without cross-module context.
FILE_RULES = (
    rl001_frozen_mutation,
    rl002_writable_array_on_dataclass,
    rl003_unitless_time,
    rl004_suppression_near_nan_guard,
    rl005_stationary_on_phase_sum,
    rl006_certificate_soundness,
    rl010_deprecated_sweep_api,
    rl012_lifecycle_gate_bypass,
    rl013_durable_write_discipline,
    rl014_exception_laundering,
    rl015_env_hygiene,
    shape_rules,
)

#: Backwards-compatible alias (pre-project-analyzer name).
ALL_RULES = FILE_RULES
