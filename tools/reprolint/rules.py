"""The reprolint rules.

Per-file rules are callables ``(tree, path) -> Iterator[Violation]``
collected in :data:`FILE_RULES`; the cross-file rules (RL007-RL009)
run inside :mod:`tools.reprolint.project` where the symbol table and
raw-violation map exist.  The rules encode repo-specific invariants
(see DESIGN.md and the gotchas in CLAUDE.md):

RL001
    Mutation of a frozen-dataclass attribute outside the
    ``__post_init__`` / ``object.__setattr__`` idiom.  Plain
    ``self.attr = ...`` in a frozen dataclass raises at runtime; an
    ``object.__setattr__`` outside ``__post_init__`` silently breaks the
    immutability the solve cache and fingerprinting rely on.
RL002
    A numpy array stored on a dataclass without a read-only guard
    (``.setflags(write=False)`` or ``.flags.writeable = False``).
    Models are frozen and content-addressed; a writable array makes the
    frozen dataclass silently mutable and the fingerprint stale.
RL003
    A time-like parameter or keyword argument crossing a function
    boundary without a ``_ms`` unit (bare ``timeout``/``idle_wait``/... or
    a ``_sec``-style suffix).  Time is milliseconds repo-wide; unit bugs
    produce plausible numbers, not errors.
RL004
    A blanket ``np.errstate(...="ignore")`` / ``warnings.simplefilter``
    suppression inside a scope that touches ``bg_completion_rate``.  The
    NaN there is deliberate and guarded (``NEAR_ZERO_BG_PROBABILITY``);
    suppression hides genuine numerical failures.
RL005
    A plain stationary solve of the phase-process sum ``A0+A1+A2``.  The
    FG/BG phase process is *reducible*; use the SCC-aware
    ``repro.qbd.rmatrix.drift`` instead.
RL006
    Certificate soundness.  A construction certificate
    (``self._generator_validated = True``, or a call passing
    ``blocks_validated=True``) claims the certified arrays are validated
    *and frozen*; issuing one where the arrays are not provably
    read-only on all paths (``setflags(write=False)``) makes the
    contract layer skip re-validation of data that can still mutate --
    the exact bug class CLAUDE.md warns silently corrupts every solve.
    A warm-start seed (``initial_r=``) built locally and still writable
    is flagged when it rides in under such a certificate.
RL010
    Call of a deprecated sweep entry point (``load_sweep_series`` /
    ``idle_wait_sweep_series``); mechanically rewritable to
    ``sweep_many`` over the matching axis (``--fix`` applies it).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.reprolint import dataflow
from tools.reprolint.core import Violation

__all__ = ["ALL_RULES", "FILE_RULES", "RULE_SUMMARIES"]

RULE_SUMMARIES = {
    "RL001": "frozen-dataclass attribute mutated outside __post_init__",
    "RL002": "numpy array stored on a dataclass without a read-only guard",
    "RL003": "time-like name crosses a function boundary without a _ms unit",
    "RL004": "error/warning suppression around bg_completion_rate",
    "RL005": "plain stationary solve on the reducible phase sum A0+A1+A2",
    "RL006": "construction certificate issued over arrays not provably frozen",
    "RL007": "public entry point without contract coverage or waiver",
    "RL008": "unit mismatch between argument and parameter across a call site",
    "RL009": "stale # noqa suppression, or one missing its '-- reason' trailer",
    "RL010": "call of a deprecated sweep API (load/idle_wait_sweep_series)",
}

_NUMPY_MODULES = {"np", "numpy"}
_ARRAY_FACTORIES = {
    "array",
    "asarray",
    "ascontiguousarray",
    "asfortranarray",
    "copy",
    "empty",
    "empty_like",
    "eye",
    "full",
    "full_like",
    "ones",
    "ones_like",
    "zeros",
    "zeros_like",
}

# RL003 vocabulary: bare names that are times without saying so, and
# suffixes that say so in the wrong unit.
_BARE_TIME_NAMES = {
    "timeout",
    "idle_wait",
    "delay",
    "interval",
    "duration",
    "wait_time",
    "sleep_time",
}
_BAD_UNIT_SUFFIXES = (
    "_sec",
    "_secs",
    "_seconds",
    "_minutes",
    "_hours",
    "_us",
    "_micros",
    "_ns",
    "_nanos",
)


def _dataclass_decoration(node: ast.ClassDef) -> tuple[bool, bool]:
    """``(is_dataclass, is_frozen)`` from the class's decorator list."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name != "dataclass":
            continue
        frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen":
                    frozen = bool(
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    )
        return True, frozen
    return False, False


def _is_object_setattr_on_self(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "__setattr__"
        and isinstance(func.value, ast.Name)
        and func.value.id == "object"
        and bool(node.args)
        and isinstance(node.args[0], ast.Name)
        and node.args[0].id == "self"
    )


def _methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


def rl001_frozen_mutation(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL001: frozen-dataclass mutation outside the sanctioned idiom."""
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        is_dc, frozen = _dataclass_decoration(class_node)
        if not (is_dc and frozen):
            continue
        for method in _methods(class_node):
            in_post_init = method.name == "__post_init__"
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            yield Violation(
                                path,
                                node.lineno,
                                node.col_offset,
                                "RL001",
                                f"assignment to frozen attribute "
                                f"'self.{target.attr}' in "
                                f"{class_node.name}.{method.name}; frozen "
                                "dataclasses are initialised via "
                                "object.__setattr__ in __post_init__ only",
                            )
                elif isinstance(node, ast.Call) and _is_object_setattr_on_self(node):
                    if not in_post_init:
                        attr = "?"
                        if len(node.args) > 1 and isinstance(
                            node.args[1], ast.Constant
                        ):
                            attr = str(node.args[1].value)
                        yield Violation(
                            path,
                            node.lineno,
                            node.col_offset,
                            "RL001",
                            f"object.__setattr__ on frozen attribute {attr!r} "
                            f"outside __post_init__ (in "
                            f"{class_node.name}.{method.name}); frozen models "
                            "must stay immutable after construction",
                        )


def _is_array_factory_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _ARRAY_FACTORIES
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in _NUMPY_MODULES
    )


def rl002_writable_array_on_dataclass(
    tree: ast.AST, path: str
) -> Iterator[Violation]:
    """RL002: numpy array stored on a dataclass while still writeable."""
    for class_node in ast.walk(tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        is_dc, _ = _dataclass_decoration(class_node)
        if not is_dc:
            continue
        for method in _methods(class_node):
            if method.name not in {"__post_init__", "__init__"}:
                continue
            array_names: set[str] = set()
            protected: set[str] = set()
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and _is_array_factory_call(
                    node.value
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            array_names.add(target.id)
                elif isinstance(node, ast.Call):
                    # x.setflags(write=False)
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr == "setflags"
                        and isinstance(func.value, ast.Name)
                    ):
                        protected.add(func.value.id)
                elif isinstance(node, ast.Assign):
                    # x.flags.writeable = False
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "writeable"
                            and isinstance(target.value, ast.Attribute)
                            and target.value.attr == "flags"
                            and isinstance(target.value.value, ast.Name)
                        ):
                            protected.add(target.value.value.id)

            def unprotected(value: ast.expr) -> bool:
                if _is_array_factory_call(value):
                    return True
                return (
                    isinstance(value, ast.Name)
                    and value.id in array_names
                    and value.id not in protected
                )

            for node in ast.walk(method):
                attr: str | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Call) and _is_object_setattr_on_self(node):
                    if len(node.args) == 3 and isinstance(
                        node.args[1], ast.Constant
                    ):
                        attr = str(node.args[1].value)
                        value = node.args[2]
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attr = target.attr
                            value = node.value
                if attr is not None and value is not None and unprotected(value):
                    yield Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        "RL002",
                        f"numpy array stored on dataclass attribute "
                        f"{class_node.name}.{attr} without a read-only guard; "
                        "call .setflags(write=False) before storing",
                    )


def _time_name_problem(name: str) -> str | None:
    if name in _BARE_TIME_NAMES:
        return (
            f"time-like name {name!r} has no unit; time is milliseconds "
            f"repo-wide -- rename to '{name}_ms' or convert explicitly"
        )
    for suffix in _BAD_UNIT_SUFFIXES:
        if name.endswith(suffix):
            return (
                f"time-like name {name!r} is not in milliseconds; convert "
                "at the boundary and pass a '_ms' name"
            )
    return None


def rl003_unitless_time(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL003: time-like names crossing function boundaries without _ms."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ]:
                if arg.arg in {"self", "cls"}:
                    continue
                problem = _time_name_problem(arg.arg)
                if problem is not None:
                    # A noqa on the `def` line also suppresses, so a
                    # multi-line signature can be waived in one place.
                    anchors = (node.lineno,) if node.lineno != arg.lineno else ()
                    yield Violation(
                        path,
                        arg.lineno,
                        arg.col_offset,
                        "RL003",
                        f"parameter of {node.name}(): {problem}",
                        extra_noqa_lines=anchors,
                    )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                problem = _time_name_problem(keyword.arg)
                if problem is not None:
                    # Anchor multi-line calls at the call's first line too.
                    anchors = (
                        (node.lineno,)
                        if node.lineno != keyword.value.lineno
                        else ()
                    )
                    yield Violation(
                        path,
                        keyword.value.lineno,
                        keyword.value.col_offset,
                        "RL003",
                        f"keyword argument: {problem}",
                        extra_noqa_lines=anchors,
                    )


def _mentions_bg_completion_rate(scope: ast.AST) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Name) and node.id == "bg_completion_rate":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "bg_completion_rate":
            return True
        if isinstance(node, ast.keyword) and node.arg == "bg_completion_rate":
            return True
    return False


def _suppression_nodes(scope: ast.AST) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(scope):
        if isinstance(node, ast.withitem):
            expr = node.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "errstate"
                and isinstance(expr.func.value, ast.Name)
                and expr.func.value.id in _NUMPY_MODULES
                and any(
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value == "ignore"
                    for kw in expr.keywords
                )
            ):
                yield expr, "np.errstate(...='ignore')"
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in {"simplefilter", "filterwarnings"}
                and isinstance(func.value, ast.Name)
                and func.value.id == "warnings"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "ignore"
            ):
                yield node, f"warnings.{func.attr}('ignore')"


def rl004_suppression_near_nan_guard(
    tree: ast.AST, path: str
) -> Iterator[Violation]:
    """RL004: blanket suppression in scopes touching bg_completion_rate."""
    scopes: list[ast.AST] = [tree]
    scopes.extend(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    seen: set[tuple[int, int]] = set()
    for scope in scopes:
        if isinstance(scope, ast.Module):
            # Only consider module-level statements outside functions, or
            # every function would be double-reported via the module scope.
            continue
        if not _mentions_bg_completion_rate(scope):
            continue
        for node, what in _suppression_nodes(scope):
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield Violation(
                path,
                node.lineno,
                node.col_offset,
                "RL004",
                f"{what} in a scope computing bg_completion_rate; the NaN "
                "there is deliberate (NEAR_ZERO_BG_PROBABILITY guard) -- "
                "do not blanket-suppress numerical errors around it",
            )


def _phase_sum_leaves(expr: ast.expr) -> list[str] | None:
    """Leaf names of a ``+`` chain, looking through ``np.asarray(...)``."""
    if isinstance(expr, ast.BinOp):
        if not isinstance(expr.op, ast.Add):
            return None
        left = _phase_sum_leaves(expr.left)
        right = _phase_sum_leaves(expr.right)
        if left is None or right is None:
            return None
        return left + right
    if _is_array_factory_call(expr):
        call = expr  # type: ignore[assignment]
        if isinstance(call, ast.Call) and call.args:
            return _phase_sum_leaves(call.args[0])
        return None
    if isinstance(expr, ast.Name):
        return [expr.id]
    if isinstance(expr, ast.Attribute):
        return [expr.attr]
    return None


def _is_phase_process_sum(expr: ast.expr) -> bool:
    leaves = _phase_sum_leaves(expr)
    if leaves is None or len(leaves) != 3:
        return False
    return {leaf.lower() for leaf in leaves} == {"a0", "a1", "a2"}


def rl005_stationary_on_phase_sum(
    tree: ast.AST, path: str
) -> Iterator[Violation]:
    """RL005: stationary solve on A0+A1+A2 instead of the SCC-aware drift."""
    # Track names assigned from a phase-process sum, per enclosing scope.
    # A function body is walked both as its own scope and as part of the
    # module scope; dedupe by source location.
    seen: set[tuple[int, int]] = set()
    for scope in ast.walk(tree):
        if not isinstance(
            scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            continue
        summed: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and _is_phase_process_sum(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        summed.add(target.id)
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name != "stationary_distribution" or not node.args:
                continue
            arg = node.args[0]
            direct = _is_phase_process_sum(arg)
            via_name = isinstance(arg, ast.Name) and arg.id in summed
            key = (node.lineno, node.col_offset)
            if (direct or via_name) and key not in seen:
                seen.add(key)
                yield Violation(
                    path,
                    node.lineno,
                    node.col_offset,
                    "RL005",
                    "stationary solve on the phase sum A0+A1+A2: the FG/BG "
                    "phase process is reducible (transient BG groups, one "
                    "closed class per full-buffer occupancy); use the "
                    "SCC-aware repro.qbd.rmatrix.drift instead",
                )


def _function_nodes(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


_CERTIFIED_BLOCK_KWARGS = ("a0", "a1", "a2")


def rl006_certificate_soundness(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL006: certificates issued over arrays that may still be writable."""
    for func in _function_nodes(tree):
        analysis = dataflow.analyze_function(func)

        if analysis.certificates:
            unfrozen = analysis.unfrozen_self_arrays()
            if unfrozen:
                event = analysis.certificates[0]
                attrs = ", ".join(unfrozen)
                yield Violation(
                    path,
                    event.node.lineno,
                    event.node.col_offset,
                    "RL006",
                    f"_generator_validated certificate set in {func.name}() "
                    f"while {attrs} is not provably frozen on all paths; "
                    "call .setflags(write=False) before certifying -- a "
                    "writable certified array silently invalidates every "
                    "downstream solve",
                )

        for call in analysis.calls:
            flag = self_kw_value(call.node, "blocks_validated")
            if not (isinstance(flag, ast.Constant) and flag.value is True):
                continue
            suspect: list[str] = []
            for facts, name in zip(call.pos_facts, call.pos_names):
                if (
                    facts is not None
                    and name is not None
                    and dataflow.ARRAY in facts
                    and dataflow.READONLY not in facts
                ):
                    suspect.append(name)
            for kw, facts in call.kw_facts.items():
                if kw not in (*_CERTIFIED_BLOCK_KWARGS, "initial_r"):
                    continue
                name = call.kw_names.get(kw)
                if (
                    facts is not None
                    and name is not None
                    and dataflow.ARRAY in facts
                    and dataflow.READONLY not in facts
                ):
                    suspect.append(f"{kw}={name}" if kw == "initial_r" else name)
            if suspect:
                names = ", ".join(sorted(set(suspect)))
                yield Violation(
                    path,
                    call.node.lineno,
                    call.node.col_offset,
                    "RL006",
                    f"blocks_validated=True passed for hand-assembled, "
                    f"still-writable arrays ({names}); the certificate is "
                    "only sound for validated read-only blocks (e.g. off a "
                    "QBDProcess) -- freeze with .setflags(write=False) and "
                    "validate, or drop the certificate",
                )


def self_kw_value(call: ast.Call, name: str) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


_DEPRECATED_SWEEP_CALLS = {
    "load_sweep_series": "sweep_many(base_model, utilization_axis(...), metric, ...)",
    "idle_wait_sweep_series": "sweep_many(base_model, idle_wait_axis(...), metric, ...)",
}


def rl010_deprecated_sweep_api(tree: ast.AST, path: str) -> Iterator[Violation]:
    """RL010: call sites of the deprecated pre-engine sweep entry points."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in _DEPRECATED_SWEEP_CALLS:
            yield Violation(
                path,
                node.lineno,
                node.col_offset,
                "RL010",
                f"{name} was removed from repro.experiments.sweeps; use "
                f"{_DEPRECATED_SWEEP_CALLS[name]} instead "
                "(mechanical rewrite available via --fix)",
            )


#: Single-file rules, runnable without cross-module context.
FILE_RULES = (
    rl001_frozen_mutation,
    rl002_writable_array_on_dataclass,
    rl003_unitless_time,
    rl004_suppression_near_nan_guard,
    rl005_stationary_on_phase_sum,
    rl006_certificate_soundness,
    rl010_deprecated_sweep_api,
)

#: Backwards-compatible alias (pre-project-analyzer name).
ALL_RULES = FILE_RULES
